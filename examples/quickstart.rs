//! Quickstart: probabilistic constraints, beliefs, and the main theorem in
//! five minutes.
//!
//! Run with: `cargo run --example quickstart`

use pak::core::prelude::*;
use pak::num::Rational;

fn main() -> Result<(), PpsError> {
    println!("== pak quickstart ==\n");

    // -----------------------------------------------------------------
    // 1. Build a tiny purely probabilistic system (pps) by hand.
    //
    //    A hidden coin is heads with probability 0.99. The agent sees
    //    nothing and fires unconditionally. Condition ϕ = "heads".
    // -----------------------------------------------------------------
    let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
    let heads_prior = Rational::from_ratio(99, 100);
    let h = b.initial(SimpleState::new(1, vec![0]), heads_prior.clone())?;
    let t = b.initial(SimpleState::new(0, vec![0]), heads_prior.one_minus())?;
    let fire = ActionId(0);
    b.child(
        h,
        SimpleState::new(1, vec![0]),
        Rational::one(),
        &[(AgentId(0), fire)],
    )?;
    b.child(
        t,
        SimpleState::new(0, vec![0]),
        Rational::one(),
        &[(AgentId(0), fire)],
    )?;
    let pps = b.build()?;
    println!(
        "built a pps with {} runs and {} nodes",
        pps.num_runs(),
        pps.num_nodes()
    );

    // -----------------------------------------------------------------
    // 2. Analyse the (agent, action, condition) triple.
    // -----------------------------------------------------------------
    let heads = StateFact::<SimpleState>::new("heads", |g| g.env == 1);
    let analysis =
        ActionAnalysis::new(&pps, AgentId(0), fire, &heads).expect("fire is a proper action");

    println!("µ(ϕ@α | α)      = {}", analysis.constraint_probability());
    println!("E[β(ϕ)@α | α]   = {}", analysis.expected_belief());
    println!(
        "min/max belief  = {} / {}",
        analysis.min_belief_when_acting().unwrap(),
        analysis.max_belief_when_acting().unwrap()
    );

    // -----------------------------------------------------------------
    // 3. The paper's main theorem (Theorem 6.2): with local-state
    //    independence, the two quantities above are EQUAL — verified here
    //    in exact rational arithmetic.
    // -----------------------------------------------------------------
    let report = check_expectation(&pps, AgentId(0), fire, &heads).unwrap();
    println!("\nTheorem 6.2: µ(ϕ@α|α) = E[β(ϕ)@α|α]?  {}", report.equal);
    assert!(report.equal);

    // -----------------------------------------------------------------
    // 4. Probably approximately knowing (Corollary 7.2): with
    //    µ(ϕ@α|α) ≥ 1 − ε², the agent believes ϕ with degree ≥ 1 − ε on
    //    measure ≥ 1 − ε of the acting runs. Here 0.99 = 1 − (0.1)².
    // -----------------------------------------------------------------
    let eps = Rational::from_ratio(1, 10);
    let pak = check_pak_corollary(&pps, AgentId(0), fire, &heads, &eps).unwrap();
    println!(
        "Corollary 7.2 at ε = {}: premise {} ⇒ µ(β ≥ {} | α) = {} ≥ {}",
        eps,
        pak.premise_holds,
        eps.one_minus(),
        pak.strong_belief_measure,
        pak.conclusion_threshold
    );
    assert!(pak.implication_holds);

    println!("\nok — see examples/firing_squad.rs for the paper's Example 1");
    Ok(())
}
