//! Relaxed mutual exclusion with noisy sensors (§1 of the paper).
//!
//! Sweeps sensor noise and shows how the achieved entry guarantee, the
//! agent's belief at entry, and the PAK bound interact.
//!
//! Run with: `cargo run --example mutual_exclusion`

use pak::core::prelude::*;
use pak::num::Rational;
use pak::systems::mutex::{enter_action, RelaxedMutex};

fn main() {
    println!("== Relaxed mutual exclusion ==\n");
    println!("CS busy with prior 1/5; agents enter when their sensor reads free.\n");

    println!(
        "{:>8} | {:>12} | {:>12} | {:>22}",
        "noise", "µ(empty|enter)", "belief@enter", "PAK ε s.t. µ = 1 − ε²"
    );
    println!("{}", "-".repeat(66));

    for (num, den) in [(1i64, 100i64), (1, 20), (1, 10), (1, 4), (2, 5)] {
        let noise = Rational::from_ratio(num, den);
        let scenario = RelaxedMutex::new(Rational::from_ratio(1, 5), noise.clone(), 2);
        let analysis = scenario.analyze(AgentId(0)).expect("agent 0 can enter");
        let achieved = analysis.constraint_probability();
        let belief = analysis.min_belief_when_acting().unwrap();
        // Corollary 7.2 reading: µ = 1 − ε² ⇒ PAK at ε = √(1 − µ).
        let eps = (1.0 - achieved.to_f64()).max(0.0).sqrt();
        println!(
            "{:>8} | {:>12} | {:>12} | {:>22.4}",
            noise.to_string(),
            format!("{:.5}", achieved.to_f64()),
            format!("{:.5}", belief.to_f64()),
            eps,
        );
    }

    // ------------------------------------------------------------------
    // The full theorem check at one operating point.
    // ------------------------------------------------------------------
    let scenario = RelaxedMutex::new(Rational::from_ratio(1, 5), Rational::from_ratio(1, 20), 2);
    let pps = scenario.build_pps();
    let enter = enter_action(AgentId(0));
    let cs_empty = RelaxedMutex::<Rational>::cs_empty();

    println!("\nAt noise = 1/20:");
    let exp = check_expectation(&pps, AgentId(0), enter, &cs_empty).unwrap();
    println!(
        "  Theorem 6.2 (exact equality): µ = {} = E[β] = {} → {}",
        exp.lhs, exp.rhs, exp.equal
    );
    assert!(exp.equal);

    // Entry is deterministic given the sensor, so Theorem 4.2 bounds the
    // violation probability by the entry-time belief.
    let tau = scenario.posterior_empty_given_free();
    let suff = check_sufficiency(&pps, AgentId(0), enter, &cs_empty, &tau).unwrap();
    println!(
        "  Theorem 4.2: belief at entry = {} ⇒ µ(empty|enter) ≥ {} → {}",
        suff.min_belief, tau, suff.implication_holds
    );
    assert!(suff.implication_holds);

    // Collision probability for the curious: both enter a busy CS.
    let both_in_busy = StateFact::<SimpleState>::new("collision", |g| {
        g.env == 1 && g.locals.iter().all(|&s| s == 1)
    });
    let collision = pps.measure(&pps.fact_event_at_time(&both_in_busy, 0));
    println!(
        "  P(both agents enter a busy CS) = {} = {:.6}",
        collision,
        collision.to_f64()
    );

    println!("\nok");
}
