//! Phase profiler for the unfold hot path.
//!
//! Prints how interning compacts the tree (distinct states vs nodes) and
//! the per-iteration cost of the full unfold pipeline on the scaling
//! benchmark's workloads, split into its two phases:
//!
//! * **tree** — protocol enumeration into the raw builder
//!   (`unfold_to_builder`): moves, transitions, merging, memoized
//!   expansion replay;
//! * **build** — the validation/indexing pass (`PpsBuilder::build`): run
//!   enumeration, distribution validation, cell construction.
//!
//! The build share is the number to watch PR over PR: it is what the
//! interned build pass (validation memoization, `LocalId` cells,
//! word-filled run-sets) is meant to keep from dominating. The **extend**
//! column puts incremental growth next to the rebuild: the cost of
//! growing a retained `Unfolder` from `horizon − 1` to `horizon` (one
//! frontier expansion + index repair) vs re-unfolding the whole horizon
//! tree from scratch. Useful for eyeballing perf work without running
//! the whole bench suite:
//!
//! ```text
//! cargo run --release --example profile_unfold
//! ```

use std::time::{Duration, Instant};

use pak::num::Rational;
use pak::protocol::generator::{random_model, RandomModelConfig};
use pak::protocol::unfold::{
    unfold_to_builder, unfold_with, unfold_with_options, UnfoldConfig, UnfoldOptions, Unfolder,
};

fn main() {
    for horizon in [2u32, 3, 4, 5, 6] {
        let cfg = RandomModelConfig {
            n_agents: 2,
            initial_states: 2,
            horizon,
            envs: 3,
            max_env_branching: 2,
            local_values: 2,
            actions_per_agent: 2,
        };
        let model = random_model::<Rational>(11, &cfg);
        let pps = unfold_with(&model, &UnfoldConfig::default()).unwrap();
        let iters = (200_000u32 >> horizon).max(1_000);

        // Full pipeline.
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(unfold_with(&model, &UnfoldConfig::default()).unwrap());
        }
        let full = t.elapsed() / iters;

        // Tree phase alone.
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(
                unfold_to_builder::<_, Rational>(&model, &UnfoldConfig::default()).unwrap(),
            );
        }
        let tree = t.elapsed() / iters;

        // The build phase is measured directly too (on clones of one
        // builder, with the clone cost subtracted) as a cross-check; the
        // headline split below uses full − tree so the two columns sum.
        let builder = unfold_to_builder::<_, Rational>(&model, &UnfoldConfig::default()).unwrap();
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(builder.clone());
        }
        let clone = t.elapsed() / iters;
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(builder.clone().build().unwrap());
        }
        let build_direct = (t.elapsed() / iters).saturating_sub(clone);

        // Parallel subtree unfolding on the same workload: one worker per
        // initial state, stitched back bit-identically. On a single-core
        // machine this column shows pure threading overhead; on multi-core
        // boxes it is where the depth-1 partition pays.
        let options = UnfoldOptions {
            parallel_subtrees: Some(true),
            ..UnfoldOptions::default()
        };
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(
                unfold_with_options(&model, &UnfoldConfig::default(), &options).unwrap(),
            );
        }
        let threaded = t.elapsed() / iters;

        // Incremental growth: the cost of the final extend(h−1 → h) on a
        // retained handle, measured on clones of the horizon-(h−1) handle
        // with the clone cost subtracted — against `full`, the from-scratch
        // rebuild of the same horizon-h tree.
        let parked = Unfolder::<_, Rational>::new(
            &model,
            UnfoldConfig {
                horizon: Some(horizon - 1),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(parked.clone());
        }
        let handle_clone = t.elapsed() / iters;
        let t = Instant::now();
        for _ in 0..iters {
            let mut u = parked.clone();
            u.extend_horizon().unwrap();
            std::hint::black_box(u);
        }
        let extend = (t.elapsed() / iters).saturating_sub(handle_clone);

        let build = full.saturating_sub(tree);
        let share = |d: Duration| 100.0 * d.as_secs_f64() / full.as_secs_f64().max(1e-12);
        println!(
            "horizon {horizon}: {full:>9.2?}/unfold = tree {tree:>8.2?} ({:>4.1}%) + build {build:>8.2?} ({:>4.1}%, direct {build_direct:.2?}) | threaded {threaded:>8.2?} | extend {extend:>8.2?} ({:>4.1}% of rebuild) | nodes={:<5} runs={:<4} distinct states={:<3} ({}x shared)",
            share(tree),
            share(build),
            share(extend),
            pps.num_nodes(),
            pps.num_runs(),
            pps.num_distinct_states(),
            (pps.num_nodes() - 1) / pps.num_distinct_states().max(1),
        );
    }
}
