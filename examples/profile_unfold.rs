//! Phase profiler for the unfold hot path.
//!
//! Prints how interning compacts the tree (distinct states vs nodes) and
//! the per-iteration cost of the full unfold pipeline on the scaling
//! benchmark's workloads. Useful for eyeballing perf work without running
//! the whole bench suite:
//!
//! ```text
//! cargo run --release --example profile_unfold
//! ```

use std::time::Instant;

use pak::num::Rational;
use pak::protocol::generator::{random_model, RandomModelConfig};
use pak::protocol::unfold::{unfold_with, UnfoldConfig};

fn main() {
    for horizon in [2u32, 3, 4] {
        let cfg = RandomModelConfig {
            n_agents: 2,
            initial_states: 2,
            horizon,
            envs: 3,
            max_env_branching: 2,
            local_values: 2,
            actions_per_agent: 2,
        };
        let model = random_model::<Rational>(11, &cfg);
        let pps = unfold_with(&model, &UnfoldConfig::default()).unwrap();
        let iters = 20_000u32;
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(unfold_with(&model, &UnfoldConfig::default()).unwrap());
        }
        println!(
            "horizon {}: {:>8.2?}/unfold | nodes={:<4} runs={:<3} distinct states={:<2} ({}x shared)",
            horizon,
            t.elapsed() / iters,
            pps.num_nodes(),
            pps.num_runs(),
            pps.num_distinct_states(),
            (pps.num_nodes() - 1) / pps.num_distinct_states().max(1),
        );
    }
}
