//! Coordinated attack over a lossy channel (Fischer–Zuck, §1 of the paper).
//!
//! Sweeps messenger rounds and channel loss; verifies the Fischer–Zuck
//! average-belief property (the special case of Theorem 6.2 the paper
//! generalises) on every configuration.
//!
//! Run with: `cargo run --example coordinated_attack`

use pak::core::prelude::*;
use pak::num::Rational;
use pak::systems::attack::{AttackSystem, CoordinatedAttack, ATTACK_A, GENERAL_A};

fn main() {
    println!("== Coordinated attack over a lossy channel ==\n");

    println!(
        "{:>6} | {:>6} | {:>14} | {:>14} | {:>10}",
        "rounds", "loss", "µ(B att|A att)", "E[β_A(B att)]", "Thm 6.2?"
    );
    println!("{}", "-".repeat(62));

    for rounds in [1u32, 2, 3, 4, 5] {
        for (ln, ld) in [(1i64, 10i64), (1, 4)] {
            let loss = Rational::from_ratio(ln, ld);
            let scenario = CoordinatedAttack::new(loss.clone(), Rational::from_ratio(1, 2), rounds);
            let sys = scenario.build_pps().expect("attack scenario unfolds");
            let analysis = sys.analyze();
            let mu = analysis.constraint_probability();
            let expected = analysis.expected_belief();
            let equal = mu == expected;
            println!(
                "{:>6} | {:>6} | {:>14} | {:>14} | {:>10}",
                rounds,
                loss.to_string(),
                format!("{:.6}", mu.to_f64()),
                format!("{:.6}", expected.to_f64()),
                equal,
            );
            assert!(equal, "the Fischer–Zuck property must hold exactly");
        }
    }

    // ------------------------------------------------------------------
    // A closer look at A's information states with an acknowledgement.
    // ------------------------------------------------------------------
    let scenario =
        CoordinatedAttack::new(Rational::from_ratio(1, 10), Rational::from_ratio(1, 2), 2);
    let sys = scenario.build_pps().unwrap();
    let analysis = sys.analyze();

    println!("\nWith 2 rounds (attack message + acknowledgement), loss = 1/10:");
    for (belief, measure) in analysis.belief_distribution() {
        let label = if belief.is_one() {
            "ack received "
        } else {
            "no ack       "
        };
        println!(
            "  {label} β_A(B attacks) = {:<8} on measure {} of attacking runs",
            belief.to_string(),
            measure
        );
    }

    // The PAK reading (Corollary 7.2): coordination 0.9 = 1 − ε² at
    // ε ≈ 0.316; so A believes with degree ≥ 0.684 w.p. ≥ 0.684.
    let mu = analysis.constraint_probability().to_f64();
    let eps = (1.0 - mu).sqrt();
    let pps = sys.pps();
    let rep = check_pak_corollary(
        pps,
        GENERAL_A,
        ATTACK_A,
        &AttackSystem::<Rational>::b_attacks(),
        &Rational::from_ratio((eps * 1000.0).ceil() as i64, 1000),
    )
    .unwrap();
    println!(
        "\nCorollary 7.2 at ε ≈ {eps:.3}: µ(β ≥ 1−ε | attack) = {} ≥ 1−ε → {}",
        rep.strong_belief_measure, rep.implication_holds
    );
    assert!(rep.implication_holds);

    println!("\nok");
}
