//! The PAK tradeoff: Theorem 5.2's lower-bound family and Corollary 7.2's
//! frontier.
//!
//! First builds `Tˆ(p, ε)` instances showing the threshold can be met with
//! arbitrarily small probability; then sweeps the PAK frontier
//! `p′ = 1 − √(1 − p)`.
//!
//! Run with: `cargo run --example pak_tradeoff`

use pak::core::prelude::*;
use pak::num::Rational;
use pak::systems::threshold::ThresholdConstruction;

fn main() {
    println!("== Theorem 5.2: no lower bound on meeting the threshold ==\n");
    println!(
        "{:>8} {:>8} | {:>12} {:>14} {:>16}",
        "p", "ε", "µ(ϕ@α|α)", "µ(β≥p | α)", "merged belief"
    );
    println!("{}", "-".repeat(64));

    let p = Rational::from_ratio(3, 4);
    for (en, ed) in [(1i64, 4i64), (1, 10), (1, 100), (1, 1000), (1, 100_000)] {
        let eps = Rational::from_ratio(en, ed);
        let t = ThresholdConstruction::new(p.clone(), eps.clone());
        let claims = t.verify();
        assert!(claims.all_hold(), "paper claims must hold exactly");
        println!(
            "{:>8} {:>8} | {:>12} {:>14} {:>16}",
            p.to_string(),
            eps.to_string(),
            claims.constraint_probability.to_string(),
            claims.threshold_met_measure.to_string(),
            format!("{:.6}", claims.merged_belief.to_f64()),
        );
    }
    println!("\nThe threshold-met measure IS ε: it can be made arbitrarily small");
    println!("while the constraint stays satisfied at p — Theorem 5.2.\n");

    // ------------------------------------------------------------------
    // Corollary 7.2's frontier: satisfy µ ≥ p ⇒ believe ≥ p′ w.p. ≥ p′,
    // p′ = 1 − √(1 − p).
    // ------------------------------------------------------------------
    println!("== Corollary 7.2: the PAK frontier p′ = 1 − √(1 − p) ==\n");
    println!("{:>10} | {:>10}", "p", "p′");
    println!("{}", "-".repeat(24));
    for p in [0.75, 0.9, 0.99, 0.999, 0.999999] {
        println!("{:>10} | {:>10.6}", p, pak_frontier(p));
    }

    // Verify the corollary exactly on the Tˆ family: for each (p, ε) take
    // the premise threshold 1 − ε² and check the conclusion.
    println!("\nExact Corollary 7.2 checks on Tˆ(1 − ε², ε·(1 − ε²)) instances:");
    for (en, ed) in [(1i64, 2i64), (1, 4), (1, 10)] {
        let eps = Rational::from_ratio(en, ed);
        // Build a system whose constraint probability is exactly 1 − ε².
        let p = (&eps * &eps).one_minus();
        let small = &eps * &p; // any ε' < p works as the construction knob
        let t = ThresholdConstruction::new(p.clone(), small);
        let pps = t.build();
        let rep = check_pak_corollary(
            &pps,
            pak::systems::threshold::AGENT_I,
            pak::systems::threshold::ALPHA,
            &ThresholdConstruction::<Rational>::phi(),
            &eps,
        )
        .unwrap();
        println!(
            "  ε = {}: premise (µ = {} ≥ 1 − ε² = {}) {}; µ(β ≥ 1−ε|α) = {} ≥ {} → {}",
            eps,
            rep.constraint_probability,
            rep.premise_threshold,
            rep.premise_holds,
            rep.strong_belief_measure,
            rep.conclusion_threshold,
            rep.implication_holds,
        );
        assert!(rep.implication_holds);
    }

    println!("\nok");
}
