//! Model checking epistemic-probabilistic formulas over the paper's
//! systems.
//!
//! Shows the deterministic Knowledge-of-Preconditions principle failing on
//! the `FS` protocol while its probabilistic weakening (the paper's
//! contribution) model-checks as valid.
//!
//! Run with: `cargo run --example epistemic_logic`

use pak::core::prelude::*;
use pak::logic::{Formula, ModelChecker};
use pak::num::Rational;
use pak::systems::firing_squad::{FiringSquad, ALICE, BOB, FIRE_A, FIRE_B};

type F =
    Formula<pak::protocol::messaging::MsgGlobal<pak::systems::firing_squad::FsLocal>, Rational>;

fn main() {
    println!("== Epistemic logic over the FS protocol ==\n");

    let sys = FiringSquad::paper().build_pps();
    let pps = sys.pps();
    let mc = ModelChecker::new(pps);

    let phi_both: F = Formula::does(ALICE, FIRE_A).and(Formula::does(BOB, FIRE_B));

    // ------------------------------------------------------------------
    // 1. The deterministic KoP schema fails on FS.
    // ------------------------------------------------------------------
    let kop: F = Formula::does(ALICE, FIRE_A).implies(Formula::knows(ALICE, phi_both.clone()));
    println!("KoP schema   does_A(fire) → K_A(ϕ_both)");
    println!("  valid? {}", mc.valid(&kop));
    let cex = mc
        .counterexample(&kop)
        .expect("FS violates deterministic KoP");
    println!("  counterexample at {cex} — Alice fires without knowing ϕ_both");
    assert!(!mc.valid(&kop));

    // ------------------------------------------------------------------
    // 2. Probabilistic weakenings. Alice can believe ϕ_both to degree 0
    //    when she fires (the 'No' reply) — so no positive threshold is
    //    valid at EVERY firing point…
    // ------------------------------------------------------------------
    let weak_99: F = Formula::does(ALICE, FIRE_A).implies(Formula::believes_at_least(
        ALICE,
        phi_both.clone(),
        Rational::from_ratio(99, 100),
    ));
    println!("\nB-schema     does_A(fire) → B_A^{{≥0.99}}(ϕ_both)");
    println!(
        "  valid? {} (the 'No'-reply firing point breaks it)",
        mc.valid(&weak_99)
    );
    assert!(!mc.valid(&weak_99));

    // …which is exactly why the paper's guarantees are measure-level
    // (Theorems 6.2/7.1), not pointwise. The measure-level statement:
    let analysis = sys.analyze();
    println!(
        "  measure-level instead: µ(β_A ≥ 0.99 | fire_A) = {}",
        analysis.threshold_measure(&Rational::from_ratio(99, 100))
    );

    // ------------------------------------------------------------------
    // 3. Things Alice DOES know. After a Yes reply she knows Bob heard:
    // ------------------------------------------------------------------
    let alice_got_yes: F = Formula::atom(StateFact::new(
        "A got Yes",
        |g: &pak::protocol::messaging::MsgGlobal<pak::systems::firing_squad::FsLocal>| {
            matches!(
                g.locals[0],
                pak::systems::firing_squad::FsLocal::Alice {
                    reply: pak::systems::firing_squad::Reply::Yes,
                    ..
                }
            )
        },
    ));
    let bob_heard: F = Formula::atom(StateFact::new(
        "B heard",
        |g: &pak::protocol::messaging::MsgGlobal<pak::systems::firing_squad::FsLocal>| {
            matches!(
                g.locals[1],
                pak::systems::firing_squad::FsLocal::Bob { heard: Some(true) }
            )
        },
    ));
    let yes_means_knows: F = alice_got_yes.implies(Formula::knows(ALICE, bob_heard));
    println!("\nK-schema     A-got-Yes → K_A(B heard)");
    println!("  valid? {}", mc.valid(&yes_means_knows));
    assert!(mc.valid(&yes_means_knows));

    // ------------------------------------------------------------------
    // 4. Introspection: belief thresholds are known (KB-style axiom),
    //    because β is a function of the local state.
    // ------------------------------------------------------------------
    let b_half: F = Formula::believes_at_least(ALICE, phi_both.clone(), Rational::from_ratio(1, 2));
    let introspection: F = b_half.clone().implies(Formula::knows(ALICE, b_half));
    println!("\nIntrospection  B_A^{{≥½}}ϕ → K_A B_A^{{≥½}}ϕ");
    println!("  valid? {}", mc.valid(&introspection));
    assert!(mc.valid(&introspection));

    // ------------------------------------------------------------------
    // 5. Temporal reasoning: if go = 1 then Alice eventually fires.
    // ------------------------------------------------------------------
    let go: F = Formula::atom(StateFact::new(
        "go=1",
        |g: &pak::protocol::messaging::MsgGlobal<pak::systems::firing_squad::FsLocal>| {
            matches!(
                g.locals[0],
                pak::systems::firing_squad::FsLocal::Alice { go: true, .. }
            )
        },
    ));
    let liveness: F = go.implies(Formula::does(ALICE, FIRE_A).eventually());
    // ◇ looks forward from the current point, so the schema is checked at
    // time 0 (from later points the firing already lies in the past).
    let at_time_0 = mc.event_at_time(&liveness, 0);
    println!("\nLiveness     go=1 → ◇does_A(fire), checked at time 0");
    println!("  holds on all runs? {}", at_time_0.len() == pps.num_runs());
    assert_eq!(at_time_0.len(), pps.num_runs());

    println!("\nok");
}
