//! Coordinated attack, specified in the protocol DSL.
//!
//! Re-expresses the one-messenger-round coordinated-attack scenario of
//! `pak::systems::attack` as a textual program: states name the generals'
//! joint information, the lossy channel is a probabilistic transition, a
//! `fail` annotation marks the lost-message state, and a reliable-channel
//! `adversary` block overrides the loss. The analysis numbers are checked
//! against the hand-written `CoordinatedAttack` model.
//!
//! Run with: `cargo run --example dsl_attack`

use pak::core::belief::ActionAnalysis;
use pak::core::event::RunSet;
use pak::core::fact::{DoesFact, Fact};
use pak::core::ids::Point;
use pak::dsl::compile_str;
use pak::num::Rational;
use pak::protocol::unfold::unfold;
use pak::systems::attack::CoordinatedAttack;

/// One messenger round with loss 1/10 and order prior 1/2: A attacks at
/// the deadline iff ordered, B iff the message arrived.
const ATTACK: &str = "\
protocol attack {
    # locals = [A informed, B informed]; env 1 marks the lost message.
    agents a, b;
    horizon 2;
    action attack_a = 10;
    action attack_b = 11;
    state ordered  = (0, 1, 0);
    state idle     = (0, 0, 0);
    state informed = (0, 1, 1);
    state lost     = (1, 1, 0) fail;
    init { 1/2: ordered; 1/2: idle; }
    moves a { at (1, 1) -> attack_a; }
    moves b { at (1, 1) -> attack_b; }
    transitions {
        # The messenger round: the order reaches B unless the channel
        # drops it.
        from ordered at 0 -> { 9/10: informed; 1/10: lost; };
    }
    adversary reliable {
        from ordered at 0 -> informed;
    }
}";

fn main() {
    println!("== Coordinated attack from a DSL program ==\n");

    let compiled = compile_str::<Rational>(ATTACK).expect("the program compiles");
    let a = compiled.agent("a").unwrap();
    let attack_a = compiled.action("attack_a").unwrap();
    let attack_b = compiled.action("attack_b").unwrap();
    let b = compiled.agent("b").unwrap();
    let b_attacks = DoesFact::new(b, attack_b);

    // The base model: the lossy channel.
    let pps = unfold::<_, Rational>(compiled.model()).expect("the model unfolds");
    let analysis =
        ActionAnalysis::new(&pps, a, attack_a, &b_attacks).expect("A attacks with prior 1/2");
    println!(
        "lossy channel:    µ(B attacks | A attacks) = {}",
        analysis.constraint_probability()
    );

    // The hand-written scenario at the same parameters agrees exactly.
    let hand = CoordinatedAttack::new(Rational::from_ratio(1, 10), Rational::from_ratio(1, 2), 1)
        .build_pps()
        .expect("the hand model unfolds")
        .analyze();
    assert_eq!(
        analysis.constraint_probability(),
        hand.constraint_probability(),
        "the DSL program must reproduce the hand-written analysis"
    );
    println!(
        "hand-written:     µ(B attacks | A attacks) = {}  (identical)",
        hand.constraint_probability()
    );

    // The declared failure state measures the uncoordinated outcome.
    let failure = compiled.failure_fact();
    let failed = RunSet::from_predicate(pps.num_runs(), |run| {
        (0..pps.run_len(run)).any(|t| {
            Fact::<_, Rational>::holds(
                &failure,
                &pps,
                Point {
                    run,
                    time: u32::try_from(t).unwrap(),
                },
            )
        })
    });
    println!(
        "failure states:   µ(message lost)          = {}",
        pps.measure(&failed)
    );
    assert_eq!(pps.measure(&failed), Rational::from_ratio(1, 20));

    // The adversary block: a reliable channel coordinates surely.
    let (name, reliable) = compiled.adversaries().next().expect("one adversary");
    let pps = unfold::<_, Rational>(reliable).expect("the variant unfolds");
    let analysis = ActionAnalysis::new(&pps, a, attack_a, &b_attacks).expect("A still attacks");
    println!(
        "adversary `{name}`: µ(B attacks | A attacks) = {}",
        analysis.constraint_probability()
    );
    assert!(analysis.constraint_probability().is_one());

    println!("\nok");
}
