//! The paper's Example 1 end to end: the relaxed firing squad.
//!
//! Reproduces every number the paper derives for the `FS` protocol,
//! cross-validates them by Monte-Carlo simulation, and shows the §8
//! improvement.
//!
//! Run with: `cargo run --example firing_squad`

use pak::core::prelude::*;
use pak::num::Rational;
use pak::protocol::messaging::LossyMessagingModel;
use pak::sim::estimate::{estimate_constraint, estimate_threshold_measure, BeliefTable};
use pak::systems::firing_squad::{FiringSquad, FsSystem, ALICE, BOB, FIRE_A, FIRE_B};

fn main() {
    println!("== Example 1: the relaxed firing squad ==\n");

    // The paper's parameters: loss 0.1, go ~ Bernoulli(0.5), two copies.
    let fs = FiringSquad::paper();
    let sys = fs.build_pps();
    let pps = sys.pps();
    println!(
        "FS unfolds to {} runs over {} tree nodes (horizon {})",
        pps.num_runs(),
        pps.num_nodes(),
        pps.horizon()
    );

    // ------------------------------------------------------------------
    // Exact analysis of (Alice, fire_A, ϕ_both).
    // ------------------------------------------------------------------
    let analysis = sys.analyze();
    let spec = Rational::from_ratio(19, 20); // the 0.95 specification
    println!("\n--- exact analysis ---");
    println!(
        "µ(ϕ_both@fire_A | fire_A) = {} (paper: 0.99)",
        analysis.constraint_probability()
    );
    println!(
        "spec µ ≥ 0.95 satisfied:    {}",
        analysis.satisfies_constraint(&spec)
    );
    println!(
        "threshold 0.95 met on measure {} of firing runs (paper: 0.991)",
        analysis.threshold_measure(&spec)
    );
    println!(
        "E[β_A(ϕ_both)@fire_A | fire_A] = {} (= µ, Theorem 6.2)",
        analysis.expected_belief()
    );

    println!("\nAlice's belief when she fires, by information state:");
    for (belief, measure) in analysis.belief_distribution() {
        let label = if belief.is_one() {
            "received Yes   "
        } else if belief.is_zero() {
            "received No    "
        } else {
            "reply was lost "
        };
        println!("  {label} belief = {belief:<7} on conditional measure {measure}");
    }

    // fire_A is deterministic for Alice, so Lemma 4.3(a) gives local-state
    // independence and the theorems apply.
    println!(
        "\nfire_A deterministic? {}  ⇒  ϕ_both local-state independent? {}",
        pps.is_deterministic_action(ALICE, FIRE_A),
        is_local_state_independent(pps, &FsSystem::<Rational>::phi_both(), ALICE, FIRE_A),
    );

    // ------------------------------------------------------------------
    // Monte-Carlo cross-validation (the "testbed" side).
    // ------------------------------------------------------------------
    println!("\n--- Monte-Carlo cross-validation (100k trials) ---");
    let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    let est =
        estimate_constraint::<_, Rational>(&model, 2024, 100_000, ALICE, FIRE_A, |trial, t| {
            trial.does(ALICE, FIRE_A, t) && trial.does(BOB, FIRE_B, t)
        });
    let (lo, hi) = est.proportion.wilson(2.576);
    println!(
        "estimated µ(ϕ_both | fire_A) = {} (99% CI [{lo:.5}, {hi:.5}])",
        est.proportion
    );
    assert!(
        est.proportion.contains(0.99, 2.576),
        "exact value must fall in the CI"
    );

    let table = BeliefTable::from_pps(pps, ALICE, &FsSystem::<Rational>::phi_both());
    let thr =
        estimate_threshold_measure::<_, Rational>(&model, 7, 100_000, ALICE, FIRE_A, &table, 0.95);
    println!(
        "estimated µ(β ≥ 0.95 | fire_A) = {} (paper: 0.991)",
        thr.proportion
    );
    assert!(thr.proportion.contains(0.991, 2.576));

    // ------------------------------------------------------------------
    // The §8 improvement: refrain from firing on a 'No' reply.
    // ------------------------------------------------------------------
    println!("\n--- §8: refrain-on-No improvement ---");
    let improved = FiringSquad::improved().build_pps();
    let better = improved.analyze();
    println!(
        "improved µ(ϕ_both@fire_A | fire_A) = {} ≈ {:.5} (paper: 0.99899)",
        better.constraint_probability(),
        better.constraint_probability().to_f64()
    );
    println!(
        "min belief when firing rises from {} to {}",
        analysis.min_belief_when_acting().unwrap(),
        better.min_belief_when_acting().unwrap()
    );

    println!("\nok");
}
