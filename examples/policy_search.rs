//! The §8 design insight, executable: sweeping Alice's firing policies.
//!
//! Theorem 6.2 says the success probability of any policy is the
//! belief-weighted average over the information states it fires on — so
//! policies can be *designed* from a single base analysis, then verified by
//! re-unfolding. This example prints the whole policy lattice, the
//! liveness/safety Pareto frontier, and the common-belief structure of the
//! protocol.
//!
//! Run with: `cargo run --example policy_search`

use pak::logic::common::common_belief_report;
use pak::num::{DecimalRounding, Rational};
use pak::systems::firing_squad::{FirePolicy, FiringSquad, FsSystem, ALICE, BOB};
use pak::systems::policy::{pareto_frontier, safest_policy, sweep_policies};

fn policy_name(p: FirePolicy) -> String {
    if !p.ever_fires() {
        return "never".to_string();
    }
    let mut parts = Vec::new();
    if p.on_yes {
        parts.push("Yes");
    }
    if p.on_no {
        parts.push("No");
    }
    if p.on_nothing {
        parts.push("Lost");
    }
    format!("fire on {{{}}}", parts.join(", "))
}

fn main() {
    println!("== §8: searching Alice's firing-policy space ==\n");

    let base = FiringSquad::paper();
    let outcomes = sweep_policies(&base);

    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>9}",
        "policy", "µ(fire_A)", "success", "Thm 6.2 pred.", "match"
    );
    println!("{}", "-".repeat(80));
    for o in &outcomes {
        println!(
            "{:<28} {:>12} {:>12} {:>14} {:>9}",
            policy_name(o.policy),
            o.fire_probability.to_decimal(4, DecimalRounding::HalfUp),
            o.success_probability.to_decimal(5, DecimalRounding::HalfUp),
            o.predicted_success.to_decimal(5, DecimalRounding::HalfUp),
            o.prediction_matches(),
        );
        assert!(o.prediction_matches());
    }

    println!("\nPareto frontier (liveness vs safety):");
    for p in pareto_frontier(&outcomes) {
        println!("  {}", policy_name(p));
    }

    let best = safest_policy(&outcomes);
    println!(
        "\nSafest live policy: {} with success {}",
        policy_name(best.policy),
        best.success_probability
            .to_decimal(5, DecimalRounding::HalfUp)
    );
    println!(
        "The paper's §8 pick (refrain on No) reaches {} — optimal among\n\
         policies that keep firing on lost replies.",
        outcomes
            .iter()
            .find(|o| o.policy == FirePolicy::REFRAIN_ON_NO)
            .unwrap()
            .success_probability
            .to_decimal(5, DecimalRounding::HalfUp)
    );

    // ------------------------------------------------------------------
    // Common p-belief of ϕ_both at firing time (Monderer–Samet machinery).
    // ------------------------------------------------------------------
    println!("\n== common p-belief of ϕ_both among {{Alice, Bob}} ==\n");
    let sys = FiringSquad::paper().build_pps();
    let phi = FsSystem::<Rational>::phi_both();
    for (pn, pd) in [(1i64, 2i64), (9, 10), (99, 100)] {
        let p = Rational::from_ratio(pn, pd);
        let rep = common_belief_report(sys.pps(), &[ALICE, BOB], &p, &phi);
        println!(
            "p = {:<7} fixpoint after {} iteration(s); µ(common belief at t=2) = {}",
            p.to_string(),
            rep.iterations,
            rep.measure_by_time[2].to_decimal(4, DecimalRounding::HalfUp),
        );
    }
    println!(
        "\n(common p-belief holds exactly on the runs where Bob heard — measure\n \
         0.495 = ½·0.99 — because there Bob is certain and Alice believes at\n \
         least 0.99; deterministic common KNOWLEDGE of ϕ_both is unattainable)"
    );

    println!("\nok");
}
