//! The chaos suite: deterministic fault injection at every failpoint
//! site, swept across many seeds.
//!
//! Invariants asserted, per the robustness contract:
//!
//! - **No panics** (beyond the deliberately injected ones that the
//!   server's panic isolation must contain).
//! - **Atomic aborts**: a faulted `extend_horizon` leaves the handle
//!   bit-identical to its pre-call state — pool ids, node order, run
//!   probabilities, cells.
//! - **Bit-identical retries**: once the fault plan is dropped,
//!   retrying completes with results identical to an uninterrupted run
//!   (tree growth, batched verdicts, cached trees, served answers).
//!
//! Failpoint plans are process-global, so every test here serialises on
//! one lock: a plan installed by one test must never leak into the
//! fault-free phases of another.

mod common;

use std::sync::{Arc, Mutex, PoisonError};

use pak::core::cancel::CancelToken;
use pak::core::failpoint::{self, FailPlan, Fault, SITES};
use pak::core::prelude::*;
use pak::engine::{CachedUnfolder, Evaluator, PpsCache, Verdict};
use pak::logic::Formula;
use pak::num::Rational;
use pak::protocol::generator::{random_model, RandomModelConfig};
use pak::protocol::unfold::{UnfoldConfig, UnfoldError, Unfolder};
use pak::server::{PakServer, Query, ServerConfig, ServiceError};

/// One plan active at a time across the whole binary: `#[test]` fns run
/// concurrently, and failpoints are process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn cfg(seed: u64) -> RandomModelConfig {
    RandomModelConfig {
        n_agents: 1 + (seed % 2) as u32,
        initial_states: 1 + (seed % 2) as u32,
        horizon: 2 + (seed % 2) as u32,
        envs: 2 + (seed % 2),
        max_env_branching: 2,
        local_values: 2,
        actions_per_agent: 2,
    }
}

fn base_unfold() -> UnfoldConfig {
    UnfoldConfig {
        horizon: Some(1),
        ..UnfoldConfig::default()
    }
}

/// Grows a fresh handle to the model's natural end, fault-free.
fn uninterrupted(model: &pak::protocol::model::TableModel<Rational>) -> Pps<SimpleState, Rational> {
    let mut u = Unfolder::new(model, base_unfold()).unwrap();
    while u.extend_horizon().unwrap() {}
    u.pps().clone()
}

/// The unfold-layer sweep: both tree-growth sites × 50 seeds each, with
/// seed-derived Error/Cancel faults. Every faulted extension must roll
/// back atomically, and the retried growth must be bit-identical to an
/// uninterrupted unfold.
#[test]
fn unfold_faults_roll_back_and_retry_bit_identically() {
    let _serial = chaos_lock();
    for site in ["unfold.expand", "extend.level"] {
        let mut fired_total = 0;
        for seed in 0..50u64 {
            let model = random_model::<Rational>(seed, &cfg(seed));
            let reference = uninterrupted(&model);
            let mut u = Unfolder::new(&model, base_unfold()).unwrap();
            let guard = failpoint::install(FailPlan::from_seed_no_panic(site, seed));
            let mut faults = 0;
            loop {
                let before = u.pps().clone();
                let horizon_before = u.horizon();
                match u.extend_horizon() {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(e) => {
                        assert!(
                            matches!(
                                e,
                                UnfoldError::Cancelled | UnfoldError::BadModelDistribution { .. }
                            ),
                            "site {site} seed {seed}: unexpected fault surface {e:?}"
                        );
                        assert_eq!(u.horizon(), horizon_before, "abort must not advance");
                        common::assert_identical_systems(
                            &before,
                            u.pps(),
                            &format!("site {site} seed {seed}: abort must roll back"),
                        );
                        faults += 1;
                        assert!(
                            faults < 64,
                            "site {site} seed {seed}: fault storm never ends"
                        );
                    }
                }
            }
            fired_total += failpoint::fired(site);
            drop(guard);
            // The handle survived the faults; finish growing fault-free.
            while u.extend_horizon().unwrap() {}
            common::assert_identical_systems(
                &reference,
                u.pps(),
                &format!("site {site} seed {seed}: retry must match uninterrupted growth"),
            );
        }
        assert!(fired_total > 0, "site {site} never fired across the sweep");
    }
}

/// The rollback property, mid-level: cancel while *inside* a level
/// (later frontier nodes of the same extension), which exercises the
/// real `abort_level` + node-rollback path rather than the cheap
/// before-the-level bail-out.
#[test]
fn mid_level_abort_is_atomic_and_retry_matches() {
    let _serial = chaos_lock();
    let mut cancelled_seen = 0;
    for seed in [3u64, 11, 29, 41] {
        let model = random_model::<Rational>(seed, &cfg(seed));
        let reference = uninterrupted(&model);
        for hit in 1..5u64 {
            let mut u = Unfolder::new(&model, base_unfold()).unwrap();
            let guard =
                failpoint::install(FailPlan::new().fail_at("unfold.expand", hit, Fault::Cancel));
            loop {
                let before = u.pps().clone();
                match u.extend_horizon() {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(UnfoldError::Cancelled) => {
                        cancelled_seen += 1;
                        common::assert_identical_systems(
                            &before,
                            u.pps(),
                            &format!("seed {seed} hit {hit}: mid-level abort must be atomic"),
                        );
                    }
                    Err(e) => panic!("seed {seed} hit {hit}: unexpected error {e:?}"),
                }
            }
            drop(guard);
            while u.extend_horizon().unwrap() {}
            common::assert_identical_systems(
                &reference,
                u.pps(),
                &format!("seed {seed} hit {hit}: retry must match uninterrupted growth"),
            );
        }
    }
    assert!(cancelled_seen > 0, "no mid-level cancellation ever landed");
}

fn eval_formulas() -> Vec<Formula<SimpleState, Rational>> {
    let even = || {
        Formula::atom(StateFact::new("env even", |g: &SimpleState| {
            g.env.is_multiple_of(2)
        }))
    };
    vec![
        even().eventually(),
        Formula::knows(AgentId(0), even()),
        even().not().always(),
        Formula::believes_at_least(AgentId(0), even(), Rational::from_ratio(1, 2))
            .implies(even().eventually()),
        even().and(Formula::knows(AgentId(0), even().not()).not()),
    ]
}

/// The evaluator sweep: cancellation at subformula boundaries × 50
/// seeds. A cancelled batch keeps its completed truth tables memoized,
/// so the retry on the *same* evaluator is bit-identical to a fresh
/// fault-free evaluation.
#[test]
fn eval_cancellation_resumes_bit_identically() {
    let _serial = chaos_lock();
    let model = random_model::<Rational>(7, &cfg(7));
    let tree = uninterrupted(&model);
    let formulas = eval_formulas();
    let expected: Vec<Verdict> = Evaluator::new(&tree).evaluate_batch(&formulas);
    let token = CancelToken::new();
    let mut interrupted = 0;
    for seed in 0..50u64 {
        let mut ev = Evaluator::new(&tree);
        let guard = failpoint::install(FailPlan::from_seed_no_panic("eval.subformula", seed));
        let first = ev.evaluate_batch_with(&formulas, &token);
        drop(guard);
        if first.is_err() {
            interrupted += 1;
        }
        let retry = ev
            .evaluate_batch_with(&formulas, &token)
            .expect("fault-free retry cannot be cancelled");
        assert_eq!(
            retry, expected,
            "seed {seed}: resumed verdicts must match a fault-free evaluation"
        );
    }
    assert!(
        interrupted > 0,
        "eval.subformula never fired across the sweep"
    );
}

/// The cache sweep: a faulted insert is skipped silently — queries stay
/// correct (the tree is simply rebuilt), nothing panics, and once the
/// plan is gone the cache fills as normal with identical trees.
#[test]
fn cache_insert_faults_skip_silently() {
    let _serial = chaos_lock();
    let model = random_model::<Rational>(5, &cfg(5));
    let cache = PpsCache::new();
    let mut cu = CachedUnfolder::new(&model, UnfoldConfig::default()).unwrap();
    let guard = failpoint::install(FailPlan::new().fail_every("cache.insert", 1, Fault::Error));
    let faulted = cu.pps_at(&cache, 2).unwrap();
    assert_eq!(cache.len(), 0, "faulted insert must be skipped");
    assert!(failpoint::fired("cache.insert") > 0);
    drop(guard);
    let clean = cu.pps_at(&cache, 2).unwrap();
    assert_eq!(cache.len(), 1, "fault-free insert must land");
    common::assert_identical_systems(
        &faulted,
        &clean,
        "a skipped insert must not change query results",
    );
}

/// The server sweep: 50 seeds of worker faults — including injected
/// panics — against a single-worker service. The worker must contain
/// every panic (answering `WorkerPanicked`, discarding only its own
/// session), keep serving afterwards, and every accepted request must
/// be answered exactly once (conservation across the summary buckets).
#[test]
fn worker_survives_fault_storms_and_keeps_serving() {
    let _serial = chaos_lock();
    let model = Arc::new(pak::protocol::model::CoinModel {
        heads_num: 3,
        heads_den: 4,
    });
    let probe = || Query::Verdicts {
        horizon: 1,
        formulas: vec![
            Formula::<_, f64>::does(AgentId(0), pak::protocol::model::COIN_ACT).eventually(),
        ],
    };
    let expected = {
        let server = PakServer::<_, f64>::start(Arc::clone(&model), ServerConfig::default());
        let answer = server.submit(probe()).unwrap().wait().unwrap();
        assert_eq!(server.shutdown().served, 1);
        answer
    };
    let mut panics_seen = 0;
    let mut fired_total = 0;
    for seed in 0..50u64 {
        let server = PakServer::<_, f64>::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let guard = failpoint::install(FailPlan::from_seed("server.worker", seed));
        let tickets: Vec<_> = (0..10)
            .map(|_| server.submit(probe()).expect("queue is large enough"))
            .collect();
        let mut results = Vec::new();
        for t in tickets {
            results.push(t.wait());
        }
        fired_total += failpoint::fired("server.worker");
        drop(guard);
        for r in &results {
            match r {
                Ok(a) => assert_eq!(a, &expected, "seed {seed}: served answers must be exact"),
                Err(ServiceError::WorkerPanicked) => panics_seen += 1,
                Err(ServiceError::DeadlineExceeded) => {} // injected Cancel
                Err(e) => panic!("seed {seed}: unexpected service error {e:?}"),
            }
        }
        // The storm is over; the same worker (or its replacement
        // session) must still answer correctly.
        let after = server.submit(probe()).unwrap().wait().unwrap();
        assert_eq!(after, expected, "seed {seed}: server must recover");
        let summary = server.shutdown();
        assert_eq!(summary.accepted, 11, "seed {seed}");
        assert_eq!(
            summary.accepted,
            summary.served
                + summary.deadline_exceeded
                + summary.worker_panics
                + summary.unfold_errors,
            "seed {seed}: every accepted request lands in exactly one bucket: {summary:?}"
        );
    }
    assert!(
        fired_total > 0,
        "server.worker never fired across the sweep"
    );
    assert!(panics_seen > 0, "no injected panic was ever delivered");
}

/// Every declared failpoint site is exercised somewhere in this binary:
/// the registry's site list and the sweeps above must not drift apart.
#[test]
fn all_sites_are_covered_by_this_suite() {
    let covered = [
        "unfold.expand",
        "extend.level",
        "eval.subformula",
        "cache.insert",
        "server.worker",
    ];
    assert_eq!(SITES, &covered, "new sites need chaos coverage here");
}
