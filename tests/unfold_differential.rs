//! Differential proof that the hash-keyed unfold merge is exact.
//!
//! The unfolder used to merge identical successors through
//! `format!("{:?}")` string keys; it now merges through a `Hash + Eq`
//! probe on `(actions, state)`. The two are semantically equivalent
//! whenever `Debug` output is injective on states (it is for
//! [`SimpleState`]), but equivalence must be *proved*, not eyeballed:
//! this harness retains the old Debug-string merge as a reference
//! implementation and sweeps seeded random protocol models of varying
//! agent count, horizon, and branching, asserting that the production
//! unfold produces a [`Pps`] identical to the reference in every
//! observable — run count, bit-equal run probabilities, per-point global
//! states and action labels, and information-set cells.
//!
//! The production pipeline has since been rebuilt again on top of state
//! *interning* (each distinct global state stored once in a
//! [`StatePool`], nodes carrying `StateId`s, expansions memoized per
//! `(state, time)`), so the sweep now also proves the interned pipeline
//! exact: same reference, same bit-equality requirements, plus pool
//! consistency checks (ids resolve to the states the reference stores at
//! every point, and the pool holds no duplicates).
//!
//! The *build* pass is proved the same way: the old per-node cell
//! construction (clone + hash a full local per node, insert runs one bit
//! at a time) is retained as [`reference_cells`], and the sweep asserts
//! the production pass — per-agent `LocalId` interning, word-filled
//! run-sets from contiguous run ranges, validation memoized per distinct
//! expansion, optionally one thread per agent — produces identical
//! `cells`, `cell_of`, and run ranges, with bit-equal run probabilities,
//! sequential and threaded.
//!
//! Two further production paths are swept against the same references:
//!
//! * the **scratch-buffer model API** — the unfolder drives
//!   [`ProtocolModel`]'s `moves_into`/`transition_into`; wrapping a model
//!   in [`VecApiModel`] pins every query to the retained `Vec`-returning
//!   methods (default `_into` impls), and the two unfolds must be
//!   identical in every observable, bit-equal probabilities included;
//! * **parallel subtree unfolding** — `unfold_with_options` with
//!   `parallel_subtrees` on unfolds each depth-1 subtree on a worker with
//!   its own pool shard and stitches deterministically; the result must
//!   equal the sequential system *exactly*: same pool ids, same node
//!   order, same parents/states/times, bit-equal run probabilities,
//!   identical cells.
//!
//! A second battery property-tests [`CartesianMoves`]: across randomized
//! distribution shapes (including singletons and the zero-agent case) the
//! joint probabilities must sum exactly to one and enumerate exactly
//! `∏ |dist_i|` entries.

mod common;

use std::collections::HashMap;

use pak::core::generator::SplitMix64;
use pak::core::prelude::*;
use pak::num::Rational;
use pak::protocol::generator::{random_model, RandomModelConfig};
use pak::protocol::model::{validate_distribution, ProtocolModel, TableModel, VecApiModel};
use pak::protocol::unfold::{
    unfold_to_builder, unfold_with, unfold_with_options, CartesianMoves, UnfoldConfig,
    UnfoldOptions, Unfolder,
};

/// The pre-refactor merge, retained verbatim as the reference semantics:
/// successors are merged when their Debug-formatted `(actions, state)`
/// strings coincide.
fn reference_unfold(model: &TableModel<Rational>) -> Pps<SimpleState, Rational> {
    let n_agents = model.n_agents;
    let mut builder = PpsBuilder::<SimpleState, Rational>::new(n_agents);

    let initial = ProtocolModel::<Rational>::initial_states(model);
    validate_distribution(&initial).unwrap();
    let mut frontier: Vec<(NodeId, SimpleState, u32)> = Vec::new();
    for (state, p) in initial {
        let id = builder.initial(state.clone(), p).unwrap();
        frontier.push((id, state, 0));
    }

    while let Some((node, state, time)) = frontier.pop() {
        if ProtocolModel::<Rational>::is_terminal(model, &state, time) {
            continue;
        }
        let mut per_agent: Vec<Vec<(Option<ActionId>, Rational)>> =
            Vec::with_capacity(n_agents as usize);
        for a in 0..n_agents {
            let local = state.local(AgentId(a));
            let dist = model.moves(AgentId(a), &local, time);
            validate_distribution(&dist).unwrap();
            per_agent.push(dist);
        }

        #[allow(clippy::type_complexity)]
        let mut successors: Vec<(SimpleState, Vec<(AgentId, ActionId)>, Rational)> = Vec::new();
        let mut index: HashMap<(String, String), usize> = HashMap::new();
        for (joint, p_joint) in CartesianMoves::new(&per_agent) {
            let actions: Vec<(AgentId, ActionId)> = joint
                .iter()
                .enumerate()
                .filter_map(|(a, mv)| model.action_of(mv).map(|act| (AgentId(a as u32), act)))
                .collect();
            let outcomes = model.transition(&state, &joint, time);
            validate_distribution(&outcomes).unwrap();
            for (succ, p_env) in outcomes {
                let p = p_joint.mul(&p_env);
                let key = (format!("{actions:?}"), format!("{succ:?}"));
                match index.get(&key) {
                    Some(&i) => {
                        successors[i].2 = successors[i].2.add(&p);
                    }
                    None => {
                        index.insert(key, successors.len());
                        successors.push((succ, actions.clone(), p));
                    }
                }
            }
        }

        for (succ, actions, p) in successors {
            let child = builder.child(node, succ.clone(), p, &actions).unwrap();
            frontier.push((child, succ, time + 1));
        }
    }

    builder.build().unwrap()
}

/// Asserts that two systems are identical in every observable the theory
/// depends on: runs and their (bit-equal) probabilities, per-point global
/// states and action labels, and each agent's information-set cells.
fn assert_identical(
    got: &Pps<SimpleState, Rational>,
    want: &Pps<SimpleState, Rational>,
    ctx: &str,
) {
    assert_eq!(got.num_runs(), want.num_runs(), "{ctx}: num_runs");
    assert_eq!(got.num_nodes(), want.num_nodes(), "{ctx}: num_nodes");
    assert_eq!(got.horizon(), want.horizon(), "{ctx}: horizon");
    for run in want.run_ids() {
        assert_eq!(
            got.run_probability(run),
            want.run_probability(run),
            "{ctx}: probability of run {run}"
        );
        assert_eq!(got.run_len(run), want.run_len(run), "{ctx}: len of {run}");
        for t in 0..want.run_len(run) as u32 {
            let pt = Point { run, time: t };
            assert_eq!(got.state_at(pt), want.state_at(pt), "{ctx}: state at {pt}");
            assert_eq!(
                got.actions_at(pt),
                want.actions_at(pt),
                "{ctx}: actions at {pt}"
            );
        }
    }
    // Interning invariants: every node's id resolves (through the pool) to
    // exactly the state the reference stores, ids agree with state
    // equality, and the pool holds each distinct state exactly once.
    let pool = got.state_pool();
    assert!(
        got.num_distinct_states() < got.num_nodes(),
        "{ctx}: more distinct states than state nodes"
    );
    {
        let mut seen: Vec<&SimpleState> = Vec::new();
        for (_, s) in pool.iter() {
            assert!(!seen.contains(&s), "{ctx}: pool stores a duplicate {s:?}");
            seen.push(s);
        }
    }
    for run in got.run_ids() {
        for t in 0..got.run_len(run) as u32 {
            let node = got.node_at(run, t).unwrap();
            let id = got.node_state_id(node);
            assert_eq!(
                pool.get(id),
                Some(got.node_state(node)),
                "{ctx}: id of {node} does not resolve to its state"
            );
            assert_eq!(
                pool.lookup(got.node_state(node)),
                Some(id),
                "{ctx}: pool lookup disagrees with the stored id"
            );
        }
    }

    // Cells: same information sets, as (agent, time, data, member runs).
    let cell_key = |p: &Pps<SimpleState, Rational>| -> Vec<(u32, Time, u64, Vec<u32>)> {
        let mut out: Vec<(u32, Time, u64, Vec<u32>)> = p
            .cells()
            .map(|(_, c)| {
                (
                    c.agent.0,
                    c.time,
                    c.data,
                    c.runs.iter().map(|r| r.0).collect(),
                )
            })
            .collect();
        out.sort();
        out
    };
    assert_eq!(cell_key(got), cell_key(want), "{ctx}: cells");
    // Action events: every (agent, action) pair labels the same run sets.
    for a in 0..want.num_agents() {
        for act in 0..8u32 {
            let (agent, action) = (AgentId(a), ActionId(act));
            let (g, w) = (
                got.action_event(agent, action),
                want.action_event(agent, action),
            );
            let gv: Vec<RunId> = g.iter().collect();
            let wv: Vec<RunId> = w.iter().collect();
            assert_eq!(gv, wv, "{ctx}: action event {agent}/{action}");
        }
    }
}

/// The pre-refactor cell construction, retained verbatim in spirit as the
/// reference semantics: walk the non-root nodes in id order once per
/// agent, clone and hash each node's full local data into a `(time, data)`
/// key, allocate cell ids in first-occurrence order, and accumulate each
/// cell's member nodes and run-set run by run.
///
/// The production build pass now interns locals per distinct state,
/// word-fills run-sets from contiguous run ranges, and may construct each
/// agent's cells on its own thread — this function is what all of that
/// must stay observably equal to.
#[allow(clippy::type_complexity)]
fn reference_cells(
    pps: &Pps<SimpleState, Rational>,
) -> Vec<(AgentId, Time, u64, Vec<NodeId>, RunSet)> {
    let mut cells: Vec<(AgentId, Time, u64, Vec<NodeId>, RunSet)> = Vec::new();
    for agent in pps.agents() {
        let mut index: HashMap<(Time, u64), usize> = HashMap::new();
        for node in (1..pps.num_nodes() as u32).map(NodeId) {
            let time = pps.node_time(node);
            let data = pps.node_state(node).local(agent);
            let slot = *index.entry((time, data)).or_insert_with(|| {
                cells.push((agent, time, data, Vec::new(), pps.no_runs()));
                cells.len() - 1
            });
            cells[slot].3.push(node);
            // Membership run by run (single-bit inserts): the reference for
            // the contiguous `insert_range` fill.
            for run in pps.run_ids() {
                if pps.nodes_of(run).contains(&node) {
                    cells[slot].4.insert(run);
                }
            }
        }
    }
    cells
}

/// Asserts the production cells/`cell_of` of `got` are identical — ids,
/// order, members, and run-sets — to the reference per-node construction.
fn assert_cells_match_reference(got: &Pps<SimpleState, Rational>, ctx: &str) {
    let want = reference_cells(got);
    assert_eq!(got.num_cells(), want.len(), "{ctx}: cell count");
    for ((id, cell), (agent, time, data, nodes, runs)) in got.cells().zip(&want) {
        assert_eq!(cell.agent, *agent, "{ctx}: agent of {id}");
        assert_eq!(cell.time, *time, "{ctx}: time of {id}");
        assert_eq!(cell.data, *data, "{ctx}: data of {id}");
        assert_eq!(cell.nodes, *nodes, "{ctx}: nodes of {id}");
        assert_eq!(cell.runs, *runs, "{ctx}: runs of {id}");
    }
    // `cell_of` (exercised through `cell_at`) must map every point into
    // the cell the reference puts its node in.
    for run in got.run_ids() {
        for (t, &node) in got.nodes_of(run).iter().enumerate() {
            let pt = Point {
                run,
                time: t as Time,
            };
            for agent in got.agents() {
                let cell = got.cell_at(agent, pt).expect("point exists");
                let member = want[cell.index()].3.contains(&node);
                assert!(member, "{ctx}: cell_of disagrees at {pt} for {agent}");
            }
        }
    }
    // Run ranges: the contiguous interval behind each node's event must
    // equal per-run path membership recomputed from the flat run arena.
    for node in (1..got.num_nodes() as u32).map(NodeId) {
        let through = got.runs_through(node);
        let reference =
            RunSet::from_predicate(got.num_runs(), |run| got.nodes_of(run).contains(&node));
        assert_eq!(through, reference, "{ctx}: run range of {node}");
    }
}

/// Builds the same unfolded tree twice — sequential cells and one thread
/// per agent — and asserts the results are bit-identical in every
/// observable, including exact run probabilities.
fn assert_threaded_build_identical(model: &TableModel<Rational>, ctx: &str) {
    let builder = unfold_to_builder::<_, Rational>(model, &UnfoldConfig::default()).unwrap();
    let sequential = builder
        .clone()
        .build_with(&BuildOptions {
            parallel_cells: Some(false),
        })
        .unwrap();
    let threaded = builder
        .build_with(&BuildOptions {
            parallel_cells: Some(true),
        })
        .unwrap();
    assert_identical(&threaded, &sequential, &format!("{ctx} [threaded]"));
    for run in sequential.run_ids() {
        assert_eq!(
            threaded.run_probability(run),
            sequential.run_probability(run),
            "{ctx}: threaded probability of {run}"
        );
    }
    for ((id_t, cell_t), (id_s, cell_s)) in threaded.cells().zip(sequential.cells()) {
        assert_eq!(id_t, id_s, "{ctx}: threaded cell id order");
        assert_eq!(cell_t, cell_s, "{ctx}: threaded cell {id_t}");
    }
}

/// Unfolds the model twice — sequential and parallel subtree workers —
/// and asserts the stitched system equals the sequential one *exactly*:
/// same pool ids in the same order, same node order (parents, state ids,
/// times), same run arena, bit-equal run probabilities, identical cells.
fn assert_parallel_unfold_identical(model: &TableModel<Rational>, ctx: &str) {
    let seq = unfold_with_options(
        model,
        &UnfoldConfig::default(),
        &UnfoldOptions {
            parallel_subtrees: Some(false),
            ..UnfoldOptions::default()
        },
    )
    .unwrap();
    let par = unfold_with_options(
        model,
        &UnfoldConfig::default(),
        &UnfoldOptions {
            parallel_subtrees: Some(true),
            ..UnfoldOptions::default()
        },
    )
    .unwrap();
    // Strict id-level identity — pool ids, node order, runs, cells —
    // via the shared checker of the differential layer.
    common::assert_identical_systems(&seq, &par, ctx);
    // And everything observable, via the shared checker.
    assert_identical(&par, &seq, &format!("{ctx} [parallel]"));
}

/// Grows the model's tree one horizon at a time through a retained
/// [`Unfolder`] handle, asserting at every intermediate horizon that the
/// grown system is **bit-identical** to a from-scratch unfold capped at
/// that horizon: same pool ids in the same order, same node order
/// (parents, state ids, times), same runs with bit-equal probabilities,
/// cells id-for-id, same action events.
fn assert_extension_matches_scratch(model: &TableModel<Rational>, ctx: &str) {
    let mut unfolder = Unfolder::<_, Rational>::new(
        model,
        UnfoldConfig {
            horizon: Some(1),
            ..UnfoldConfig::default()
        },
    )
    .unwrap();
    let mut h = 1u32;
    loop {
        let scratch = unfold_with(
            model,
            &UnfoldConfig {
                horizon: Some(h),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        let step = format!("{ctx} [grown h={h}]");
        // Strict id-level identity (pool ids, node order, runs, cells)…
        common::assert_identical_systems(&scratch, unfolder.pps(), &step);
        // …and every theory-level observable, action events included.
        assert_identical(unfolder.pps(), &scratch, &step);
        if !unfolder.extend_horizon().unwrap() {
            break;
        }
        h += 1;
    }
    // Fully grown equals the uncapped unfold of the same model.
    let full = unfold_with(model, &UnfoldConfig::default()).unwrap();
    common::assert_identical_systems(&full, unfolder.pps(), &format!("{ctx} [grown full]"));
}

#[test]
fn incremental_extension_matches_scratch_across_sweep() {
    // The same grid as the merge sweep below: a tree grown 1→2→…→h via
    // `extend_horizon` must be bit-identical to a from-scratch horizon-h
    // unfold at *every* step, across >100 seeded configurations.
    let mut cases = 0usize;
    for n_agents in 1..=3u32 {
        for horizon in 1..=4u32 {
            for max_env_branching in [1u32, 2, 3] {
                if n_agents == 3 && horizon == 4 {
                    continue; // joint-move branching is exponential in agents
                }
                for seed in 0..4u64 {
                    let cfg = RandomModelConfig {
                        n_agents,
                        initial_states: 1 + (seed as u32 % 3),
                        horizon,
                        envs: 3,
                        max_env_branching,
                        local_values: 2,
                        actions_per_agent: 2,
                    };
                    let model = random_model::<Rational>(seed * 101 + 7, &cfg);
                    let ctx = format!(
                        "agents={n_agents} horizon={horizon} branch={max_env_branching} seed={seed}"
                    );
                    assert_extension_matches_scratch(&model, &ctx);
                    cases += 1;
                }
            }
        }
    }
    assert!(cases >= 100, "sweep shrank unexpectedly: {cases} cases");
}

#[test]
fn hash_merge_matches_reference_merge_across_sweep() {
    // Sweep agents × horizon × branching; several seeds each. Kept small
    // enough to finish quickly in debug builds while covering singleton
    // priors, deep trees, and wide environment branching.
    let mut cases = 0usize;
    for n_agents in 1..=3u32 {
        for horizon in 1..=4u32 {
            for max_env_branching in [1u32, 2, 3] {
                if n_agents == 3 && horizon == 4 {
                    continue; // joint-move branching is exponential in agents
                }
                for seed in 0..4u64 {
                    let cfg = RandomModelConfig {
                        n_agents,
                        initial_states: 1 + (seed as u32 % 3),
                        horizon,
                        envs: 3,
                        max_env_branching,
                        local_values: 2,
                        actions_per_agent: 2,
                    };
                    let model = random_model::<Rational>(seed * 101 + 7, &cfg);
                    let got = unfold_with(&model, &UnfoldConfig::default()).unwrap();
                    let want = reference_unfold(&model);
                    let ctx = format!(
                        "agents={n_agents} horizon={horizon} branch={max_env_branching} seed={seed}"
                    );
                    assert_identical(&got, &want, &ctx);
                    assert!(got.measure(&got.all_runs()).is_one(), "{ctx}: total");
                    // The scratch-buffer model API vs the retained
                    // `Vec`-returning path: `TableModel`'s native `_into`
                    // implementations against the trait's default impls
                    // (which route every query through `moves`/
                    // `transition`), on the same unfolder.
                    let via_vec_api =
                        unfold_with(&VecApiModel(model.clone()), &UnfoldConfig::default()).unwrap();
                    assert_identical(&got, &via_vec_api, &format!("{ctx} [vec-api]"));
                    for run in got.run_ids() {
                        assert_eq!(
                            got.run_probability(run),
                            via_vec_api.run_probability(run),
                            "{ctx}: vec-api probability of {run}"
                        );
                    }
                    // Parallel subtree unfolding vs the sequential order:
                    // pool ids, node order, probabilities, cells.
                    assert_parallel_unfold_identical(&model, &ctx);
                    // The build pass itself: interned/word-filled cells vs
                    // the retained per-node reference, on both the memoized
                    // production tree and the mark-free reference tree, and
                    // the threaded path vs the sequential one.
                    assert_cells_match_reference(&got, &ctx);
                    assert_cells_match_reference(&want, &format!("{ctx} [reference tree]"));
                    assert_threaded_build_identical(&model, &ctx);
                    cases += 1;
                }
            }
        }
    }
    assert!(cases >= 100, "sweep shrank unexpectedly: {cases} cases");
}

#[test]
fn interning_shares_states_across_nodes() {
    // The whole point of the pool: unfolded trees revisit states, so the
    // number of distinct states must be (much) smaller than the number of
    // state nodes on any non-trivial model of this generator family.
    let cfg = RandomModelConfig {
        n_agents: 2,
        initial_states: 2,
        horizon: 4,
        envs: 3,
        max_env_branching: 2,
        local_values: 2,
        actions_per_agent: 2,
    };
    let model = random_model::<Rational>(11, &cfg);
    let pps = unfold_with(&model, &UnfoldConfig::default()).unwrap();
    assert!(
        pps.num_distinct_states() * 2 < pps.num_nodes() - 1,
        "expected heavy state sharing, got {} distinct states over {} nodes",
        pps.num_distinct_states(),
        pps.num_nodes() - 1
    );
    // Sharing is not allowed to blur identity: two points whose states
    // compare equal must carry the same id, and vice versa.
    for run in pps.run_ids() {
        for t in 0..pps.run_len(run) as u32 {
            let a = pps.node_at(run, t).unwrap();
            for run2 in pps.run_ids() {
                if let Some(b) = pps.node_at(run2, t) {
                    assert_eq!(
                        pps.node_state_id(a) == pps.node_state_id(b),
                        pps.node_state(a) == pps.node_state(b),
                        "id equality must coincide with state equality"
                    );
                }
            }
        }
    }
}

#[test]
fn cartesian_moves_is_the_product_distribution() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..250 {
        // 0..=4 agents: the zero-agent case must yield the single empty
        // joint move with probability one (the empty product).
        let n_agents = rng.below(5) as usize;
        let dists: Vec<Vec<(u64, Rational)>> = (0..n_agents)
            .map(|_| {
                let k = rng.range(1, 4); // includes singleton distributions
                let weights: Vec<u64> = (0..k).map(|_| rng.range(1, 9)).collect();
                let total: u64 = weights.iter().sum();
                weights
                    .into_iter()
                    .enumerate()
                    .map(|(i, w)| (i as u64, Rational::from_ratio(w as i64, total as i64)))
                    .collect()
            })
            .collect();
        let expected: usize = dists.iter().map(Vec::len).product();
        let all: Vec<(Vec<u64>, Rational)> = CartesianMoves::new(&dists).collect();
        assert_eq!(all.len(), expected, "case {case}: entry count");
        let total: Rational = all.iter().map(|(_, p)| p.clone()).sum();
        assert!(total.is_one(), "case {case}: joint sum {total} ≠ 1");
        // Entries are distinct joint moves.
        let mut joints: Vec<&Vec<u64>> = all.iter().map(|(j, _)| j).collect();
        joints.sort();
        joints.dedup();
        assert_eq!(joints.len(), expected, "case {case}: duplicate joints");
    }
}

#[test]
fn cartesian_moves_with_an_empty_distribution_is_empty() {
    // A single empty per-agent distribution kills the whole product: no
    // joint move can be formed (distinct from the zero-agent case).
    let d: Vec<(u64, Rational)> = vec![(0, Rational::one())];
    let empty: Vec<(u64, Rational)> = vec![];
    let all: Vec<(Vec<u64>, Rational)> = CartesianMoves::new(&[d, empty]).collect();
    assert!(all.is_empty());
}
