//! Differential proof for the protocol DSL: compiled programs are
//! bit-identical to a direct AST interpretation, at every horizon, under
//! every adversary, and through the batched engine.
//!
//! The reference implementation is [`AstModel`]: a [`ProtocolModel`] that
//! *interprets* the parsed [`Program`] on every call — linear scans over
//! the declaration lists, name resolution on the fly, no tables, no
//! indexes, no compilation step. It shares nothing with the compiler
//! except the AST itself, so agreement means the whole pipeline
//! (`compile` → [`TableModel`] → index → unfold) preserves the program's
//! semantics exactly.
//!
//! The sweep drives ≥ 100 grammar-fuzzed programs (seeded, reproducible)
//! through four stages per program:
//!
//! 1. unfold the compiled [`TableModel`] vs unfold the [`AstModel`] —
//!    identical in the strict id-level sense of
//!    [`common::assert_identical_systems`], for the base model *and*
//!    every adversary variant;
//! 2. grow the compiled model one horizon step at a time through
//!    [`Unfolder::extend_horizon`] and compare against a from-scratch
//!    unfold at every intermediate horizon;
//! 3. evaluate a batch of random formulas with the `pak-engine`
//!    [`Evaluator`] and compare every verdict against the naive
//!    [`ModelChecker`];
//! 4. pretty-print the AST and re-parse it, asserting structural equality
//!    (spans excluded) and print-fixpoint.
//!
//! The DSL twins of `pak_systems::dsl_twins` are proved here too: each
//! twin program unfolds bit-identically to its hand-written scenario
//! model.

mod common;

use std::marker::PhantomData;

use pak::core::ids::{ActionId, AgentId, Time};
use pak::core::prob::Probability;
use pak::core::state::SimpleState;
use pak::dsl::ast::{GuardPat, MoveAction, Program, TransRule};
use pak::dsl::fuzz::{fuzz_program, FuzzConfig};
use pak::dsl::{compile, parse};
use pak::engine::Evaluator;
use pak::logic::generator::{random_formula, RandomFormulaConfig};
use pak::logic::{Formula, ModelChecker};
use pak::num::Rational;
use pak::protocol::model::ProtocolModel;
use pak::protocol::unfold::{unfold, unfold_with, UnfoldConfig, Unfolder};
use pak::systems::dsl_twins::{
    figure1_hand, flat_hand, judge_hand, threshold_hand, FIGURE1_TWIN, FLAT_TWIN, JUDGE_TWIN,
    THRESHOLD_TWIN,
};

/// Fuzzed programs swept through the full chain (the acceptance bar is
/// ≥ 100; the exact-count assert keeps it from eroding silently).
const FUZZ_CASES: u64 = 120;

/// A direct interpreter of the parsed AST: every query scans the
/// declarations afresh. Deliberately naive — it is the specification the
/// compiled [`TableModel`](pak::protocol::model::TableModel) is tested
/// against, so it must stay obviously correct rather than fast.
struct AstModel<'a, P> {
    prog: &'a Program,
    /// Transition rules in resolution order: adversary overrides first
    /// (when interpreting a variant), then the base rules.
    rules: Vec<&'a TransRule>,
    _p: PhantomData<P>,
}

impl<'a, P> AstModel<'a, P> {
    fn base(prog: &'a Program) -> Self {
        AstModel {
            prog,
            rules: prog.transitions.iter().collect(),
            _p: PhantomData,
        }
    }

    fn adversary(prog: &'a Program, idx: usize) -> Self {
        let mut rules: Vec<&'a TransRule> = prog.adversaries[idx].rules.iter().collect();
        rules.extend(prog.transitions.iter());
        AstModel {
            prog,
            rules,
            _p: PhantomData,
        }
    }

    fn state_tuple(&self, name: &str) -> SimpleState {
        let s = self
            .prog
            .states
            .iter()
            .find(|s| s.name.value == name)
            .expect("validated state name");
        SimpleState::new(s.env, s.locals.clone())
    }

    fn action_id(&self, name: &str) -> ActionId {
        let a = self
            .prog
            .actions
            .iter()
            .find(|a| a.name.value == name)
            .expect("validated action name");
        ActionId(u32::try_from(a.id.value).expect("validated action id"))
    }

    fn guard_matches(&self, rule: &TransRule, moves: &[Option<ActionId>]) -> bool {
        match &rule.guard {
            None => true,
            Some(pats) => {
                pats.len() == moves.len()
                    && pats.iter().zip(moves).all(|(pat, mv)| match &pat.value {
                        GuardPat::Any => true,
                        GuardPat::Skip => mv.is_none(),
                        GuardPat::Named(n) => *mv == Some(self.action_id(n)),
                    })
            }
        }
    }
}

impl<P: Probability> ProtocolModel<P> for AstModel<'_, P> {
    type Global = SimpleState;
    type Move = Option<ActionId>;

    fn n_agents(&self) -> u32 {
        u32::try_from(self.prog.agents.len()).expect("validated agent count")
    }

    fn initial_states(&self) -> Vec<(SimpleState, P)> {
        self.prog
            .init
            .iter()
            .map(|arm| {
                let w = arm.weight.value;
                (
                    self.state_tuple(&arm.state.value),
                    P::from_ratio(w.num, w.den),
                )
            })
            .collect()
    }

    fn is_terminal(&self, _state: &SimpleState, time: Time) -> bool {
        u64::from(time) >= self.prog.horizon.as_ref().expect("validated horizon").value
    }

    fn moves(&self, agent: AgentId, local: &u64, time: Time) -> Vec<(Self::Move, P)> {
        let name = &self.prog.agents[agent.0 as usize].value;
        for block in &self.prog.moves {
            if block.agent.value != *name {
                continue;
            }
            for rule in &block.rules {
                if rule.local.value == *local && rule.time.value == u64::from(time) {
                    return rule
                        .dist
                        .iter()
                        .map(|arm| {
                            let mv = match &arm.action.value {
                                MoveAction::Skip => None,
                                MoveAction::Named(n) => Some(self.action_id(n)),
                            };
                            (
                                mv,
                                P::from_ratio(arm.weight.value.num, arm.weight.value.den),
                            )
                        })
                        .collect();
                }
            }
        }
        vec![(None, P::one())]
    }

    fn action_of(&self, mv: &Self::Move) -> Option<ActionId> {
        *mv
    }

    fn transition(
        &self,
        state: &SimpleState,
        moves: &[Self::Move],
        time: Time,
    ) -> Vec<(SimpleState, P)> {
        for rule in &self.rules {
            if self.state_tuple(&rule.from.value) == *state
                && rule.time.value == u64::from(time)
                && self.guard_matches(rule, moves)
            {
                return rule
                    .dist
                    .iter()
                    .map(|arm| {
                        (
                            self.state_tuple(&arm.state.value),
                            P::from_ratio(arm.weight.value.num, arm.weight.value.den),
                        )
                    })
                    .collect();
            }
        }
        vec![(state.clone(), P::one())]
    }
}

fn formulas_for(seed: u64, n_agents: u32) -> Vec<Formula<SimpleState, Rational>> {
    (0..4u64)
        .map(|k| {
            let cfg = RandomFormulaConfig {
                max_depth: (k % 4) as u32,
                n_agents,
                n_actions: 2,
                env_values: 3,
                local_values: 2,
            };
            random_formula::<Rational>(seed.wrapping_mul(977).wrapping_add(k * 131 + 17), &cfg)
        })
        .collect()
}

/// Stages 1–3 for one compiled model against its AST interpretation.
fn check_program(seed: u64, src: &str) {
    let prog = parse(src).unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{src}"));
    let compiled = compile::<Rational>(&prog)
        .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{src}"));

    // Stage 1: compiled vs interpreted, base model and every adversary.
    let table = unfold::<_, Rational>(compiled.model()).expect("compiled model unfolds");
    let interp = unfold::<_, Rational>(&AstModel::base(&prog)).expect("AST model unfolds");
    common::assert_identical_systems(&interp, &table, &format!("seed {seed}: base"));
    for (idx, (name, variant)) in compiled.adversaries().enumerate() {
        let table = unfold::<_, Rational>(variant).expect("adversary variant unfolds");
        let interp =
            unfold::<_, Rational>(&AstModel::adversary(&prog, idx)).expect("AST adversary unfolds");
        common::assert_identical_systems(&interp, &table, &format!("seed {seed}: {name}"));
    }

    // Stage 2: incremental extension vs from-scratch at every horizon.
    let mut u = Unfolder::new(
        compiled.model(),
        UnfoldConfig {
            horizon: Some(1),
            ..UnfoldConfig::default()
        },
    )
    .expect("compiled model unfolds at horizon 1");
    loop {
        let scratch = unfold_with(
            compiled.model(),
            &UnfoldConfig {
                horizon: Some(u.horizon()),
                ..UnfoldConfig::default()
            },
        )
        .expect("from-scratch unfold");
        common::assert_identical_systems(
            &scratch,
            u.pps(),
            &format!("seed {seed}: extension at horizon {}", u.horizon()),
        );
        if !u.extend_horizon().expect("extension within budget") {
            break;
        }
    }

    // Stage 3: batched engine verdicts vs the naive checker.
    let formulas = formulas_for(seed, ProtocolModel::<Rational>::n_agents(compiled.model()));
    let mc = ModelChecker::new(&table);
    let mut ev = Evaluator::new(&table);
    let verdicts = ev.evaluate_batch(&formulas);
    for (f, v) in formulas.iter().zip(&verdicts) {
        assert_eq!(v.valid, mc.valid(f), "seed {seed}: {f}");
        assert_eq!(v.satisfiable, mc.satisfiable(f), "seed {seed}: {f}");
        assert_eq!(v.counterexample, mc.counterexample(f), "seed {seed}: {f}");
    }
}

#[test]
fn fuzzed_programs_compile_unfold_extend_and_evaluate_identically() {
    let mut cases = 0;
    for seed in 0..FUZZ_CASES {
        let src = fuzz_program(seed, &FuzzConfig::default());
        check_program(seed, &src);
        cases += 1;
    }
    assert_eq!(cases, FUZZ_CASES, "sweep shrank: {cases} programs");
}

/// Round-trip property: the canonical pretty-printer re-parses to a
/// structurally equal AST (spans excluded), and printing is a fixpoint.
#[test]
fn pretty_printed_programs_reparse_identically() {
    for seed in 0..FUZZ_CASES {
        let src = fuzz_program(seed, &FuzzConfig::default());
        let prog = parse(&src).expect("fuzzed programs parse");
        let printed = prog.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
        assert_eq!(prog, reparsed, "seed {seed}: round trip changed the AST");
        assert_eq!(
            printed,
            reparsed.to_string(),
            "seed {seed}: printing is not a fixpoint"
        );
    }
}

/// The DSL twins: each program must unfold bit-identically to the
/// hand-written scenario model at the same parameters — same pool ids in
/// the same order, same node order, bit-equal run probabilities,
/// identical cells. This is the proof obligation stated in the
/// `pak_systems` module docs.
fn assert_twin<M: ProtocolModel<Rational, Global = SimpleState, Move = Option<ActionId>>>(
    twin: &str,
    hand: &M,
    ctx: &str,
) {
    let compiled = pak::dsl::compile_str::<Rational>(twin)
        .unwrap_or_else(|e| panic!("{ctx} twin does not compile: {e}"));
    let dsl = unfold::<_, Rational>(compiled.model()).expect("twin unfolds");
    let want = unfold::<_, Rational>(hand).expect("hand model unfolds");
    common::assert_identical_systems(&want, &dsl, ctx);
}

#[test]
fn judge_twin_is_bit_identical() {
    assert_twin(JUDGE_TWIN, &judge_hand::<Rational>(), "judge");
}

#[test]
fn threshold_twin_is_bit_identical() {
    assert_twin(THRESHOLD_TWIN, &threshold_hand::<Rational>(), "threshold");
}

#[test]
fn figure1_twin_is_bit_identical() {
    assert_twin(FIGURE1_TWIN, &figure1_hand(), "figure1");
}

#[test]
fn flat_twin_is_bit_identical() {
    assert_twin(FLAT_TWIN, &flat_hand::<Rational>(), "flat");
}
