//! Property-based verification of the paper's theorems on random systems.
//!
//! Two generators are used deliberately:
//!
//! * **Protocol-consistent systems** (`pak_protocol::generator`): random
//!   table protocols unfolded into pps — exactly the class the paper
//!   studies (§2.2). Here Lemma 4.3(b) applies, so past-based facts are
//!   local-state independent of *untagged* actions and the theorems hold
//!   **non-vacuously** (exact equality for Theorem 6.2).
//!
//! * **Raw random trees** (`pak_core::generator`): arbitrary edge-labelled
//!   trees, a strictly larger class. Lemma 4.3(b) does *not* apply there
//!   (its proof uses protocol consistency), so the theorems are checked in
//!   their precise implication form: whenever Definition 4.1 holds, the
//!   conclusion must hold.
//!
//! The case grids are deterministic (fixed seed strides, no external
//! property-testing dependency), so every failure replays exactly.

use pak::core::generator::{GeneratorConfig, PpsGenerator};
use pak::core::prelude::*;
use pak::num::Rational;
use pak::protocol::generator::{random_pps, RandomModelConfig};

/// All (agent, action) pairs appearing in a system.
fn all_actions(pps: &Pps<SimpleState, Rational>) -> Vec<(AgentId, ActionId)> {
    let mut out: Vec<(AgentId, ActionId)> = Vec::new();
    for run in pps.run_ids() {
        for t in 0..pps.run_len(run) as u32 {
            for &(a, act) in pps.actions_at(Point { run, time: t }) {
                if !out.contains(&(a, act)) {
                    out.push((a, act));
                }
            }
        }
    }
    out
}

/// Makes an action proper by occurrence tagging if needed.
fn properized(
    pps: &Pps<SimpleState, Rational>,
    agent: AgentId,
    action: ActionId,
) -> (Pps<SimpleState, Rational>, ActionId) {
    if pps.is_proper(agent, action) {
        (pps.clone(), action)
    } else {
        let (tagged, fresh) = pps.tag_occurrences(agent, action);
        (tagged, fresh[0])
    }
}

/// A small family of past-based facts to test against.
fn fact_for(which: u8) -> StateFact<SimpleState> {
    match which % 4 {
        0 => StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2)),
        1 => StateFact::new("env < 2", |g: &SimpleState| g.env < 2),
        2 => StateFact::new("local0 = 0", |g: &SimpleState| g.locals[0] == 0),
        _ => StateFact::new("sum odd", |g: &SimpleState| {
            (g.env + g.locals.iter().sum::<u64>()) % 2 == 1
        }),
    }
}

fn protocol_config(seed: u64) -> RandomModelConfig {
    RandomModelConfig {
        n_agents: 1 + (seed % 2) as u32,
        initial_states: 1 + (seed % 2) as u32,
        horizon: 2 + (seed % 2) as u32,
        envs: 2 + (seed % 2),
        max_env_branching: 2,
        local_values: 2,
        actions_per_agent: 2,
    }
}

fn raw_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        n_agents: 1 + (seed % 3) as u32,
        initial_states: 1 + (seed % 2) as u32,
        depth: 2 + (seed % 3) as u32,
        max_branching: 2 + (seed % 2) as u32,
        actions_per_agent: 2,
        local_values: 2 + (seed % 3),
        unbalanced: seed.is_multiple_of(5),
    }
}

/// Deterministic case grid: `n` (seed, which) pairs striding `0..range`.
fn cases(n: u64, range: u64) -> impl Iterator<Item = (u64, u8)> {
    (0..n).map(move |i| ((i.wrapping_mul(13) + 7) % range, (i % 4) as u8))
}

// ======================================================================
// Protocol-consistent systems: the paper's class, non-vacuous checks.
// ======================================================================

/// Lemma 4.3(b) + Theorem 6.2 end to end: on protocol systems, every
/// past-based fact is LSI of every (untagged, proper) action, and the
/// expectation equality holds exactly.
#[test]
fn expectation_theorem_nonvacuous_on_protocol_systems() {
    for (seed, which) in cases(32, 400) {
        let pps = random_pps::<Rational>(seed, &protocol_config(seed)).unwrap();
        let fact = fact_for(which);
        assert!(pps.is_past_based(&fact));
        for (agent, action) in all_actions(&pps) {
            if !pps.is_proper(agent, action) {
                continue; // tagged actions are exercised separately below
            }
            let rep = check_expectation(&pps, agent, action, &fact).unwrap();
            assert!(
                rep.independence.independent,
                "Lemma 4.3(b) failed on a protocol system (seed {seed})"
            );
            assert!(
                rep.equal,
                "Theorem 6.2 equality failed: {} ≠ {} (seed {seed})",
                rep.lhs, rep.rhs
            );
        }
    }
}

/// Theorem 4.2, non-vacuous: with p = min belief when acting, the
/// constraint probability meets p.
#[test]
fn sufficiency_nonvacuous_on_protocol_systems() {
    for (seed, which) in cases(24, 300) {
        let pps = random_pps::<Rational>(seed, &protocol_config(seed)).unwrap();
        let fact = fact_for(which);
        for (agent, action) in all_actions(&pps) {
            if !pps.is_proper(agent, action) {
                continue;
            }
            let analysis = ActionAnalysis::new(&pps, agent, action, &fact).unwrap();
            let p = analysis.min_belief_when_acting().unwrap();
            let rep = check_sufficiency(&pps, agent, action, &fact, &p).unwrap();
            assert!(rep.independent, "seed {seed}");
            assert!(
                analysis.constraint_probability().at_least(&p),
                "seed {seed}: µ = {} < min belief {p}",
                analysis.constraint_probability()
            );
            assert!(rep.implication_holds);
        }
    }
}

/// Lemma 5.1, non-vacuous: some acting point believes ϕ at least as
/// strongly as the achieved constraint probability.
#[test]
fn necessity_nonvacuous_on_protocol_systems() {
    for (seed, which) in cases(24, 300) {
        let pps = random_pps::<Rational>(seed, &protocol_config(seed)).unwrap();
        let fact = fact_for(which);
        for (agent, action) in all_actions(&pps) {
            if !pps.is_proper(agent, action) {
                continue;
            }
            let analysis = ActionAnalysis::new(&pps, agent, action, &fact).unwrap();
            let p = analysis.constraint_probability();
            let rep = check_necessity(&pps, agent, action, &fact, &p).unwrap();
            assert!(rep.independent, "seed {seed}");
            assert!(
                rep.max_belief.at_least(&p),
                "seed {seed}: max belief {} < µ = {p}",
                rep.max_belief
            );
            assert!(rep.witness.is_some());
        }
    }
}

/// Theorem 7.1 on protocol systems, grid of (δ, ε): always holds, and
/// non-vacuously whenever the premise threshold is met.
#[test]
fn pak_theorem_on_protocol_systems() {
    for (seed, which) in cases(16, 200) {
        let pps = random_pps::<Rational>(seed, &protocol_config(seed)).unwrap();
        let fact = fact_for(which);
        for (dn, en) in [(1i64, 1i64), (2, 7), (5, 5), (9, 3)] {
            let delta = Rational::from_ratio(dn, 10);
            let eps = Rational::from_ratio(en, 10);
            for (agent, action) in all_actions(&pps) {
                if !pps.is_proper(agent, action) {
                    continue;
                }
                let rep = check_pak(&pps, agent, action, &fact, &delta, &eps).unwrap();
                assert!(
                    rep.implication_holds,
                    "seed {seed}: Theorem 7.1 failed at δ={delta}, ε={eps}: µ={}, strong={}",
                    rep.constraint_probability, rep.strong_belief_measure
                );
            }
        }
    }
}

/// Lemma F.1 on protocol systems.
#[test]
fn kop_limit_on_protocol_systems() {
    for (seed, which) in cases(24, 300) {
        let pps = random_pps::<Rational>(seed, &protocol_config(seed)).unwrap();
        let fact = fact_for(which);
        for (agent, action) in all_actions(&pps) {
            if !pps.is_proper(agent, action) {
                continue;
            }
            let rep = check_kop_limit(&pps, agent, action, &fact).unwrap();
            assert!(rep.implication_holds, "seed {seed}: Lemma F.1 failed");
            // Non-vacuity: premise µ = 1 forces certainty measure 1.
            if rep.constraint_probability.is_one() {
                assert!(rep.certainty_measure.is_one());
            }
        }
    }
}

// ======================================================================
// Raw random trees: the implication form on a strictly larger class.
// ======================================================================

/// Theorem 6.2 in implication form on arbitrary trees: whenever
/// Definition 4.1 holds (checked directly), the equality must hold —
/// even for actions made proper by tagging and for systems no protocol
/// generates.
#[test]
fn expectation_implication_on_raw_trees() {
    for (seed, which) in cases(32, 400) {
        let mut g = PpsGenerator::new(seed, raw_config(seed));
        let pps = g.generate::<Rational>();
        let fact = fact_for(which);
        for (agent, action) in all_actions(&pps) {
            let (sys, act) = properized(&pps, agent, action);
            let rep = check_expectation(&sys, agent, act, &fact).unwrap();
            assert!(
                rep.implication_holds(),
                "seed {seed}: LSI held but equality failed: {} ≠ {}",
                rep.lhs,
                rep.rhs
            );
        }
    }
}

/// Theorems 4.2, 7.1 and Lemma F.1 in implication form on raw trees.
#[test]
fn implication_forms_on_raw_trees() {
    for (seed, which) in cases(16, 200) {
        let mut g = PpsGenerator::new(seed, raw_config(seed));
        let pps = g.generate::<Rational>();
        let fact = fact_for(which);
        let eps = Rational::from_ratio(1 + i64::from(which) * 2, 10);
        for (agent, action) in all_actions(&pps) {
            let (sys, act) = properized(&pps, agent, action);
            let analysis = ActionAnalysis::new(&sys, agent, act, &fact).unwrap();
            let p = analysis.min_belief_when_acting().unwrap();
            let suff = check_sufficiency(&sys, agent, act, &fact, &p).unwrap();
            assert!(suff.implication_holds, "seed {seed}: Thm 4.2 implication");
            let pak = check_pak_corollary(&sys, agent, act, &fact, &eps).unwrap();
            assert!(pak.implication_holds, "seed {seed}: Cor 7.2 implication");
            let kop = check_kop_limit(&sys, agent, act, &fact).unwrap();
            assert!(kop.implication_holds, "seed {seed}: Lemma F.1 implication");
        }
    }
}

/// Probability-space sanity on raw trees: total measure 1, beliefs in
/// [0, 1], complement law.
#[test]
fn probability_space_invariants() {
    for (seed, which) in cases(40, 500) {
        let mut g = PpsGenerator::new(seed, raw_config(seed));
        let pps = g.generate::<Rational>();
        assert!(pps.measure(&pps.all_runs()).is_one());
        let fact = fact_for(which);
        for agent in pps.agents() {
            for pt in pps.points().collect::<Vec<_>>() {
                let b = pps.belief(agent, &fact, pt).unwrap();
                assert!(b.is_valid_probability(), "belief {b} out of range");
            }
        }
        let ev = pps.fact_event_at_time(&fact, 0);
        let total = pps.measure(&ev).add(&pps.measure(&ev.complement()));
        assert!(total.is_one());
    }
}

/// Occurrence tagging (§3.1) preserves the underlying measure and makes
/// every tagged action proper.
#[test]
fn occurrence_tagging_preserves_measure() {
    for (seed, _) in cases(24, 300) {
        let mut g = PpsGenerator::new(seed, raw_config(seed));
        let pps = g.generate::<Rational>();
        for (agent, action) in all_actions(&pps) {
            let (tagged, fresh) = pps.tag_occurrences(agent, action);
            assert_eq!(tagged.num_runs(), pps.num_runs());
            for run in pps.run_ids() {
                assert_eq!(tagged.run_probability(run), pps.run_probability(run));
            }
            for f in &fresh {
                assert!(tagged.is_proper(agent, *f));
            }
            let mut union = tagged.no_runs();
            for f in &fresh {
                union = union.union(&tagged.action_event(agent, *f));
            }
            assert_eq!(union, pps.action_event(agent, action));
        }
    }
}

/// Expected belief is a convex combination: it always lies between the
/// min and max belief when acting (any system, any fact).
#[test]
fn expected_belief_between_extremes() {
    for (seed, which) in cases(24, 300) {
        let mut g = PpsGenerator::new(seed, raw_config(seed));
        let pps = g.generate::<Rational>();
        let fact = fact_for(which);
        for (agent, action) in all_actions(&pps) {
            let (sys, act) = properized(&pps, agent, action);
            let a = ActionAnalysis::new(&sys, agent, act, &fact).unwrap();
            let e = a.expected_belief();
            assert!(e.at_least(&a.min_belief_when_acting().unwrap()));
            assert!(a.max_belief_when_acting().unwrap().at_least(&e));
        }
    }
}
