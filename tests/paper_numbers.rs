//! Regression tests pinning every concrete number in the paper.
//!
//! Each test cites its anchor in *Probably Approximately Knowing* (Zamir &
//! Moses, PODC 2020) and asserts the reproduced value **exactly** (rational
//! arithmetic). If any of these fail, the reproduction has drifted from the
//! paper.

use pak::core::prelude::*;
use pak::num::Rational;
use pak::systems::figure1;
use pak::systems::firing_squad::{FiringSquad, FsSystem, ALICE, FIRE_A};
use pak::systems::threshold::ThresholdConstruction;

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

// ---------------------------------------------------------------------
// Example 1 (§1) and its analysis in §§3, 7, 8.
// ---------------------------------------------------------------------

/// §1, Example 1: "they both fire at time 2 with probability 0.99 ≥ 0.95".
#[test]
fn example1_both_fire_probability() {
    let analysis = FiringSquad::paper().build_pps().analyze();
    assert_eq!(analysis.constraint_probability(), r(99, 100));
    assert!(analysis.satisfies_constraint(&r(95, 100)));
}

/// §1: "Alice fires with probability 1 at time 2 [when go = 1]".
#[test]
fn example1_alice_always_fires_on_go() {
    let sys = FiringSquad::paper().build_pps();
    let pps = sys.pps();
    // µ(fire_A) = µ(go = 1) = ½.
    assert_eq!(pps.measure(&pps.action_event(ALICE, FIRE_A)), r(1, 2));
}

/// §1: "Alice fires without her beliefs meeting the threshold only with a
/// probability of 0.009 = 0.1 · 0.1 · 0.9. In a measure 0.991 of the runs
/// in which Alice fires, the threshold is met."
#[test]
fn example1_threshold_met_measure() {
    let analysis = FiringSquad::paper().build_pps().analyze();
    let not_met = analysis.threshold_measure(&r(95, 100)).one_minus();
    assert_eq!(not_met, r(9, 1000));
    assert_eq!(analysis.threshold_measure(&r(95, 100)), r(991, 1000));
}

/// §1: "Roughly speaking, in this case Alice ascribes a probability of .99
/// to the event that Bob is firing" — the three belief values 1, 0, 0.99.
#[test]
fn example1_alice_belief_values() {
    let analysis = FiringSquad::paper().build_pps().analyze();
    let beliefs: Vec<Rational> = analysis
        .belief_distribution()
        .into_iter()
        .map(|(b, _)| b)
        .collect();
    assert_eq!(beliefs, vec![Rational::zero(), r(99, 100), Rational::one()]);
}

/// §7: "Corollary 7.2 implies that in every protocol that satisfies this
/// constraint, the probability that Alice's degree of belief … meets or
/// exceeds 0.9 is at least 0.9."
#[test]
fn example1_pak_corollary_at_0_9() {
    let sys = FiringSquad::paper().build_pps();
    let rep = check_pak_corollary(
        sys.pps(),
        ALICE,
        FIRE_A,
        &FsSystem::<Rational>::phi_both(),
        &r(1, 10),
    )
    .unwrap();
    // µ = 0.99 = 1 − 0.1², so the premise binds exactly.
    assert!(rep.premise_holds);
    assert!(rep.implication_holds);
    assert!(rep.strong_belief_measure.at_least(&r(9, 10)));
    // The actual measure of belief ≥ 0.9 is 0.991.
    assert_eq!(rep.strong_belief_measure, r(991, 1000));
}

/// §8: "The probability that both fire, given that Alice fires, goes up to
/// 0.99899" for the refrain-on-No refinement.
#[test]
fn section8_improved_protocol() {
    let analysis = FiringSquad::improved().build_pps().analyze();
    assert_eq!(analysis.constraint_probability(), r(990, 991));
    let approx = analysis.constraint_probability().to_f64();
    assert!(
        (approx - 0.99899).abs() < 1e-5,
        "paper rounds to 0.99899, got {approx}"
    );
}

// ---------------------------------------------------------------------
// Figure 1 (§4 and §6).
// ---------------------------------------------------------------------

/// §4: "βi(ψ) ≥ ½ whenever i performs α in T, while µT(ψ@α | α) = 0 < ½."
#[test]
fn figure1_sufficiency_counterexample() {
    let pps = figure1::figure1::<Rational>();
    let a = ActionAnalysis::new(&pps, figure1::AGENT_I, figure1::ALPHA, &figure1::psi()).unwrap();
    assert_eq!(a.min_belief_when_acting(), Some(r(1, 2)));
    assert_eq!(a.constraint_probability(), Rational::zero());
}

/// §6: "µT(ϕ@α | α) = 1 … EµT(βi(ϕ)@α | α) = ½".
#[test]
fn figure1_expectation_counterexample() {
    let pps = figure1::figure1::<Rational>();
    let rep = check_expectation(&pps, figure1::AGENT_I, figure1::ALPHA, &figure1::phi()).unwrap();
    assert_eq!(rep.lhs, Rational::one());
    assert_eq!(rep.rhs, r(1, 2));
    assert!(!rep.independence.independent);
}

// ---------------------------------------------------------------------
// Theorem 5.2 / Figure 2.
// ---------------------------------------------------------------------

/// §5, proof of Theorem 5.2: "(βi(ϕ)@α)[r] = (βi(ϕ)@α)[r′] = (p−ε)/(1−ε)",
/// "µTˆ(ϕ@α | α) = p", and "µTˆ(βi(ϕ)@α ≥ p | α) = µT(r′′) = ε".
#[test]
fn theorem52_witness_quantities() {
    for (p, e) in [
        (r(3, 4), r(1, 4)),
        (r(1, 2), r(1, 64)),
        (r(999, 1000), r(1, 1_000_000)),
    ] {
        let t = ThresholdConstruction::new(p.clone(), e.clone());
        let claims = t.verify();
        assert_eq!(claims.constraint_probability, p);
        assert_eq!(claims.threshold_met_measure, e);
        assert_eq!(
            claims.merged_belief,
            p.sub(&e).div(&e.one_minus()),
            "merged belief must be (p−ε)/(1−ε)"
        );
    }
}

// ---------------------------------------------------------------------
// Introductory arithmetic (§1).
// ---------------------------------------------------------------------

/// §1: message loss 0.1, delivery 0.9; two copies give 0.99.
#[test]
fn introduction_channel_arithmetic() {
    let loss = r(1, 10);
    assert_eq!(loss.one_minus(), r(9, 10));
    assert_eq!((&loss * &loss).one_minus(), r(99, 100));
}

/// §1: go is 0 with probability 0.5 — and no agent ever fires then.
#[test]
fn introduction_go_zero_never_fires() {
    let sys = FiringSquad::paper().build_pps();
    let pps = sys.pps();
    let both = FsSystem::<Rational>::phi_both();
    // µ(ϕ_both ever) = µ(go=1) · 0.99 = 0.495.
    let both_ever = FnFact::new("both fire at t=2", move |pps_: &_, pt: Point| {
        both.holds(
            pps_,
            Point {
                run: pt.run,
                time: 2,
            },
        )
    });
    let ev = pps.run_fact_event(&both_ever);
    assert_eq!(pps.measure(&ev), r(495, 1000));
}
