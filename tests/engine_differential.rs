//! Differential proof: the batched evaluator (`pak-engine`) is
//! bit-identical to the naive recursive checker (`pak-logic`).
//!
//! Mirrors the `unfold_differential.rs` methodology: sweep >100 seeded
//! `(model, formula set)` configurations and assert that every answer the
//! [`Evaluator`] produces — per-point truth (three-valued, dead points
//! included), events and measures at every time, validity, satisfiability,
//! counterexamples, satisfying-point sets, whole-batch verdicts — equals
//! what [`ModelChecker`] / [`Formula::holds_at`] compute by per-point
//! recursion. Formulas cover every constructor of the language nested to
//! depth 3 (seeded generation, `pak_logic::generator`), and the sweep runs
//! under both exact `Rational` and `f64` probabilities; measures are
//! compared with `==`, i.e. bit-equality, which holds because the batched
//! belief/measure paths accumulate in the same ascending-run order as the
//! naive ones.

use pak::core::ids::{Point, RunId};
use pak::core::prob::Probability;
use pak::core::state::SimpleState;
use pak::engine::Evaluator;
use pak::logic::generator::{random_formula, RandomFormulaConfig};
use pak::logic::{Formula, ModelChecker};
use pak::num::Rational;
use pak::protocol::generator::{random_model, RandomModelConfig};
use pak::protocol::unfold::unfold;

/// Formulas per configuration: a nesting-depth ladder (0..=3, ensuring
/// depth-3 shapes appear) plus free-running depth-3 seeds.
const FORMULAS_PER_CONFIG: usize = 10;

fn formulas_for<P: Probability>(seed: u64, n_agents: u32) -> Vec<Formula<SimpleState, P>> {
    (0..FORMULAS_PER_CONFIG as u64)
        .map(|k| {
            let cfg = RandomFormulaConfig {
                max_depth: (k % 4) as u32, // 0,1,2,3,0,1,2,3,…
                n_agents,
                n_actions: 2,
                env_values: 3,
                local_values: 2,
            };
            random_formula::<P>(seed.wrapping_mul(977).wrapping_add(k * 131 + 17), &cfg)
        })
        .collect()
}

fn check_system<P: Probability>(
    pps: &pak::core::pps::Pps<SimpleState, P>,
    formulas: &[Formula<SimpleState, P>],
) {
    let mc = ModelChecker::new(pps);
    let mut ev = Evaluator::new(pps);
    let live: Vec<Point> = pps.points().collect();
    // Dead probes: one past the end of each run, one far beyond the
    // horizon, and an out-of-range run id.
    let mut dead: Vec<Point> = pps
        .run_ids()
        .map(|run| Point {
            run,
            time: pps.run_len(run) as u32,
        })
        .collect();
    dead.push(Point {
        run: RunId(0),
        time: pps.horizon() + 40,
    });
    dead.push(Point {
        run: RunId(pps.num_runs() as u32 + 3),
        time: 0,
    });

    for f in formulas {
        // Per-point bit identity at every live point…
        for &pt in &live {
            let naive = f.eval_at(pps, pt);
            assert_eq!(naive, Some(f.holds_at(pps, pt)), "{f} at {pt:?}");
            assert_eq!(ev.eval_at(f, pt), naive, "{f} at {pt:?}");
        }
        // …and agreement on undefinedness at dead points.
        for &pt in &dead {
            assert_eq!(f.eval_at(pps, pt), None, "{f} at dead {pt:?}");
            assert!(!f.holds_at(pps, pt), "{f} at dead {pt:?}");
            assert_eq!(ev.eval_at(f, pt), None, "{f} at dead {pt:?}");
        }
        // Events and measures at every time, one past the horizon too.
        for t in 0..=pps.horizon() + 1 {
            assert_eq!(
                ev.event_at_time(f, t),
                mc.event_at_time(f, t),
                "{f} event at {t}"
            );
            assert_eq!(
                ev.measure_at_time(f, t),
                mc.measure_at_time(f, t),
                "{f} measure at {t}"
            );
        }
        // Whole-system answers.
        assert_eq!(ev.valid(f), mc.valid(f), "{f}");
        assert_eq!(ev.satisfiable(f), mc.satisfiable(f), "{f}");
        assert_eq!(ev.counterexample(f), mc.counterexample(f), "{f}");
        assert_eq!(ev.satisfying_points(f), mc.satisfying_points(f), "{f}");
    }

    // The batch API answers exactly like the one-at-a-time API, and a
    // fresh evaluator (no shared tables) answers exactly like the warm
    // one — sharing changes cost, never results.
    let verdicts = ev.evaluate_batch(formulas);
    for (f, v) in formulas.iter().zip(&verdicts) {
        assert_eq!(v.valid, mc.valid(f), "{f}");
        assert_eq!(v.satisfiable, mc.satisfiable(f), "{f}");
        assert_eq!(v.counterexample, mc.counterexample(f), "{f}");
        assert_eq!(v.satisfying_points, mc.satisfying_points(f).len(), "{f}");
        let mut cold = Evaluator::new(pps);
        assert_eq!(cold.evaluate(f), *v, "{f}");
    }
}

fn sweep<P: Probability>() -> usize {
    let mut cases = 0;
    for n_agents in 1..=2u32 {
        for horizon in 1..=3u32 {
            for max_env_branching in [1, 2] {
                for seed in 0..5u64 {
                    let cfg = RandomModelConfig {
                        n_agents,
                        initial_states: 1 + (seed as u32 % 3),
                        horizon,
                        envs: 3,
                        max_env_branching,
                        local_values: 2,
                        actions_per_agent: 2,
                    };
                    let model = random_model::<P>(seed * 101 + 7, &cfg);
                    let pps = unfold::<_, P>(&model).expect("random model unfolds");
                    let formulas = formulas_for::<P>(seed * 101 + 7, n_agents);
                    check_system(&pps, &formulas);
                    cases += 1;
                }
            }
        }
    }
    cases
}

// The acceptance bar is >100 seeded configurations across both
// probability types; each per-type sweep contributes exactly 60
// (2 agents × 3 horizons × 2 branchings × 5 seeds), so the two tests
// below together cover 120. The exact-count asserts keep the bar from
// eroding silently if the sweep's loops are ever narrowed.

#[test]
fn batched_evaluator_is_bit_identical_to_naive_rational() {
    let cases = sweep::<Rational>();
    assert_eq!(cases, 60, "sweep shrank: {cases} configurations");
}

#[test]
fn batched_evaluator_is_bit_identical_to_naive_f64() {
    let cases = sweep::<f64>();
    assert_eq!(cases, 60, "sweep shrank: {cases} configurations");
}

#[test]
fn depth_three_modal_nesting_is_exercised() {
    // Guard against the generator quietly losing its deep shapes: across
    // the sweep's formula seeds, depth-3 formulas with a modality above
    // another modality must occur.
    fn max_depth<P: Probability>(f: &Formula<SimpleState, P>) -> u32 {
        match f {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Does(..) => 0,
            Formula::Not(x)
            | Formula::Knows(_, x)
            | Formula::BelievesAtLeast(_, x, _)
            | Formula::Eventually(x)
            | Formula::Always(x) => 1 + max_depth(x),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                1 + max_depth(a).max(max_depth(b))
            }
        }
    }
    fn modal_depth<P: Probability>(f: &Formula<SimpleState, P>) -> u32 {
        match f {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Does(..) => 0,
            Formula::Not(x) | Formula::Eventually(x) | Formula::Always(x) => modal_depth(x),
            Formula::Knows(_, x) | Formula::BelievesAtLeast(_, x, _) => 1 + modal_depth(x),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                modal_depth(a).max(modal_depth(b))
            }
        }
    }
    let mut deepest = 0;
    let mut modal = 0;
    for seed in 0..40u64 {
        for f in formulas_for::<Rational>(seed * 101 + 7, 2) {
            deepest = deepest.max(max_depth(&f));
            modal = modal.max(modal_depth(&f));
        }
    }
    assert_eq!(deepest, 3, "depth-3 shapes must appear in the sweep");
    assert!(modal >= 2, "nested epistemic modalities must appear");
}
