//! Failure injection: the cross-validation machinery must *detect*
//! injected faults, not just pass on correct systems.
//!
//! Each test perturbs one component (the model's parameters, the sampler's
//! distribution, a theorem premise) and asserts the corresponding check
//! fails — guarding against a test harness that trivially accepts
//! everything.

use pak::core::prelude::*;
use pak::engine::Evaluator;
use pak::logic::Formula;
use pak::num::Rational;
use pak::protocol::messaging::LossyMessagingModel;
use pak::protocol::unfold::{unfold_with, UnfoldConfig};
use pak::sim::estimate::estimate_constraint;
use pak::systems::firing_squad::{FiringSquad, ALICE, BOB, FIRE_A, FIRE_B};
use pak::systems::threshold::ThresholdConstruction;

const Z99: f64 = 2.576;

#[test]
fn wrong_loss_rate_is_detected_by_the_interval() {
    // Simulate a *miscalibrated* FS (loss 0.2 instead of 0.1): the sampled
    // µ(ϕ_both | fire_A) must fall OUTSIDE the 99% interval around the
    // paper's 0.99.
    let wrong = FiringSquad::new(Rational::from_ratio(1, 5), Rational::from_ratio(1, 2), 2);
    let model = LossyMessagingModel::new(wrong, Rational::from_ratio(1, 5));
    let est = estimate_constraint::<_, Rational>(&model, 41, 60_000, ALICE, FIRE_A, |t, time| {
        t.does(ALICE, FIRE_A, time) && t.does(BOB, FIRE_B, time)
    });
    assert!(
        !est.proportion.contains(0.99, Z99),
        "a 2× loss miscalibration must be detected: {est}"
    );
    // The miscalibrated system's own exact value (1 − 0.04 = 0.96) is what
    // the estimate brackets instead.
    assert!(est.proportion.contains(0.96, Z99));
}

#[test]
fn wrong_fact_is_detected() {
    // Estimating the wrong condition ("Alice fires alone") must not match
    // the ϕ_both value.
    let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    let est = estimate_constraint::<_, Rational>(&model, 43, 60_000, ALICE, FIRE_A, |t, time| {
        t.does(ALICE, FIRE_A, time) && !t.does(BOB, FIRE_B, time)
    });
    assert!(!est.proportion.contains(0.99, Z99));
    assert!(est.proportion.contains(0.01, Z99));
}

#[test]
fn perturbed_distribution_fails_pps_validation() {
    // An edge distribution off by 1/1000 must be rejected at build time.
    let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
    let g0 = b.initial(SimpleState::zeroed(1), Rational::one()).unwrap();
    b.child(
        g0,
        SimpleState::zeroed(1),
        Rational::from_ratio(499, 1000),
        &[],
    )
    .unwrap();
    b.child(g0, SimpleState::zeroed(1), Rational::from_ratio(1, 2), &[])
        .unwrap();
    assert!(matches!(b.build(), Err(PpsError::BadDistribution { .. })));
}

#[test]
fn threshold_construction_claims_fail_off_manifold() {
    // Verify the Theorem 5.2 claims CAN fail: check a Tˆ(p, ε) instance's
    // claims against a *different* p — the comparison must come out false.
    let t = ThresholdConstruction::new(Rational::from_ratio(3, 4), Rational::from_ratio(1, 100));
    let claims = t.verify();
    assert!(claims.all_hold());
    assert_ne!(claims.constraint_probability, Rational::from_ratio(1, 2));
    assert_ne!(claims.threshold_met_measure, Rational::from_ratio(1, 10));
}

#[test]
fn tampered_beliefs_break_the_expectation_identity() {
    // Reconstruct E[β@α | α] by hand with deliberately corrupted beliefs;
    // the identity with µ(ϕ@α | α) must fail — i.e. Theorem 6.2's equality
    // is a real constraint, not an artifact of our bookkeeping.
    let sys = FiringSquad::paper().build_pps();
    let analysis = sys.analyze();
    let mu = analysis.constraint_probability();
    let mut corrupted = Rational::zero();
    for rb in analysis.runs() {
        // Corrupt: replace each belief by its square (strictly smaller for
        // beliefs in (0,1)).
        let fake = &rb.belief * &rb.belief;
        corrupted += rb.prob.clone() * fake;
    }
    corrupted = corrupted / analysis.action_measure().clone();
    assert_ne!(
        corrupted, mu,
        "squared beliefs must not satisfy the identity"
    );
    assert_eq!(analysis.expected_belief(), mu, "honest beliefs must");
}

#[test]
fn engine_verdicts_detect_a_miscalibrated_model() {
    // The engine layer must *see* a perturbed model: unfold the paper's FS
    // under the correct channel (loss 1/10) and a miscalibrated one (loss
    // 1/5), sweep belief thresholds k/100 through the batched evaluator,
    // and require at least one verdict to flip between the two trees.
    // µ(Bob eventually fires | Alice's information) sits at different
    // heights in the two systems, so thresholds between them separate.
    let correct = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    let perturbed = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 5));
    let tree_ok = unfold_with::<_, Rational>(&correct, &UnfoldConfig::default()).unwrap();
    let tree_bad = unfold_with::<_, Rational>(&perturbed, &UnfoldConfig::default()).unwrap();
    let formulas: Vec<_> = (1..100)
        .map(|k| {
            Formula::believes_at_least(
                ALICE,
                Formula::does(BOB, FIRE_B).eventually(),
                Rational::from_ratio(k, 100),
            )
        })
        .collect();
    let v_ok = Evaluator::new(&tree_ok).evaluate_batch(&formulas);
    let v_bad = Evaluator::new(&tree_bad).evaluate_batch(&formulas);
    let flips = v_ok.iter().zip(&v_bad).filter(|(a, b)| a != b).count();
    assert!(
        flips > 0,
        "a 2× loss miscalibration must flip at least one batched verdict"
    );
    // And identical inputs must not flip anything (the detector is not
    // trigger-happy).
    let v_again = Evaluator::new(&tree_ok).evaluate_batch(&formulas);
    assert_eq!(v_ok, v_again);
}

#[test]
fn seed_independence_of_conclusions() {
    // Different seeds must agree on conclusions (within CI), guarding
    // against seed-lucky tests.
    let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    for seed in [1u64, 99, 12345] {
        let est =
            estimate_constraint::<_, Rational>(&model, seed, 40_000, ALICE, FIRE_A, |t, time| {
                t.does(ALICE, FIRE_A, time) && t.does(BOB, FIRE_B, time)
            });
        assert!(est.proportion.contains(0.99, Z99), "seed {seed}: {est}");
    }
}
