//! Cross-crate checks of the epistemic-probabilistic logic against the
//! paper's systems and theorems.

use pak::core::prelude::*;
use pak::logic::{Formula, ModelChecker};
use pak::num::Rational;
use pak::protocol::generator::{random_pps, RandomModelConfig};
use pak::systems::firing_squad::{FiringSquad, FsLocal, Reply, ALICE, BOB, FIRE_A, FIRE_B};
use pak::systems::threshold::{ThresholdConstruction, AGENT_I, ALPHA};

type FsGlobal = pak::protocol::messaging::MsgGlobal<FsLocal>;
type FsFormula = Formula<FsGlobal, Rational>;

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

#[test]
fn s5_axioms_on_generated_systems() {
    // Knowledge satisfies the S5 properties on every concrete system:
    // T (truth), 4 (positive introspection), 5 (negative introspection).
    let cfg = RandomModelConfig::default();
    for seed in 0..8 {
        let pps = random_pps::<Rational>(seed, &cfg).unwrap();
        let mc = ModelChecker::new(&pps);
        let phi: Formula<SimpleState, Rational> =
            Formula::atom(StateFact::new("env=0", |g: &SimpleState| g.env == 0));
        for agent in pps.agents() {
            let k = Formula::knows(agent, phi.clone());
            let t_axiom = k.clone().implies(phi.clone());
            assert!(mc.valid(&t_axiom), "T failed (seed {seed})");
            let four = k.clone().implies(Formula::knows(agent, k.clone()));
            assert!(mc.valid(&four), "4 failed (seed {seed})");
            let five = k.clone().not().implies(Formula::knows(agent, k.not()));
            assert!(mc.valid(&five), "5 failed (seed {seed})");
        }
    }
}

#[test]
fn belief_is_knowledge_compatible_on_generated_systems() {
    // K_i ϕ → B_i^{≥1} ϕ and B_i^{≥1} ϕ → ¬K_i ¬ϕ.
    let cfg = RandomModelConfig::default();
    for seed in 0..8 {
        let pps = random_pps::<Rational>(seed, &cfg).unwrap();
        let mc = ModelChecker::new(&pps);
        let phi: Formula<SimpleState, Rational> =
            Formula::atom(StateFact::new("local0=0", |g: &SimpleState| {
                g.locals[0] == 0
            }));
        for agent in pps.agents() {
            let k_implies_b1 = Formula::knows(agent, phi.clone()).implies(
                Formula::believes_at_least(agent, phi.clone(), Rational::one()),
            );
            assert!(mc.valid(&k_implies_b1), "K→B1 failed (seed {seed})");
            let b1_consistent = Formula::believes_at_least(agent, phi.clone(), Rational::one())
                .implies(Formula::knows(agent, phi.clone().not()).not());
            assert!(
                mc.valid(&b1_consistent),
                "B1 consistency failed (seed {seed})"
            );
        }
    }
}

#[test]
fn fs_alice_knowledge_by_reply() {
    let sys = FiringSquad::paper().build_pps();
    let mc = ModelChecker::new(sys.pps());

    let got = |want: Reply| -> FsFormula {
        Formula::atom(StateFact::new(
            format!("A got {want:?}"),
            move |g: &FsGlobal| matches!(g.locals[0], FsLocal::Alice { reply, .. } if reply == want),
        ))
    };
    let bob_heard: FsFormula = Formula::atom(StateFact::new("B heard", |g: &FsGlobal| {
        matches!(g.locals[1], FsLocal::Bob { heard: Some(true) })
    }));

    // Yes reply ⇒ Alice knows Bob heard; No reply ⇒ she knows he did not.
    assert!(mc.valid(&got(Reply::Yes).implies(Formula::knows(ALICE, bob_heard.clone()))));
    assert!(mc.valid(&got(Reply::No).implies(Formula::knows(ALICE, bob_heard.clone().not()))));
    // A lost reply leaves her uncertain: she neither knows nor knows-not…
    let lost_uncertain = got(Reply::Nothing)
        .and(Formula::atom(StateFact::new("t=2", |_g: &FsGlobal| true)))
        .implies(
            Formula::knows(ALICE, bob_heard.clone())
                .or(Formula::knows(ALICE, bob_heard.clone().not())),
        );
    assert!(!mc.valid(&lost_uncertain));
    // …but believes "Bob heard" with degree ≥ 0.99 at time 2.
    let strong =
        got(Reply::Nothing).implies(Formula::believes_at_least(ALICE, bob_heard, r(99, 100)));
    // Note: at times 0 and 1 "Nothing" also holds (no reply yet) with lower
    // belief, so restrict to the firing point via does.
    let at_fire: FsFormula = Formula::does(ALICE, FIRE_A);
    let strong_at_fire = at_fire.and(got(Reply::Nothing)).implies(strong);
    assert!(mc.valid(&strong_at_fire));
}

#[test]
fn fs_pak_schema_measure() {
    // The PAK reading of Example 1 as a logic formula: among firing runs,
    // the measure where Alice believes ϕ_both at ≥ 0.9 is ≥ 0.9 (Cor 7.2
    // with ε = 0.1, since µ = 0.99 = 1 − 0.1²).
    let sys = FiringSquad::paper().build_pps();
    let pps = sys.pps();
    let mc = ModelChecker::new(pps);
    let phi_both: FsFormula = Formula::does(ALICE, FIRE_A).and(Formula::does(BOB, FIRE_B));
    let strong: FsFormula =
        Formula::does(ALICE, FIRE_A).and(Formula::believes_at_least(ALICE, phi_both, r(9, 10)));
    // Evaluate at the firing time (t = 2).
    let strong_event = mc.event_at_time(&strong, 2);
    let fire_event = pps.action_event(ALICE, FIRE_A);
    let conditional = pps.conditional(&strong_event, &fire_event).unwrap();
    assert_eq!(conditional, r(991, 1000));
    assert!(conditional.at_least(&r(9, 10)));
}

#[test]
fn threshold_construction_belief_formula() {
    // In Tˆ(p, ε), at the acting point: B^{≥p} holds exactly on the m′ run.
    let (p, eps) = (r(3, 4), r(1, 8));
    let t = ThresholdConstruction::new(p.clone(), eps.clone());
    let pps = t.build();
    let mc = ModelChecker::new(&pps);
    let phi: Formula<SimpleState, Rational> =
        Formula::atom(ThresholdConstruction::<Rational>::phi());
    let strong = Formula::does(AGENT_I, ALPHA).and(Formula::believes_at_least(AGENT_I, phi, p));
    let ev = mc.event_at_time(&strong, 1);
    assert_eq!(pps.measure(&ev), eps);
}

#[test]
fn formulas_compose_with_action_analysis() {
    // Use a compound epistemic formula as the CONDITION of a constraint:
    // "Bob knows Alice's go bit" when Alice fires.
    let sys = FiringSquad::paper().build_pps();
    let go: FsFormula = Formula::atom(StateFact::new("go", |g: &FsGlobal| {
        matches!(g.locals[0], FsLocal::Alice { go: true, .. })
    }));
    let bob_knows_go: FsFormula = Formula::knows(BOB, go.clone()).or(Formula::knows(BOB, go.not()));
    let analysis = ActionAnalysis::new(sys.pps(), ALICE, FIRE_A, &bob_knows_go).unwrap();
    // Alice fires ⇔ go = 1; Bob knows go = 1 iff he heard (0.99).
    assert_eq!(analysis.constraint_probability(), r(99, 100));
}
