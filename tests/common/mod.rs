//! Helpers shared by the differential test layer
//! (`unfold_differential.rs`, `systems_unfold_smoke.rs`).

use pak::core::prelude::*;
use pak::num::Rational;

/// Asserts two systems produced from the *same* model/tree are identical
/// in the strict, id-level sense the parallel-unfold and scratch-buffer
/// guarantees promise: same pool ids in the same order, same node order
/// (parents, state ids, times, action labels), same run arena with
/// bit-equal probabilities, and identical cells id for id.
///
/// This is deliberately stronger than observable equivalence — it is the
/// "same pool ids, same node order" contract of
/// `UnfoldOptions::parallel_subtrees` and `VecApiModel`.
pub fn assert_identical_systems<G: GlobalState>(
    a: &Pps<G, Rational>,
    b: &Pps<G, Rational>,
    ctx: &str,
) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "{ctx}: num_nodes");
    assert_eq!(
        a.num_distinct_states(),
        b.num_distinct_states(),
        "{ctx}: pool size"
    );
    for ((ia, sa), (ib, sb)) in a.state_pool().iter().zip(b.state_pool().iter()) {
        assert_eq!(ia, ib, "{ctx}: pool id order");
        assert_eq!(sa, sb, "{ctx}: pool state {ia}");
    }
    for n in (1..a.num_nodes() as u32).map(NodeId) {
        assert_eq!(a.parent(n), b.parent(n), "{ctx}: parent of {n}");
        assert_eq!(
            a.node_state_id(n),
            b.node_state_id(n),
            "{ctx}: state of {n}"
        );
        assert_eq!(a.node_time(n), b.node_time(n), "{ctx}: time of {n}");
    }
    assert_eq!(a.num_runs(), b.num_runs(), "{ctx}: num_runs");
    for run in a.run_ids() {
        assert_eq!(a.nodes_of(run), b.nodes_of(run), "{ctx}: path of {run}");
        assert_eq!(
            a.run_probability(run),
            b.run_probability(run),
            "{ctx}: probability of {run}"
        );
        for t in 0..a.run_len(run) as u32 {
            let pt = Point { run, time: t };
            assert_eq!(a.actions_at(pt), b.actions_at(pt), "{ctx}: actions at {pt}");
        }
    }
    assert_eq!(a.num_cells(), b.num_cells(), "{ctx}: num_cells");
    for ((ia, ca), (ib, cb)) in a.cells().zip(b.cells()) {
        assert_eq!(ia, ib, "{ctx}: cell id order");
        assert_eq!(ca, cb, "{ctx}: cell {ia}");
    }
}
