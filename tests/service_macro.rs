//! Macro tests for the serving layer: a ≥1000-query mixed workload
//! replayed against a byte-budgeted cache, overload rejection with a
//! guaranteed drain, degradation to the Monte-Carlo tier cross-checked
//! against exact measures, and adversary-variant cache identity.
//!
//! The degradation test installs a failpoint plan (process-global), so
//! every test in this binary serialises on one lock.

mod common;

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

use pak::core::failpoint::{self, FailPlan, Fault};
use pak::core::prelude::*;
use pak::dsl::{compile, parse};
use pak::engine::{CacheBudget, CachedUnfolder, Evaluator, PpsCache};
use pak::logic::Formula;
use pak::num::Rational;
use pak::protocol::generator::{random_model, RandomModelConfig};
use pak::protocol::model::{CoinModel, CoinState, ModelFingerprint, TableModel, COIN_ACT};
use pak::protocol::unfold::{unfold_with, UnfoldConfig};
use pak::server::{Answer, FallbackConfig, PakServer, Query, ServerConfig, ServiceError, Ticket};

static SERVICE_LOCK: Mutex<()> = Mutex::new(());

fn service_lock() -> std::sync::MutexGuard<'static, ()> {
    SERVICE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn even() -> Formula<SimpleState, Rational> {
    Formula::atom(StateFact::new("env even", |g: &SimpleState| {
        g.env.is_multiple_of(2)
    }))
}

/// The replay workload's model: terminates at depth 4, so horizons 1–4
/// are all natural tree prefixes.
fn replay_model() -> TableModel<Rational> {
    random_model::<Rational>(
        11,
        &RandomModelConfig {
            n_agents: 2,
            initial_states: 2,
            horizon: 4,
            envs: 3,
            max_env_branching: 2,
            local_values: 2,
            actions_per_agent: 2,
        },
    )
}

/// The mixed workload, period 60: horizons cycle 1–4, shapes cycle
/// measure / two-formula batch / one-formula batch, measure times sweep
/// every valid time of their horizon.
fn replay_query(i: usize) -> Query<SimpleState, Rational> {
    let horizon = (1 + i % 4) as Time;
    match i % 3 {
        0 => Query::Measure {
            horizon,
            time: (i % (horizon as usize + 1)) as Time,
            formula: even().eventually(),
        },
        1 => Query::Verdicts {
            horizon,
            formulas: vec![even().eventually(), Formula::knows(AgentId(0), even())],
        },
        _ => Query::Verdicts {
            horizon,
            formulas: vec![even().not().always()],
        },
    }
}

/// The same query answered directly — from-scratch unfold, no cache, no
/// service — as the replay's ground truth.
fn direct_answer(
    model: &TableModel<Rational>,
    q: &Query<SimpleState, Rational>,
) -> Answer<Rational> {
    let unfold_at = |h: Time| {
        unfold_with(
            model,
            &UnfoldConfig {
                horizon: Some(h),
                ..UnfoldConfig::default()
            },
        )
        .unwrap()
    };
    match q {
        Query::Verdicts { horizon, formulas } => {
            let tree = unfold_at(*horizon);
            Answer::Verdicts(Evaluator::new(&tree).evaluate_batch(formulas))
        }
        Query::Measure {
            horizon,
            time,
            formula,
        } => {
            let tree = unfold_at(*horizon);
            Answer::Exact(Evaluator::new(&tree).measure_at_time(formula, *time))
        }
    }
}

/// The tentpole macro-run: 1000 mixed queries against a cache whose
/// byte budget cannot hold all four horizons at once. Submission
/// backpressure is honoured (an `Overloaded` reply makes the client
/// drain one pending ticket and retry), every answer must equal the
/// direct fault-free computation, memory must stay within budget via
/// eviction, and the final summary must conserve requests.
#[test]
fn thousand_query_replay_is_exact_within_budget() {
    let _serial = service_lock();
    let model = Arc::new(replay_model());
    let fp = |h: Time| {
        unfold_with(
            &*model,
            &UnfoldConfig {
                horizon: Some(h),
                ..UnfoldConfig::default()
            },
        )
        .unwrap()
        .memory_footprint()
    };
    // Holds the deepest tree plus the shallowest — but never all four.
    let budget_bytes = fp(4) + fp(1);
    let expected: HashMap<usize, Answer<Rational>> = (0..60)
        .map(|k| (k, direct_answer(&model, &replay_query(k))))
        .collect();
    let server = PakServer::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            cache: CacheBudget {
                max_entries: None,
                max_bytes: Some(budget_bytes),
            },
            ..ServerConfig::default()
        },
    );
    let check = |i: usize, got: Result<Answer<Rational>, ServiceError>| {
        assert_eq!(
            got.as_ref().expect("replay queries cannot fail"),
            &expected[&(i % 60)],
            "query {i}: served answer must equal the direct computation"
        );
    };
    let mut pending: VecDeque<(usize, Ticket<Rational>)> = VecDeque::new();
    let mut resolved = 0usize;
    for i in 0..1000 {
        let q = replay_query(i);
        loop {
            match server.submit(q.clone()) {
                Ok(t) => {
                    pending.push_back((i, t));
                    break;
                }
                Err(ServiceError::Overloaded) => {
                    // Backpressure: drain the oldest in-flight request,
                    // then retry the rejected submission.
                    let (j, t) = pending
                        .pop_front()
                        .expect("full queue implies pending work");
                    check(j, t.wait());
                    resolved += 1;
                }
                Err(e) => panic!("query {i}: unexpected submission error {e}"),
            }
        }
    }
    for (j, t) in pending {
        check(j, t.wait());
        resolved += 1;
    }
    assert_eq!(resolved, 1000);
    let summary = server.shutdown();
    assert_eq!(summary.accepted, 1000, "{summary:?}");
    assert_eq!(summary.served, 1000, "{summary:?}");
    assert_eq!(summary.degraded, 0, "{summary:?}");
    assert!(
        summary.cache.evictions > 0,
        "the budget must have forced evictions: {summary:?}"
    );
    assert!(
        summary.cache.bytes <= budget_bytes,
        "cache must end within budget: {} > {budget_bytes}",
        summary.cache.bytes
    );
    assert!(summary.cache.misses > 0, "{summary:?}");
}

/// Admission control: a single worker behind a one-slot queue must
/// reject most of a fast 64-burst with `Overloaded` (each job costs at
/// least a horizon-4 unfold, submissions cost a `try_send`), nothing is
/// enqueued for a rejected submission, and every accepted request
/// resolves exactly — even when shutdown begins while jobs are still
/// buffered, the drain loses nothing. The exact interleaving of accepts
/// and rejects is scheduler-dependent, so the test asserts the
/// invariants, not a fixed schedule.
#[test]
fn overload_rejects_cleanly_and_drain_loses_nothing() {
    let _serial = service_lock();
    let model = Arc::new(replay_model());
    let server = PakServer::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    );
    let q = replay_query(3); // horizon 4, the slowest shape
    let expected = direct_answer(&model, &q);
    let mut pending: Vec<Ticket<Rational>> = Vec::new();
    let mut rejections = 0;
    for _ in 0..64 {
        match server.submit(q.clone()) {
            Ok(t) => pending.push(t),
            Err(ServiceError::Overloaded) => rejections += 1,
            Err(e) => panic!("unexpected submission error {e}"),
        }
    }
    // The first submission always lands (the queue starts empty), and
    // the worker cannot finish a job between two adjacent submits, so a
    // one-slot queue must turn most of the burst away.
    assert!(!pending.is_empty(), "an empty queue must accept");
    assert!(rejections > 0, "a one-slot queue must reject a 64-burst");
    // Shutdown drains whatever is still buffered: every accepted ticket
    // resolves exactly even though shutdown began first.
    let summary = server.shutdown();
    for t in pending {
        assert_eq!(t.wait().unwrap(), expected);
    }
    assert_eq!(summary.rejected, rejections, "{summary:?}");
    assert_eq!(
        summary.accepted, summary.served,
        "every accepted request was served: {summary:?}"
    );
    // And a shut-down server refuses new work entirely.
}

/// Graceful degradation, cross-checked: deadline-blown exact measure
/// queries (forced deterministically via the evaluator failpoint) fall
/// back to Monte-Carlo `Approximate` answers whose 99% confidence
/// intervals must contain the true probabilities — which the same
/// service computes exactly once the faults are gone.
#[test]
fn degraded_answers_bracket_the_exact_measures() {
    let _serial = service_lock();
    let model = Arc::new(CoinModel {
        heads_num: 3,
        heads_den: 4,
    });
    let heads =
        || Formula::<CoinState, f64>::atom(StateFact::new("heads", |g: &CoinState| g.heads));
    let cases: Vec<(Formula<CoinState, f64>, Time)> = vec![
        (heads(), 0),
        (heads().not(), 0),
        (heads().and(Formula::does(AgentId(0), COIN_ACT)), 0),
    ];
    let server = PakServer::<_, f64>::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 1,
            fallback: Some(FallbackConfig::default()),
            ..ServerConfig::default()
        },
    );
    let query = |(f, t): &(Formula<CoinState, f64>, Time)| Query::Measure {
        horizon: 1,
        time: *t,
        formula: f.clone(),
    };
    // Exact answers first, fault-free.
    let exact: Vec<f64> = cases
        .iter()
        .map(|c| match server.submit(query(c)).unwrap().wait().unwrap() {
            Answer::Exact(p) => p,
            other => panic!("fault-free measure must be exact, got {other:?}"),
        })
        .collect();
    assert!(exact.iter().all(|p| *p > 0.0 && *p < 1.0), "{exact:?}");
    // Now every evaluator step is cancelled: the exact path can never
    // finish, and each query must degrade instead of failing.
    let guard = failpoint::install(FailPlan::new().fail_every("eval.subformula", 1, Fault::Cancel));
    let degraded: Vec<Answer<f64>> = cases
        .iter()
        .map(|c| server.submit(query(c)).unwrap().wait().unwrap())
        .collect();
    drop(guard);
    for ((answer, exact), (f, _)) in degraded.iter().zip(&exact).zip(&cases) {
        match answer {
            Answer::Approximate {
                estimate,
                ci_low,
                ci_high,
                trials,
            } => {
                assert_eq!(*trials, FallbackConfig::default().trials);
                assert!(
                    ci_low <= exact && exact <= ci_high,
                    "{f:?}: exact {exact} outside degraded interval [{ci_low}, {ci_high}]"
                );
                assert!(
                    (estimate - exact).abs() < 0.05,
                    "{f:?}: estimate {estimate} far from exact {exact}"
                );
            }
            other => panic!("{f:?}: expected a degraded answer, got {other:?}"),
        }
    }
    let summary = server.shutdown();
    assert_eq!(summary.degraded, cases.len() as u64, "{summary:?}");
    assert_eq!(summary.served, 2 * cases.len() as u64, "{summary:?}");
}

/// After shutdown begins, new submissions are refused.
#[test]
fn shut_down_server_refuses_new_work() {
    let _serial = service_lock();
    let model = Arc::new(CoinModel {
        heads_num: 1,
        heads_den: 2,
    });
    let server = PakServer::<_, f64>::start(model, ServerConfig::default());
    let q = || Query::Verdicts {
        horizon: 1,
        formulas: vec![Formula::<CoinState, f64>::does(AgentId(0), COIN_ACT)],
    };
    let t = server.submit(q()).unwrap();
    assert!(t.wait().is_ok());
    let summary = server.shutdown();
    assert_eq!(summary.accepted, 1);
}

/// Satellite: the shutdown summary carries the cache's own counters —
/// hits, misses, evictions — so operators can see reuse directly.
#[test]
fn summary_reports_cache_reuse() {
    let _serial = service_lock();
    let model = Arc::new(replay_model());
    let server = PakServer::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let q = replay_query(1);
    for _ in 0..5 {
        assert!(server.submit(q.clone()).unwrap().wait().is_ok());
    }
    let live = server.cache_stats();
    assert!(live.misses >= 1 && live.hits >= 4, "{live:?}");
    let summary = server.shutdown();
    assert_eq!(summary.cache.entries, 1, "{summary:?}");
    assert!(summary.cache.hits >= 4, "{summary:?}");
    assert!(summary.cache.misses >= 1, "{summary:?}");
    assert_eq!(summary.cache.evictions, 0, "{summary:?}");
}

const RELAY_SRC: &str = "\
protocol relay {
    agents s;
    horizon 2;
    action send = 0;
    state up = (1, 0);
    state down = (0, 0);
    init { 1: up; }
    moves s { at (0, 0) -> send; at (0, 1) -> send; }
    transitions {
        from up at 0 -> { 9/10: up; 1/10: down; };
        from up at 1 -> { 9/10: up; 1/10: down; };
    }
    adversary mirror {
        # Identical overrides to the base rule: only the variant tag
        # distinguishes this model from the base protocol.
        from up at 0 -> { 9/10: up; 1/10: down; };
    }
    adversary hostile {
        from up at 0 -> down;
        from up at 1 -> down;
    }
}";

/// Satellite: adversary parameters are part of the cache key. Every
/// DSL adversary variant — including one whose overrides coincide with
/// the base rules, yielding a semantically identical model — gets its
/// own fingerprint and its own cache entry; base and variant trees
/// never alias.
#[test]
fn adversary_variants_never_alias_in_the_cache() {
    let _serial = service_lock();
    let compiled = compile::<Rational>(&parse(RELAY_SRC).unwrap()).unwrap();
    let base = compiled.model();
    let variants: Vec<(&str, &TableModel<Rational>)> = compiled.adversaries().collect();
    assert_eq!(variants.len(), 2);
    let models: Vec<&TableModel<Rational>> = std::iter::once(base)
        .chain(variants.iter().map(|(_, m)| *m))
        .collect();
    let fps: Vec<_> = models.iter().map(|m| m.fingerprint()).collect();
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            assert_ne!(
                fps[i], fps[j],
                "models {i} and {j} must fingerprint distinctly"
            );
        }
    }
    let cache = PpsCache::new();
    let trees: Vec<_> = models
        .iter()
        .map(|m| {
            CachedUnfolder::new(*m, UnfoldConfig::default())
                .unwrap()
                .pps_at(&cache, 2)
                .unwrap()
        })
        .collect();
    assert_eq!(cache.len(), models.len(), "one entry per variant");
    for i in 0..trees.len() {
        for j in (i + 1)..trees.len() {
            assert!(
                !Arc::ptr_eq(&trees[i], &trees[j]),
                "trees {i} and {j} must not alias"
            );
        }
    }
    // The mirror variant is semantically the base model — same tree,
    // different identity — while hostile genuinely differs.
    common::assert_identical_systems(&trees[0], &trees[1], "mirror ≡ base semantically");
    let up_at_2 = |tree: &Pps<SimpleState, Rational>| {
        Evaluator::new(tree).measure_at_time(
            &Formula::atom(StateFact::new("up", |g: &SimpleState| g.env == 1)),
            2,
        )
    };
    assert_ne!(
        up_at_2(&trees[0]),
        up_at_2(&trees[2]),
        "hostile must change the time-2 up-measure"
    );
}
