//! Scenario-level differential smoke suite for the model API.
//!
//! The seeded random-table sweep in `tests/unfold_differential.rs` proves
//! the unfolding pipeline exact on the `TableModel` family — but the
//! `pak-systems` scenarios exercise model shapes the generator never
//! produces: lossy-channel environments with move-dependent transitions
//! (`LossyMessagingModel`), a move-dependent custom model
//! (`Figure1Model`), zero-round static systems (`FlatModel`), and
//! deterministic threshold protocols. This suite closes that gap: **every**
//! `pak-systems` protocol (attack, broadcast, figure1, firing_squad, flat,
//! judge, mutex, policy, threshold) unfolds at a small horizon through
//! both model APIs —
//!
//! * the retained `Vec`-returning methods, forced via
//!   [`VecApiModel`] (default `_into` impls), and
//! * the native scratch-buffer `_into` methods on the unmodified model —
//!
//! and the two systems must be *identical*: same nodes in the same order,
//! bit-equal run probabilities, identical cells and action events. On top
//! of that, exact-sum checks (`µ(R_T) = 1` and every internal node's
//! outgoing distribution summing exactly to one) hold on each result,
//! parallel subtree unfolding reproduces the sequential system
//! node-for-node, **incremental horizon growth** (a retained `Unfolder`
//! extended 0→1→…→h) reproduces the from-scratch capped unfold
//! bit-identically at every intermediate horizon, and scenarios with a
//! hand-built [`PpsBuilder`] twin are proved observably equivalent to it
//! (same run multiset with exact probabilities, same action-event
//! measures, same analysis quantities).

mod common;

use common::assert_identical_systems;
use pak::core::prelude::*;
use pak::num::Rational;
use pak::protocol::model::{ProtocolModel, VecApiModel};
use pak::protocol::unfold::{
    unfold_with, unfold_with_options, UnfoldConfig, UnfoldOptions, Unfolder,
};
use pak::systems::attack::CoordinatedAttack;
use pak::systems::broadcast::Broadcast;
use pak::systems::figure1::{figure1, Figure1Model};
use pak::systems::firing_squad::{FirePolicy, FiringSquad};
use pak::systems::flat::{FlatModel, FlatSystem};
use pak::systems::judge::JudgeScenario;
use pak::systems::mutex::RelaxedMutex;
use pak::systems::threshold::ThresholdConstruction;

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

/// Exact-sum checks on one system: the run measure is exactly one, and
/// every internal node's outgoing edge probabilities sum exactly to one.
fn assert_exact_sums<G: GlobalState>(pps: &Pps<G, Rational>, ctx: &str) {
    assert!(
        pps.measure(&pps.all_runs()).is_one(),
        "{ctx}: total run measure ≠ 1"
    );
    for node in (0..pps.num_nodes() as u32).map(NodeId) {
        let mut sum = Rational::zero();
        let mut any = false;
        for (_, p) in pps.children(node) {
            sum.add_assign(p);
            any = true;
        }
        if any {
            assert!(sum.is_one(), "{ctx}: children of {node} sum to {sum}");
        }
    }
}

/// One run as an order-independent signature: the per-time `(state,
/// actions)` trace plus the exact probability, all Debug-rendered so runs
/// of differently-ordered trees compare by content.
fn run_signatures<G: GlobalState>(pps: &Pps<G, Rational>) -> Vec<(Vec<String>, Rational)> {
    let mut sigs: Vec<(Vec<String>, Rational)> = pps
        .run_ids()
        .map(|run| {
            let trace = (0..pps.run_len(run) as u32)
                .map(|t| {
                    let pt = Point { run, time: t };
                    format!(
                        "{:?} / {:?}",
                        pps.state_at(pt).expect("point exists"),
                        pps.actions_at(pt)
                    )
                })
                .collect();
            (trace, pps.run_probability(run).clone())
        })
        .collect();
    sigs.sort_by(|x, y| x.0.cmp(&y.0));
    sigs
}

/// Every `(agent, action)` pair labelling any edge of the system.
fn labelled_actions<G: GlobalState>(pps: &Pps<G, Rational>) -> Vec<(AgentId, ActionId)> {
    let mut out = Vec::new();
    for run in pps.run_ids() {
        for t in 0..pps.run_len(run) as u32 {
            for &pair in pps.actions_at(Point { run, time: t }) {
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
    }
    out.sort();
    out
}

/// Asserts a model-unfolded system is observably equivalent to a
/// hand-built twin whose node order may differ: identical run multiset
/// (states, action labels, exact probabilities) and identical measure for
/// every action event.
fn assert_equivalent<G: GlobalState>(got: &Pps<G, Rational>, want: &Pps<G, Rational>, ctx: &str) {
    assert_eq!(got.num_runs(), want.num_runs(), "{ctx}: num_runs");
    assert_eq!(
        run_signatures(got),
        run_signatures(want),
        "{ctx}: run multiset"
    );
    let actions = labelled_actions(want);
    assert_eq!(labelled_actions(got), actions, "{ctx}: labelled actions");
    for (agent, action) in actions {
        assert_eq!(
            got.measure(&got.action_event(agent, action)),
            want.measure(&want.action_event(agent, action)),
            "{ctx}: measure of {agent}/{action}"
        );
    }
}

/// The full battery for one protocol model: native `_into` unfold vs the
/// `Vec`-API default path, exact sums on both, parallel-vs-sequential
/// subtree unfolding, and incremental horizon growth vs from-scratch
/// capped unfolds at every intermediate horizon. Returns the native
/// unfold for scenario-specific checks.
fn check_model<M>(model: M, ctx: &str) -> Pps<M::Global, Rational>
where
    M: ProtocolModel<Rational> + Clone + Sync,
{
    let native = unfold_with(&model, &UnfoldConfig::default()).unwrap();
    let vec_api = unfold_with(&VecApiModel(model.clone()), &UnfoldConfig::default()).unwrap();
    assert_identical_systems(&native, &vec_api, &format!("{ctx} [vec-api]"));
    assert_exact_sums(&native, ctx);
    assert_exact_sums(&vec_api, &format!("{ctx} [vec-api]"));
    let parallel = unfold_with_options(
        &model,
        &UnfoldConfig::default(),
        &UnfoldOptions {
            parallel_subtrees: Some(true),
            ..UnfoldOptions::default()
        },
    )
    .unwrap();
    assert_identical_systems(&native, &parallel, &format!("{ctx} [parallel]"));
    // Incremental horizon growth: grow from the bare prior one level at a
    // time; at every step the grown system must be bit-identical — pool
    // ids, node order, runs, cells — to a from-scratch unfold capped at
    // the same horizon (depth-0 models extend zero times and must already
    // match at h = 0).
    let mut grown = Unfolder::<_, Rational>::new(
        &model,
        UnfoldConfig {
            horizon: Some(0),
            ..UnfoldConfig::default()
        },
    )
    .unwrap();
    let mut h = 0u32;
    loop {
        let scratch = unfold_with(
            &model,
            &UnfoldConfig {
                horizon: Some(h),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        assert_identical_systems(&scratch, grown.pps(), &format!("{ctx} [grown h={h}]"));
        if !grown.extend_horizon().unwrap() {
            break;
        }
        h += 1;
    }
    assert_identical_systems(&native, grown.pps(), &format!("{ctx} [grown full]"));
    native
}

#[test]
fn attack_unfolds_through_both_apis() {
    let ca = CoordinatedAttack::new(r(1, 10), r(1, 2), 2);
    let pps = check_model(ca.model(), "attack");
    let want = ca.build_pps().unwrap();
    assert_equivalent(&pps, want.pps(), "attack vs build_pps");
}

#[test]
fn broadcast_unfolds_through_both_apis() {
    let bc = Broadcast::new(3, r(1, 10), 1);
    let pps = check_model(bc.model(), "broadcast");
    let want = bc.build_pps().unwrap();
    assert_equivalent(&pps, want.pps(), "broadcast vs build_pps");
}

#[test]
fn figure1_model_reproduces_hand_built_tree() {
    let pps = check_model(Figure1Model, "figure1");
    assert_equivalent(&pps, &figure1::<Rational>(), "figure1 vs hand-built");
    // The §4/§6 counterexample numbers survive the protocol route.
    use pak::systems::figure1::{psi, AGENT_I, ALPHA};
    let a = ActionAnalysis::new(&pps, AGENT_I, ALPHA, &psi()).unwrap();
    assert_eq!(a.min_belief_when_acting(), Some(r(1, 2)));
    assert!(a.constraint_probability().is_zero());
}

#[test]
fn firing_squad_unfolds_through_both_apis() {
    let fs = FiringSquad::paper();
    let pps = check_model(fs.model(), "firing_squad");
    let want = fs.build_pps();
    assert_equivalent(&pps, want.pps(), "firing_squad vs build_pps");
}

#[test]
fn flat_model_reproduces_hand_built_system() {
    let worlds = vec![
        (r(1, 2), vec![7, 0]),
        (r(1, 4), vec![7, 1]),
        (r(1, 4), vec![9, 1]),
    ];
    let pps = check_model(FlatModel::new(worlds.clone()), "flat");
    let want = FlatSystem::new(worlds);
    assert_equivalent(&pps, want.pps(), "flat vs hand-built");
    assert_eq!(pps.horizon(), 0, "flat systems are depth-0");
}

#[test]
fn judge_model_reproduces_hand_built_tree() {
    let j = JudgeScenario::new(r(1, 2), r(9, 10), 3, 2);
    let pps = check_model(j.clone(), "judge");
    assert_equivalent(&pps, &j.build_pps(), "judge vs build_pps");
    // The conviction analysis agrees exactly between the two routes.
    use pak::systems::judge::{CONVICT, JUDGE};
    let via_model =
        ActionAnalysis::new(&pps, JUDGE, CONVICT, &JudgeScenario::<Rational>::guilty()).unwrap();
    let via_tree = j.analyze().unwrap();
    assert_eq!(
        via_model.constraint_probability(),
        via_tree.constraint_probability()
    );
    assert_eq!(via_model.expected_belief(), via_tree.expected_belief());
}

#[test]
fn mutex_model_reproduces_hand_built_tree() {
    let m = RelaxedMutex::new(r(1, 5), r(1, 20), 2);
    let pps = check_model(m.clone(), "mutex");
    assert_equivalent(&pps, &m.build_pps(), "mutex vs build_pps");
    use pak::systems::mutex::enter_action;
    let a = ActionAnalysis::new(
        &pps,
        AgentId(0),
        enter_action(AgentId(0)),
        &RelaxedMutex::<Rational>::cs_empty(),
    )
    .unwrap();
    assert_eq!(a.constraint_probability(), m.posterior_empty_given_free());
}

#[test]
fn policy_variants_unfold_through_both_apis() {
    // The §8 policy sweep's protocols: FS with a non-default firing
    // policy is its own protocol, with its own model.
    for policy in [
        FirePolicy::REFRAIN_ON_NO,
        FirePolicy {
            on_yes: true,
            on_no: false,
            on_nothing: false,
        },
    ] {
        let fs = FiringSquad::paper().with_policy(policy);
        let pps = check_model(fs.model(), &format!("policy {policy:?}"));
        let want = fs.build_pps();
        assert_equivalent(&pps, want.pps(), &format!("policy {policy:?} vs build_pps"));
    }
}

#[test]
fn threshold_model_is_equivalent_to_hand_built_tree() {
    let t = ThresholdConstruction::new(r(3, 4), r(1, 4));
    let pps = check_model(t.clone(), "threshold");
    // The unfolder's frontier emits nodes in a different order than the
    // hand-built tree, so equivalence here is the observable kind.
    assert_equivalent(&pps, &t.build(), "threshold vs hand-built");
    // Theorem 5.2's quantities, via the protocol route.
    use pak::systems::threshold::{AGENT_I, ALPHA};
    let a = ActionAnalysis::new(
        &pps,
        AGENT_I,
        ALPHA,
        &ThresholdConstruction::<Rational>::phi(),
    )
    .unwrap();
    assert_eq!(a.constraint_probability(), r(3, 4));
    assert_eq!(a.threshold_measure(&r(3, 4)), r(1, 4));
}
