//! Property tests for the extension modules: belief dynamics, common
//! belief, policy prediction, and the broadcast family.
//!
//! The case grids are deterministic (fixed seed strides, no external
//! property-testing dependency), so every failure replays exactly.

use pak::core::prelude::*;
use pak::core::trace::{belief_envelope, BeliefTrace};
use pak::logic::common::{believes_set, common_belief, fact_points};
use pak::num::Rational;
use pak::protocol::generator::{random_pps, RandomModelConfig};
use pak::systems::broadcast::Broadcast;
use pak::systems::firing_squad::FiringSquad;
use pak::systems::policy::sweep_policies;

fn cfg(seed: u64) -> RandomModelConfig {
    RandomModelConfig {
        n_agents: 1 + (seed % 2) as u32,
        initial_states: 1 + (seed % 2) as u32,
        horizon: 2 + (seed % 2) as u32,
        envs: 2 + (seed % 2),
        max_env_branching: 2,
        local_values: 2,
        actions_per_agent: 2,
    }
}

/// Deterministic case grid: `n` seeds striding `0..range`.
fn seeds(n: u64, range: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| (i.wrapping_mul(13) + 7) % range)
}

/// A run fact: "the run's final environment value is even". Constant along
/// each run, so beliefs about it form a martingale.
fn final_env_even(pps: &Pps<SimpleState, Rational>) -> FnFact<SimpleState, Rational> {
    let _ = pps;
    FnFact::new(
        "final env even",
        |pps: &Pps<SimpleState, Rational>, pt: Point| {
            let last = pps.run_len(pt.run) as u32 - 1;
            pps.state_at(Point {
                run: pt.run,
                time: last,
            })
            .is_some_and(|g| g.env % 2 == 0)
        },
    )
}

/// The tower rule (§6.1's Jeffrey conditionalisation, dynamically): for
/// a fact about runs, the expected belief trajectory is constant — a
/// martingale — and equals the fact's prior probability.
#[test]
fn belief_martingale_on_run_facts() {
    for seed in seeds(24, 200) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = final_env_even(&pps);
        if !pps.is_run_fact(&fact) {
            continue;
        }
        let prior = pps.measure(&pps.run_fact_event(&fact));
        for agent in pps.agents() {
            let env = belief_envelope(&pps, agent, &fact);
            for (t, e) in env.expected.iter().enumerate() {
                assert_eq!(
                    e.clone(),
                    prior.clone(),
                    "seed {seed}: E[β at t={t}] must equal the prior"
                );
            }
        }
    }
}

/// Belief traces are bounded by the envelope, and resolve to 0/1 iff
/// the agent's final cell decides the fact.
#[test]
fn traces_lie_within_envelope() {
    for seed in seeds(24, 200) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = final_env_even(&pps);
        for agent in pps.agents() {
            let env = belief_envelope(&pps, agent, &fact);
            for run in pps.run_ids() {
                let trace = BeliefTrace::compute(&pps, agent, &fact, run);
                for (t, v) in trace.values.iter().enumerate() {
                    assert!(v.at_least(&env.min[t]));
                    assert!(env.max[t].at_least(v));
                }
            }
        }
    }
}

/// Common belief is monotone: C^p ⊆ C^q for p ≥ q, and C^p ⊆ E^p(ϕ).
#[test]
fn common_belief_laws() {
    for seed in seeds(12, 100) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
        let agents: Vec<AgentId> = pps.agents().collect();
        for (pn, qn) in [(9i64, 1i64), (5, 5), (7, 3), (2, 1)] {
            let (hi, lo) = if pn >= qn { (pn, qn) } else { (qn, pn) };
            let p = Rational::from_ratio(hi, 10);
            let q = Rational::from_ratio(lo, 10);
            let cp = common_belief(&pps, &agents, &p, &fact);
            let cq = common_belief(&pps, &agents, &q, &fact);
            assert!(cp.is_subset(&cq), "seed {seed}: C^p ⊄ C^q for p ≥ q");
            // C^p(ϕ) ⊆ B_i^p(ϕ-points ∩ C^p) for every agent (fixpoint property).
            let phi = fact_points(&pps, &fact);
            let restricted: pak::logic::PointSet = phi.intersection(&cp).copied().collect();
            for &agent in &agents {
                let b = believes_set(&pps, agent, &p, &restricted);
                assert!(cp.is_subset(&b), "seed {seed}: fixpoint property violated");
            }
        }
    }
}

/// Policy predictions equal measurements across random FS parameters.
#[test]
fn policy_predictions_always_match() {
    for ln in 1i64..5 {
        for gn in 1i64..5 {
            for copies in 1u32..3 {
                let fs = FiringSquad::new(
                    Rational::from_ratio(ln, 10),
                    Rational::from_ratio(gn, 5),
                    copies,
                );
                for o in sweep_policies(&fs) {
                    assert!(
                        o.prediction_matches(),
                        "policy {:?}: predicted {} ≠ measured {}",
                        o.policy,
                        o.predicted_success,
                        o.success_probability
                    );
                    assert!(o.success_probability.is_valid_probability());
                    assert!(o.fire_probability.is_valid_probability());
                }
            }
        }
    }
}

/// Broadcast closed form across the parameter grid.
#[test]
fn broadcast_matches_closed_form() {
    for n in 2u32..5 {
        for ln in 1i64..5 {
            for rounds in 1u32..3 {
                let b = Broadcast::new(n, Rational::from_ratio(ln, 10), rounds);
                let analysis = b.build_pps().unwrap().analyze();
                assert_eq!(
                    analysis.constraint_probability(),
                    b.closed_form_all_deliver()
                );
                // Theorem 6.2 on the family.
                assert_eq!(
                    analysis.expected_belief(),
                    analysis.constraint_probability()
                );
            }
        }
    }
}

#[test]
fn envelope_min_max_bracket_expected() {
    let pps = random_pps::<Rational>(5, &cfg(5)).unwrap();
    let fact = final_env_even(&pps);
    for agent in pps.agents() {
        let env = belief_envelope(&pps, agent, &fact);
        for t in 0..env.expected.len() {
            assert!(env.expected[t].at_least(&env.min[t]));
            assert!(env.max[t].at_least(&env.expected[t]));
        }
    }
}
