//! Property tests for the extension modules: belief dynamics, common
//! belief, policy prediction, and the broadcast family.

use proptest::prelude::*;

use pak::core::prelude::*;
use pak::core::trace::{belief_envelope, BeliefTrace};
use pak::logic::common::{believes_set, common_belief, fact_points};
use pak::num::Rational;
use pak::protocol::generator::{random_pps, RandomModelConfig};
use pak::systems::broadcast::Broadcast;
use pak::systems::firing_squad::FiringSquad;
use pak::systems::policy::sweep_policies;

fn cfg(seed: u64) -> RandomModelConfig {
    RandomModelConfig {
        n_agents: 1 + (seed % 2) as u32,
        initial_states: 1 + (seed % 2) as u32,
        horizon: 2 + (seed % 2) as u32,
        envs: 2 + (seed % 2),
        max_env_branching: 2,
        local_values: 2,
        actions_per_agent: 2,
    }
}

/// A run fact: "the run's final environment value is even". Constant along
/// each run, so beliefs about it form a martingale.
fn final_env_even(pps: &Pps<SimpleState, Rational>) -> FnFact<SimpleState, Rational> {
    let _ = pps;
    FnFact::new("final env even", |pps: &Pps<SimpleState, Rational>, pt: Point| {
        let last = pps.run_len(pt.run) as u32 - 1;
        pps.state_at(Point { run: pt.run, time: last })
            .is_some_and(|g| g.env % 2 == 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tower rule (§6.1's Jeffrey conditionalisation, dynamically): for
    /// a fact about runs, the expected belief trajectory is constant — a
    /// martingale — and equals the fact's prior probability.
    #[test]
    fn belief_martingale_on_run_facts(seed in 0u64..200) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = final_env_even(&pps);
        prop_assume!(pps.is_run_fact(&fact));
        let prior = pps.measure(&pps.run_fact_event(&fact));
        for agent in pps.agents() {
            let env = belief_envelope(&pps, agent, &fact);
            for (t, e) in env.expected.iter().enumerate() {
                prop_assert_eq!(
                    e.clone(), prior.clone(),
                    "seed {}: E[β at t={}] must equal the prior", seed, t
                );
            }
        }
    }

    /// Belief traces are bounded by the envelope, and resolve to 0/1 iff
    /// the agent's final cell decides the fact.
    #[test]
    fn traces_lie_within_envelope(seed in 0u64..200) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = final_env_even(&pps);
        for agent in pps.agents() {
            let env = belief_envelope(&pps, agent, &fact);
            for run in pps.run_ids() {
                let trace = BeliefTrace::compute(&pps, agent, &fact, run);
                for (t, v) in trace.values.iter().enumerate() {
                    prop_assert!(v.at_least(&env.min[t]));
                    prop_assert!(env.max[t].at_least(v));
                }
            }
        }
    }

    /// Common belief is monotone: C^p ⊆ C^q for p ≥ q, and C^p ⊆ E^p(ϕ).
    #[test]
    fn common_belief_laws(seed in 0u64..100, pn in 1i64..10, qn in 1i64..10) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
        let agents: Vec<AgentId> = pps.agents().collect();
        let (hi, lo) = if pn >= qn { (pn, qn) } else { (qn, pn) };
        let p = Rational::from_ratio(hi, 10);
        let q = Rational::from_ratio(lo, 10);
        let cp = common_belief(&pps, &agents, &p, &fact);
        let cq = common_belief(&pps, &agents, &q, &fact);
        prop_assert!(cp.is_subset(&cq), "seed {seed}: C^p ⊄ C^q for p ≥ q");
        // C^p(ϕ) ⊆ B_i^p(ϕ-points ∩ C^p) for every agent (fixpoint property).
        let phi = fact_points(&pps, &fact);
        let restricted: pak::logic::PointSet = phi.intersection(&cp).copied().collect();
        for &agent in &agents {
            let b = believes_set(&pps, agent, &p, &restricted);
            prop_assert!(cp.is_subset(&b), "seed {seed}: fixpoint property violated");
        }
    }

    /// Policy predictions equal measurements across random FS parameters.
    #[test]
    fn policy_predictions_always_match(
        ln in 1i64..5, gn in 1i64..5, copies in 1u32..3,
    ) {
        let fs = FiringSquad::new(
            Rational::from_ratio(ln, 10),
            Rational::from_ratio(gn, 5),
            copies,
        );
        for o in sweep_policies(&fs) {
            prop_assert!(
                o.prediction_matches(),
                "policy {:?}: predicted {} ≠ measured {}",
                o.policy, o.predicted_success, o.success_probability
            );
            prop_assert!(o.success_probability.is_valid_probability());
            prop_assert!(o.fire_probability.is_valid_probability());
        }
    }

    /// Broadcast closed form across the parameter grid.
    #[test]
    fn broadcast_matches_closed_form(n in 2u32..5, ln in 1i64..5, rounds in 1u32..3) {
        let b = Broadcast::new(n, Rational::from_ratio(ln, 10), rounds);
        let analysis = b.build_pps().unwrap().analyze();
        prop_assert_eq!(analysis.constraint_probability(), b.closed_form_all_deliver());
        // Theorem 6.2 on the family.
        prop_assert_eq!(analysis.expected_belief(), analysis.constraint_probability());
    }
}

#[test]
fn envelope_min_max_bracket_expected() {
    let pps = random_pps::<Rational>(5, &cfg(5)).unwrap();
    let fact = final_env_even(&pps);
    for agent in pps.agents() {
        let env = belief_envelope(&pps, agent, &fact);
        for t in 0..env.expected.len() {
            assert!(env.expected[t].at_least(&env.min[t]));
            assert!(env.max[t].at_least(&env.expected[t]));
        }
    }
}
