//! Property tests for the extension modules: belief dynamics, common
//! belief, policy prediction, and the broadcast family — plus the
//! interleaving behaviour of incremental horizon extension (growing a
//! retained [`Unfolder`] between queries, double extension, clean failure
//! past the node budget, and growing hand-built trees through
//! [`PpsExtender`] directly).
//!
//! The case grids are deterministic (fixed seed strides, no external
//! property-testing dependency), so every failure replays exactly.

mod common;

use pak::core::prelude::*;
use pak::core::trace::{belief_envelope, BeliefTrace};
use pak::logic::common::{believes_set, common_belief, fact_points};
use pak::num::Rational;
use pak::protocol::generator::{random_model, random_pps, RandomModelConfig};
use pak::protocol::unfold::{unfold_with, UnfoldConfig, UnfoldError, Unfolder};
use pak::systems::broadcast::Broadcast;
use pak::systems::firing_squad::FiringSquad;
use pak::systems::policy::sweep_policies;

fn cfg(seed: u64) -> RandomModelConfig {
    RandomModelConfig {
        n_agents: 1 + (seed % 2) as u32,
        initial_states: 1 + (seed % 2) as u32,
        horizon: 2 + (seed % 2) as u32,
        envs: 2 + (seed % 2),
        max_env_branching: 2,
        local_values: 2,
        actions_per_agent: 2,
    }
}

/// Deterministic case grid: `n` seeds striding `0..range`.
fn seeds(n: u64, range: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| (i.wrapping_mul(13) + 7) % range)
}

/// A run fact: "the run's final environment value is even". Constant along
/// each run, so beliefs about it form a martingale.
fn final_env_even(pps: &Pps<SimpleState, Rational>) -> FnFact<SimpleState, Rational> {
    let _ = pps;
    FnFact::new(
        "final env even",
        |pps: &Pps<SimpleState, Rational>, pt: Point| {
            let last = pps.run_len(pt.run) as u32 - 1;
            pps.state_at(Point {
                run: pt.run,
                time: last,
            })
            .is_some_and(|g| g.env % 2 == 0)
        },
    )
}

/// The tower rule (§6.1's Jeffrey conditionalisation, dynamically): for
/// a fact about runs, the expected belief trajectory is constant — a
/// martingale — and equals the fact's prior probability.
#[test]
fn belief_martingale_on_run_facts() {
    for seed in seeds(24, 200) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = final_env_even(&pps);
        if !pps.is_run_fact(&fact) {
            continue;
        }
        let prior = pps.measure(&pps.run_fact_event(&fact));
        for agent in pps.agents() {
            let env = belief_envelope(&pps, agent, &fact);
            for (t, e) in env.expected.iter().enumerate() {
                assert_eq!(
                    e.clone(),
                    prior.clone(),
                    "seed {seed}: E[β at t={t}] must equal the prior"
                );
            }
        }
    }
}

/// Belief traces are bounded by the envelope, and resolve to 0/1 iff
/// the agent's final cell decides the fact.
#[test]
fn traces_lie_within_envelope() {
    for seed in seeds(24, 200) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = final_env_even(&pps);
        for agent in pps.agents() {
            let env = belief_envelope(&pps, agent, &fact);
            for run in pps.run_ids() {
                let trace = BeliefTrace::compute(&pps, agent, &fact, run);
                for (t, v) in trace.values.iter().enumerate() {
                    assert!(v.at_least(&env.min[t]));
                    assert!(env.max[t].at_least(v));
                }
            }
        }
    }
}

/// Common belief is monotone: C^p ⊆ C^q for p ≥ q, and C^p ⊆ E^p(ϕ).
#[test]
fn common_belief_laws() {
    for seed in seeds(12, 100) {
        let pps = random_pps::<Rational>(seed, &cfg(seed)).unwrap();
        let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
        let agents: Vec<AgentId> = pps.agents().collect();
        for (pn, qn) in [(9i64, 1i64), (5, 5), (7, 3), (2, 1)] {
            let (hi, lo) = if pn >= qn { (pn, qn) } else { (qn, pn) };
            let p = Rational::from_ratio(hi, 10);
            let q = Rational::from_ratio(lo, 10);
            let cp = common_belief(&pps, &agents, &p, &fact);
            let cq = common_belief(&pps, &agents, &q, &fact);
            assert!(cp.is_subset(&cq), "seed {seed}: C^p ⊄ C^q for p ≥ q");
            // C^p(ϕ) ⊆ B_i^p(ϕ-points ∩ C^p) for every agent (fixpoint property).
            let phi = fact_points(&pps, &fact);
            let restricted: pak::logic::PointSet = phi.intersection(&cp).copied().collect();
            for &agent in &agents {
                let b = believes_set(&pps, agent, &p, &restricted);
                assert!(cp.is_subset(&b), "seed {seed}: fixpoint property violated");
            }
        }
    }
}

/// Policy predictions equal measurements across random FS parameters.
#[test]
fn policy_predictions_always_match() {
    for ln in 1i64..5 {
        for gn in 1i64..5 {
            for copies in 1u32..3 {
                let fs = FiringSquad::new(
                    Rational::from_ratio(ln, 10),
                    Rational::from_ratio(gn, 5),
                    copies,
                );
                for o in sweep_policies(&fs) {
                    assert!(
                        o.prediction_matches(),
                        "policy {:?}: predicted {} ≠ measured {}",
                        o.policy,
                        o.predicted_success,
                        o.success_probability
                    );
                    assert!(o.success_probability.is_valid_probability());
                    assert!(o.fire_probability.is_valid_probability());
                }
            }
        }
    }
}

/// Broadcast closed form across the parameter grid.
#[test]
fn broadcast_matches_closed_form() {
    for n in 2u32..5 {
        for ln in 1i64..5 {
            for rounds in 1u32..3 {
                let b = Broadcast::new(n, Rational::from_ratio(ln, 10), rounds);
                let analysis = b.build_pps().unwrap().analyze();
                assert_eq!(
                    analysis.constraint_probability(),
                    b.closed_form_all_deliver()
                );
                // Theorem 6.2 on the family.
                assert_eq!(
                    analysis.expected_belief(),
                    analysis.constraint_probability()
                );
            }
        }
    }
}

/// Interleaving queries with growth: a retained [`Unfolder`] answers
/// queries at every horizon, keeps growing after them, and after two
/// further extensions still equals the from-scratch unfold capped at the
/// horizon it reports.
#[test]
fn extension_interleaves_with_queries() {
    for seed in seeds(8, 50) {
        let model = random_model::<Rational>(seed, &cfg(seed));
        let mut u = Unfolder::new(
            &model,
            UnfoldConfig {
                horizon: Some(1),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        // Query at horizon 1 (the truncated tree is a complete, valid
        // system)…
        assert!(u.pps().measure(&u.pps().all_runs()).is_one(), "seed {seed}");
        // …extend, query again, extend again…
        if u.extend_horizon().unwrap() {
            assert!(u.pps().measure(&u.pps().all_runs()).is_one(), "seed {seed}");
        }
        u.extend_horizon().unwrap();
        // …and the grown tree is bit-identical to a from-scratch unfold
        // at whatever horizon the handle now stands at.
        let scratch = unfold_with(
            &model,
            &UnfoldConfig {
                horizon: Some(u.horizon()),
                ..UnfoldConfig::default()
            },
        )
        .unwrap();
        common::assert_identical_systems(&scratch, u.pps(), &format!("seed {seed}"));
    }
}

/// Growing past `max_nodes` fails with the same error a from-scratch
/// unfold reports, and rolls back completely: the handle stays at its
/// previous horizon, still queryable, still bit-identical to the capped
/// from-scratch unfold.
#[test]
fn extension_past_node_cap_rolls_back_cleanly() {
    let model = random_model::<Rational>(3, &cfg(3));
    // Budget exactly the horizon-1 tree: the handle builds, the first
    // extension must overflow.
    let h1 = unfold_with(
        &model,
        &UnfoldConfig {
            horizon: Some(1),
            ..UnfoldConfig::default()
        },
    )
    .unwrap();
    let cap = h1.num_nodes() - 1; // state nodes only: the root λ is not budgeted
    let mut u = Unfolder::new(
        &model,
        UnfoldConfig {
            max_nodes: cap,
            horizon: Some(1),
            ..UnfoldConfig::default()
        },
    )
    .unwrap();
    assert!(u.can_extend(), "cfg(3) trees are deeper than one level");
    let err = u.extend_horizon().unwrap_err();
    assert!(matches!(err, UnfoldError::TooLarge { max_nodes } if max_nodes == cap));
    assert_eq!(u.horizon(), 1, "failed extension must not advance");
    common::assert_identical_systems(&h1, u.pps(), "after failed extension");
    // The handle still refuses (the budget has not grown), and still
    // answers queries at its old horizon.
    assert!(u.extend_horizon().is_err());
    assert!(u.pps().measure(&u.pps().all_runs()).is_one());
}

/// Trees assembled by hand — no protocol model at all — grow too: a
/// prior-only tree built through [`PpsBuilder`] (and therefore
/// `Pps::from_parts`) is extended one level through [`PpsExtender`]
/// directly, and the result is bit-identical to hand-building the full
/// two-level tree in the same level order.
#[test]
fn hand_built_tree_extends_via_extender() {
    let act = ActionId(0);
    let heads0 = SimpleState::new(1, vec![0]);
    let tails0 = SimpleState::new(0, vec![0]);
    let heads1 = SimpleState::new(1, vec![1]);
    let tails1 = SimpleState::new(0, vec![2]);

    let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
    let h = b
        .initial(heads0.clone(), Rational::from_ratio(1, 3))
        .unwrap();
    let t = b
        .initial(tails0.clone(), Rational::from_ratio(2, 3))
        .unwrap();
    let mut ext = PpsExtender::new(b.build().unwrap());
    assert_eq!(ext.frontier_depth(), 1);
    ext.begin_level();
    let sid_h = ext.intern(heads1.clone());
    let sid_t = ext.intern(tails1.clone());
    ext.append_child(h, sid_h, Rational::one(), &[(AgentId(0), act)])
        .unwrap();
    ext.append_child(t, sid_t, Rational::one(), &[]).unwrap();
    ext.commit_level().unwrap();
    assert_eq!(ext.frontier_depth(), 2);
    let grown = ext.into_pps();

    // The same two-level tree, hand-built from scratch in level order.
    let mut b2 = PpsBuilder::<SimpleState, Rational>::new(1);
    let h2 = b2.initial(heads0, Rational::from_ratio(1, 3)).unwrap();
    let t2 = b2.initial(tails0, Rational::from_ratio(2, 3)).unwrap();
    b2.child(h2, heads1, Rational::one(), &[(AgentId(0), act)])
        .unwrap();
    b2.child(t2, tails1, Rational::one(), &[]).unwrap();
    let want = b2.build().unwrap();

    common::assert_identical_systems(&want, &grown, "hand-built extension");
    assert_eq!(grown.horizon(), 1);
    assert!(grown
        .measure(&grown.action_event(AgentId(0), act))
        .eq(&Rational::from_ratio(1, 3)));
}

#[test]
fn envelope_min_max_bracket_expected() {
    let pps = random_pps::<Rational>(5, &cfg(5)).unwrap();
    let fact = final_env_even(&pps);
    for agent in pps.agents() {
        let env = belief_envelope(&pps, agent, &fact);
        for t in 0..env.expected.len() {
            assert!(env.expected[t].at_least(&env.min[t]));
            assert!(env.max[t].at_least(&env.expected[t]));
        }
    }
}
