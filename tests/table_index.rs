//! Property tests for the `TableModel` lookup index.
//!
//! `TableModel::moves` / `transition` used to scan their tables linearly
//! with `.iter().find(..)`; they now consult a prebuilt [`TableIndex`]
//! (hash maps from `(agent, local, time)` and `(env, time)` to table
//! positions, built once per model). The two must agree on *every* input,
//! including the awkward cases: duplicated keys (linear scan returns the
//! first occurrence, so the index must too) and absent keys (the model
//! falls back to a deterministic skip / copied state). This suite sweeps
//! seeded random tables — with duplicates injected — and compares indexed
//! lookups against a straight linear rescan of the same tables.

use pak::core::generator::SplitMix64;
use pak::core::ids::{ActionId, AgentId};
use pak::core::prelude::*;
use pak::num::Rational;
use pak::protocol::model::{ProtocolModel, TableIndex, TableModel};

/// A random move table over small key ranges, with duplicate keys injected
/// (later duplicates carry a *different* distribution so a wrong pick is
/// caught, not masked).
fn random_table(seed: u64, with_duplicates: bool) -> TableModel<Rational> {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(13));
    let mut moves = Vec::new();
    let mut transitions = Vec::new();
    let entries = 3 + rng.below(12);
    for k in 0..entries {
        let key = (rng.below(3) as u32, rng.below(4), rng.below(4) as u32);
        moves.push((key, vec![(Some(ActionId(k as u32)), Rational::one())]));
        if with_duplicates && rng.below(3) == 0 {
            // Same key, distinguishable payload.
            moves.push((key, vec![(None, Rational::one())]));
        }
    }
    let entries = 2 + rng.below(10);
    for k in 0..entries {
        let key = (rng.below(4), rng.below(4) as u32);
        transitions.push((key, vec![(k, vec![k], Rational::one())]));
        if with_duplicates && rng.below(3) == 0 {
            transitions.push((key, vec![(k + 100, vec![k], Rational::one())]));
        }
    }
    TableModel {
        n_agents: 3,
        initial: vec![(0, vec![0, 0, 0], Rational::one())],
        horizon: 4,
        moves,
        transitions,
        ..TableModel::default()
    }
}

/// The pre-index lookup semantics, verbatim: front-to-back linear scan.
fn linear_moves(
    m: &TableModel<Rational>,
    agent: u32,
    local: u64,
    time: u32,
) -> Vec<(Option<ActionId>, Rational)> {
    m.moves
        .iter()
        .find(|((a, l, t), _)| *a == agent && *l == local && *t == time)
        .map_or_else(|| vec![(None, Rational::one())], |(_, dist)| dist.clone())
}

fn linear_transition(m: &TableModel<Rational>, state: &SimpleState, time: u32) -> Vec<SimpleState> {
    m.transitions
        .iter()
        .find(|((env, t), _)| *env == state.env && *t == time)
        .map_or_else(
            || vec![state.clone()],
            |(_, dist)| {
                dist.iter()
                    .map(|(env, locals, _)| SimpleState::new(*env, locals.clone()))
                    .collect()
            },
        )
}

#[test]
fn index_agrees_with_linear_scan_on_random_tables() {
    for seed in 0..60u64 {
        let model = random_table(seed, seed % 2 == 1);
        for agent in 0..4u32 {
            for local in 0..5u64 {
                for time in 0..5u32 {
                    let got: Vec<(Option<ActionId>, Rational)> =
                        model.moves(AgentId(agent), &local, time);
                    let want = linear_moves(&model, agent, local, time);
                    assert_eq!(got, want, "seed {seed}: moves({agent}, {local}, {time})");
                }
            }
        }
        for env in 0..5u64 {
            for time in 0..5u32 {
                let state = SimpleState::new(env, vec![1, 2, 3]);
                let got: Vec<(SimpleState, Rational)> =
                    model.transition(&state, &[None, None, None], time);
                let got: Vec<SimpleState> = got.into_iter().map(|(s, _)| s).collect();
                let want = linear_transition(&model, &state, time);
                assert_eq!(got, want, "seed {seed}: transition(env={env}, {time})");
            }
        }
    }
}

#[test]
fn duplicate_entries_resolve_to_first_occurrence() {
    // Two entries under one key: the scan semantics pick the first, and
    // the payloads differ, so a wrong pick fails loudly.
    let model: TableModel<Rational> = TableModel {
        n_agents: 1,
        initial: vec![(0, vec![0], Rational::one())],
        horizon: 1,
        moves: vec![
            ((0, 0, 0), vec![(Some(ActionId(7)), Rational::one())]),
            ((0, 0, 0), vec![(None, Rational::one())]),
        ],
        transitions: vec![
            ((0, 0), vec![(1, vec![0], Rational::one())]),
            ((0, 0), vec![(2, vec![0], Rational::one())]),
        ],
        ..TableModel::default()
    };
    let mv: Vec<(Option<ActionId>, Rational)> = model.moves(AgentId(0), &0, 0);
    assert_eq!(mv[0].0, Some(ActionId(7)));
    let tr: Vec<(SimpleState, Rational)> =
        model.transition(&SimpleState::new(0, vec![0]), &[None], 0);
    assert_eq!(tr[0].0.env, 1);
    // And positions, straight from the index.
    assert_eq!(model.index().move_entry(0, 0, 0), Some(0));
    assert_eq!(model.index().transition_entry(0, 0), Some(0));
}

#[test]
fn absent_entries_fall_back_to_skip_and_stay() {
    let model: TableModel<Rational> = TableModel {
        n_agents: 1,
        initial: vec![(0, vec![0], Rational::one())],
        horizon: 2,
        moves: vec![((0, 0, 0), vec![(Some(ActionId(0)), Rational::one())])],
        transitions: vec![],
        ..TableModel::default()
    };
    assert_eq!(model.index().move_entry(0, 9, 0), None);
    assert_eq!(model.index().transition_entry(5, 1), None);
    // Absent move entry → deterministic skip.
    let mv: Vec<(Option<ActionId>, Rational)> = model.moves(AgentId(0), &9, 0);
    assert_eq!(mv, vec![(None, Rational::one())]);
    // Absent transition entry → state copied unchanged.
    let state = SimpleState::new(5, vec![3]);
    let tr: Vec<(SimpleState, Rational)> = model.transition(&state, &[None], 1);
    assert_eq!(tr, vec![(state, Rational::one())]);
}

#[test]
fn index_is_built_once_and_invalidate_rebuilds() {
    let mut model = random_table(3, true);
    let before = model.index().move_entry(
        model.moves[0].0 .0,
        model.moves[0].0 .1,
        model.moves[0].0 .2,
    );
    assert_eq!(before, Some(0));
    // Mutate the table: prepend an entry under a fresh key. The stale
    // index still refers to old positions until invalidated.
    model
        .moves
        .insert(0, ((9, 9, 0), vec![(None, Rational::one())]));
    model.invalidate_index();
    assert_eq!(model.index().move_entry(9, 9, 0), Some(0));
    // Every original key now sits one position later.
    let (a, l, t) = model.moves[1].0;
    assert_eq!(model.index().move_entry(a, l, t), Some(1));
}

#[test]
fn standalone_index_matches_table_contents() {
    for seed in 0..20u64 {
        let model = random_table(seed, true);
        let index = TableIndex::build(&model);
        for (i, ((a, l, t), _)) in model.moves.iter().enumerate() {
            let hit = index.move_entry(*a, *l, *t).expect("key must be present");
            // The hit is the first entry with this key.
            let first = model
                .moves
                .iter()
                .position(|(k, _)| k == &(*a, *l, *t))
                .unwrap();
            assert_eq!(hit, first, "seed {seed}: entry {i}");
        }
        for (i, ((e, t), _)) in model.transitions.iter().enumerate() {
            let hit = index.transition_entry(*e, *t).expect("key must be present");
            let first = model
                .transitions
                .iter()
                .position(|(k, _)| k == &(*e, *t))
                .unwrap();
            assert_eq!(hit, first, "seed {seed}: entry {i}");
        }
    }
}
