//! Property tests for the `TableModel` lookup index.
//!
//! `TableModel::moves` / `transition` used to scan their tables linearly
//! with `.iter().find(..)`; they now consult a prebuilt [`TableIndex`]
//! (hash maps from `(agent, local, time)` and `(env, time)` to table
//! positions, built once per model). The two must agree on *every* input,
//! including the awkward cases: duplicated keys (linear scan returns the
//! first occurrence, so the index must too) and absent keys (the model
//! falls back to a deterministic skip / copied state). This suite sweeps
//! seeded random tables — with duplicates injected — and compares indexed
//! lookups against a straight linear rescan of the same tables.

use pak::core::generator::SplitMix64;
use pak::core::ids::{ActionId, AgentId};
use pak::core::prelude::*;
use pak::num::Rational;
use pak::protocol::model::{ProtocolModel, TableIndex, TableModel};

/// A random move table over small key ranges, with duplicate keys injected
/// (later duplicates carry a *different* distribution so a wrong pick is
/// caught, not masked).
fn random_table(seed: u64, with_duplicates: bool) -> TableModel<Rational> {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(13));
    let mut moves = Vec::new();
    let mut transitions = Vec::new();
    let entries = 3 + rng.below(12);
    for k in 0..entries {
        let key = (rng.below(3) as u32, rng.below(4), rng.below(4) as u32);
        moves.push((key, vec![(Some(ActionId(k as u32)), Rational::one())]));
        if with_duplicates && rng.below(3) == 0 {
            // Same key, distinguishable payload.
            moves.push((key, vec![(None, Rational::one())]));
        }
    }
    let entries = 2 + rng.below(10);
    for k in 0..entries {
        let key = (rng.below(4), rng.below(4) as u32);
        transitions.push((key, vec![(k, vec![k], Rational::one())]));
        if with_duplicates && rng.below(3) == 0 {
            transitions.push((key, vec![(k + 100, vec![k], Rational::one())]));
        }
    }
    TableModel {
        n_agents: 3,
        initial: vec![(0, vec![0, 0, 0], Rational::one())],
        horizon: 4,
        moves,
        transitions,
        ..TableModel::default()
    }
}

/// The pre-index lookup semantics, verbatim: front-to-back linear scan.
fn linear_moves(
    m: &TableModel<Rational>,
    agent: u32,
    local: u64,
    time: u32,
) -> Vec<(Option<ActionId>, Rational)> {
    m.moves
        .iter()
        .find(|((a, l, t), _)| *a == agent && *l == local && *t == time)
        .map_or_else(|| vec![(None, Rational::one())], |(_, dist)| dist.clone())
}

fn linear_transition(m: &TableModel<Rational>, state: &SimpleState, time: u32) -> Vec<SimpleState> {
    m.transitions
        .iter()
        .find(|((env, t), _)| *env == state.env && *t == time)
        .map_or_else(
            || vec![state.clone()],
            |(_, dist)| {
                dist.iter()
                    .map(|(env, locals, _)| SimpleState::new(*env, locals.clone()))
                    .collect()
            },
        )
}

#[test]
fn index_agrees_with_linear_scan_on_random_tables() {
    for seed in 0..60u64 {
        let model = random_table(seed, seed % 2 == 1);
        for agent in 0..4u32 {
            for local in 0..5u64 {
                for time in 0..5u32 {
                    let got: Vec<(Option<ActionId>, Rational)> =
                        model.moves(AgentId(agent), &local, time);
                    let want = linear_moves(&model, agent, local, time);
                    assert_eq!(got, want, "seed {seed}: moves({agent}, {local}, {time})");
                }
            }
        }
        for env in 0..5u64 {
            for time in 0..5u32 {
                let state = SimpleState::new(env, vec![1, 2, 3]);
                let got: Vec<(SimpleState, Rational)> =
                    model.transition(&state, &[None, None, None], time);
                let got: Vec<SimpleState> = got.into_iter().map(|(s, _)| s).collect();
                let want = linear_transition(&model, &state, time);
                assert_eq!(got, want, "seed {seed}: transition(env={env}, {time})");
            }
        }
    }
}

#[test]
fn duplicate_entries_resolve_to_first_occurrence() {
    // Two entries under one key: the scan semantics pick the first, and
    // the payloads differ, so a wrong pick fails loudly.
    let model: TableModel<Rational> = TableModel {
        n_agents: 1,
        initial: vec![(0, vec![0], Rational::one())],
        horizon: 1,
        moves: vec![
            ((0, 0, 0), vec![(Some(ActionId(7)), Rational::one())]),
            ((0, 0, 0), vec![(None, Rational::one())]),
        ],
        transitions: vec![
            ((0, 0), vec![(1, vec![0], Rational::one())]),
            ((0, 0), vec![(2, vec![0], Rational::one())]),
        ],
        ..TableModel::default()
    };
    let mv: Vec<(Option<ActionId>, Rational)> = model.moves(AgentId(0), &0, 0);
    assert_eq!(mv[0].0, Some(ActionId(7)));
    let tr: Vec<(SimpleState, Rational)> =
        model.transition(&SimpleState::new(0, vec![0]), &[None], 0);
    assert_eq!(tr[0].0.env, 1);
    // And positions, straight from the index.
    assert_eq!(model.index().move_entry(0, 0, 0), Some(0));
    assert_eq!(model.index().transition_entry(0, 0), Some(0));
}

#[test]
fn absent_entries_fall_back_to_skip_and_stay() {
    let model: TableModel<Rational> = TableModel {
        n_agents: 1,
        initial: vec![(0, vec![0], Rational::one())],
        horizon: 2,
        moves: vec![((0, 0, 0), vec![(Some(ActionId(0)), Rational::one())])],
        transitions: vec![],
        ..TableModel::default()
    };
    assert_eq!(model.index().move_entry(0, 9, 0), None);
    assert_eq!(model.index().transition_entry(5, 1), None);
    // Absent move entry → deterministic skip.
    let mv: Vec<(Option<ActionId>, Rational)> = model.moves(AgentId(0), &9, 0);
    assert_eq!(mv, vec![(None, Rational::one())]);
    // Absent transition entry → state copied unchanged.
    let state = SimpleState::new(5, vec![3]);
    let tr: Vec<(SimpleState, Rational)> = model.transition(&state, &[None], 1);
    assert_eq!(tr, vec![(state, Rational::one())]);
}

#[test]
fn index_is_built_once_and_invalidate_rebuilds() {
    let mut model = random_table(3, true);
    let before = model.index().move_entry(
        model.moves[0].0 .0,
        model.moves[0].0 .1,
        model.moves[0].0 .2,
    );
    assert_eq!(before, Some(0));
    // Mutate the table: prepend an entry under a fresh key. The stale
    // index still refers to old positions until invalidated.
    model
        .moves
        .insert(0, ((9, 9, 0), vec![(None, Rational::one())]));
    model.invalidate_index();
    assert_eq!(model.index().move_entry(9, 9, 0), Some(0));
    // Every original key now sits one position later.
    let (a, l, t) = model.moves[1].0;
    assert_eq!(model.index().move_entry(a, l, t), Some(1));
}

#[test]
fn invalidated_index_agrees_with_linear_scan_after_mutation() {
    // Property test for the index-invalidation contract: query a model
    // (forcing the lazy index build), mutate `moves`/`transitions` in
    // place — prepends, appends, removals, and payload edits, all of
    // which shift or change positions under existing keys — call
    // `invalidate_index`, and every re-query must agree with a fresh
    // front-to-back linear scan of the *mutated* tables. (The original
    // sweep only covered the initial build.)
    for seed in 0..40u64 {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x5851_F42D).wrapping_add(99));
        let mut model = random_table(seed, seed % 3 == 0);

        // First round of queries builds and exercises the index.
        for agent in 0..4u32 {
            for local in 0..5u64 {
                for time in 0..5u32 {
                    let got: Vec<(Option<ActionId>, Rational)> =
                        model.moves(AgentId(agent), &local, time);
                    assert_eq!(
                        got,
                        linear_moves(&model, agent, local, time),
                        "seed {seed}: pre-mutation moves({agent}, {local}, {time})"
                    );
                }
            }
        }

        // Mutate: each operation changes what a linear scan would find.
        for _ in 0..(1 + rng.below(4)) {
            match rng.below(4) {
                // Prepend under a (possibly existing) key: shifts every
                // position and may shadow an old first occurrence.
                0 => {
                    let key = (rng.below(3) as u32, rng.below(4), rng.below(4) as u32);
                    model
                        .moves
                        .insert(0, (key, vec![(Some(ActionId(77)), Rational::one())]));
                }
                // Remove the first move entry: un-shadows duplicates.
                1 => {
                    if !model.moves.is_empty() {
                        model.moves.remove(0);
                    }
                }
                // Append a transition under a fresh-ish key.
                2 => {
                    let key = (rng.below(6), rng.below(5) as u32);
                    model
                        .transitions
                        .push((key, vec![(rng.below(50) + 200, vec![7], Rational::one())]));
                }
                // Rewrite an existing transition's payload in place.
                _ => {
                    if !model.transitions.is_empty() {
                        let i = rng.below(model.transitions.len() as u64) as usize;
                        model.transitions[i].1 =
                            vec![(rng.below(50) + 300, vec![8], Rational::one())];
                    }
                }
            }
        }
        model.invalidate_index();

        // Every re-query must match a fresh linear scan of the mutated
        // tables — indexed positions from before the mutation would be
        // stale in a way these payloads make loud.
        for agent in 0..4u32 {
            for local in 0..5u64 {
                for time in 0..5u32 {
                    let got: Vec<(Option<ActionId>, Rational)> =
                        model.moves(AgentId(agent), &local, time);
                    assert_eq!(
                        got,
                        linear_moves(&model, agent, local, time),
                        "seed {seed}: post-mutation moves({agent}, {local}, {time})"
                    );
                }
            }
        }
        for env in 0..7u64 {
            for time in 0..6u32 {
                let state = SimpleState::new(env, vec![1, 2, 3]);
                let got: Vec<SimpleState> = model
                    .transition(&state, &[None, None, None], time)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                assert_eq!(
                    got,
                    linear_transition(&model, &state, time),
                    "seed {seed}: post-mutation transition(env={env}, {time})"
                );
            }
        }

        // The `_into` path consults the same rebuilt index.
        let mut buf: Vec<(Option<ActionId>, Rational)> = Vec::new();
        for agent in 0..4u32 {
            for local in 0..5u64 {
                buf.clear();
                model.moves_into(AgentId(agent), &local, 0, &mut buf);
                assert_eq!(
                    buf,
                    linear_moves(&model, agent, local, 0),
                    "seed {seed}: post-mutation moves_into({agent}, {local}, 0)"
                );
            }
        }
    }
}

#[test]
fn standalone_index_matches_table_contents() {
    for seed in 0..20u64 {
        let model = random_table(seed, true);
        let index = TableIndex::build(&model);
        for (i, ((a, l, t), _)) in model.moves.iter().enumerate() {
            let hit = index.move_entry(*a, *l, *t).expect("key must be present");
            // The hit is the first entry with this key.
            let first = model
                .moves
                .iter()
                .position(|(k, _)| k == &(*a, *l, *t))
                .unwrap();
            assert_eq!(hit, first, "seed {seed}: entry {i}");
        }
        for (i, ((e, t), _)) in model.transitions.iter().enumerate() {
            let hit = index.transition_entry(*e, *t).expect("key must be present");
            let first = model
                .transitions
                .iter()
                .position(|(k, _)| k == &(*e, *t))
                .unwrap();
            assert_eq!(hit, first, "seed {seed}: entry {i}");
        }
    }
}
