//! Monte-Carlo cross-validation of exact analyses.
//!
//! For each system of the paper, the exact (rational) value of every
//! quantity must fall inside the 99% Wilson interval of its Monte-Carlo
//! estimate. Fixed seeds keep the tests deterministic; sample sizes are
//! chosen so intervals are tight enough to be meaningful yet fast.

use pak::core::prelude::*;
use pak::num::Rational;
use pak::protocol::messaging::LossyMessagingModel;
use pak::protocol::model::TableModel;
use pak::sim::estimate::{
    estimate_constraint, estimate_expected_belief, estimate_threshold_measure, BeliefTable,
};
use pak::sim::Simulator;
use pak::systems::attack::{
    AttackSystem, CoordinatedAttack, ATTACK_A, ATTACK_B, GENERAL_A, GENERAL_B,
};
use pak::systems::firing_squad::{FiringSquad, FsSystem, ALICE, BOB, FIRE_A, FIRE_B};

const Z99: f64 = 2.576;
const N: u64 = 60_000;

#[test]
fn firing_squad_constraint_probability() {
    let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    let est = estimate_constraint::<_, Rational>(&model, 11, N, ALICE, FIRE_A, |trial, t| {
        trial.does(ALICE, FIRE_A, t) && trial.does(BOB, FIRE_B, t)
    });
    assert!(est.proportion.contains(0.99, Z99), "{est}");
    // The conditioning event (Alice fires ⇔ go = 1) has rate ≈ ½.
    assert!((est.conditioning_rate() - 0.5).abs() < 0.02);
}

#[test]
fn firing_squad_threshold_measure() {
    let exact = FiringSquad::paper().build_pps();
    let table = BeliefTable::from_pps(exact.pps(), ALICE, &FsSystem::<Rational>::phi_both());
    let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    let est = estimate_threshold_measure::<_, Rational>(&model, 13, N, ALICE, FIRE_A, &table, 0.95);
    assert!(est.proportion.contains(0.991, Z99), "{est}");
}

#[test]
fn firing_squad_expected_belief_matches_expectation_theorem() {
    // Theorem 6.2 cross-validated: sampled E[β@α|α] ≈ exact µ(ϕ@α|α) = 0.99.
    let exact = FiringSquad::paper().build_pps();
    let table = BeliefTable::from_pps(exact.pps(), ALICE, &FsSystem::<Rational>::phi_both());
    let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    let (mean, se, hits) =
        estimate_expected_belief::<_, Rational>(&model, 17, N, ALICE, FIRE_A, &table);
    assert!(hits > N / 3);
    assert!(
        (mean - 0.99).abs() < 4.0 * se + 1e-9,
        "sampled mean {mean} too far from 0.99 (se {se})"
    );
}

#[test]
fn improved_firing_squad_constraint() {
    let model = LossyMessagingModel::new(FiringSquad::improved(), Rational::from_ratio(1, 10));
    let est = estimate_constraint::<_, Rational>(&model, 19, N, ALICE, FIRE_A, |trial, t| {
        trial.does(ALICE, FIRE_A, t) && trial.does(BOB, FIRE_B, t)
    });
    let exact = 990.0 / 991.0;
    assert!(est.proportion.contains(exact, Z99), "{est}");
}

#[test]
fn coordinated_attack_coordination_probability() {
    for rounds in [1u32, 3] {
        let scenario = CoordinatedAttack::new(
            Rational::from_ratio(1, 10),
            Rational::from_ratio(1, 2),
            rounds,
        );
        let exact = scenario
            .build_pps()
            .unwrap()
            .analyze()
            .constraint_probability()
            .to_f64();
        let model = LossyMessagingModel::new(scenario, Rational::from_ratio(1, 10));
        let est = estimate_constraint::<_, Rational>(
            &model,
            23 + u64::from(rounds),
            N,
            GENERAL_A,
            ATTACK_A,
            |trial, t| trial.does(GENERAL_B, ATTACK_B, t),
        );
        assert!(
            est.proportion.contains(exact, Z99),
            "rounds {rounds}: {est}"
        );
    }
}

#[test]
fn attack_threshold_measure_with_acks() {
    let scenario =
        CoordinatedAttack::new(Rational::from_ratio(1, 10), Rational::from_ratio(1, 2), 2);
    let sys = scenario.build_pps().unwrap();
    let table = BeliefTable::from_pps(sys.pps(), GENERAL_A, &AttackSystem::<Rational>::b_attacks());
    let model = LossyMessagingModel::new(scenario, Rational::from_ratio(1, 10));
    // Exact: belief = 1 on ack (measure 0.81), 9/19 otherwise.
    let est =
        estimate_threshold_measure::<_, Rational>(&model, 29, N, GENERAL_A, ATTACK_A, &table, 0.99);
    assert!(est.proportion.contains(0.81, Z99), "{est}");
}

#[test]
fn simulator_respects_mixed_action_probabilities() {
    // A mixed step α w.p. ¼: the sampled action frequency must match, and
    // the unfolded pps must agree with the sampler.
    let model: TableModel<Rational> = TableModel {
        n_agents: 1,
        initial: vec![(0, vec![0], Rational::one())],
        horizon: 1,
        moves: vec![(
            (0, 0, 0),
            vec![
                (Some(ActionId(0)), Rational::from_ratio(1, 4)),
                (None, Rational::from_ratio(3, 4)),
            ],
        )],
        transitions: vec![],
        ..TableModel::default()
    };
    let pps = pak::protocol::unfold::<_, Rational>(&model).unwrap();
    let exact = pps.measure(&pps.action_event(AgentId(0), ActionId(0)));
    assert_eq!(exact, Rational::from_ratio(1, 4));

    let mut sim = Simulator::<_, Rational>::new(&model, 31);
    let mut count = 0u64;
    sim.sample_each(N, |t| {
        if t.does(AgentId(0), ActionId(0), 0) {
            count += 1;
        }
    });
    let est = pak::sim::Proportion::new(count, N);
    assert!(est.contains(0.25, Z99), "{est}");
}

#[test]
fn trial_structure_matches_unfolded_runs() {
    // Every sampled trajectory must correspond to some run of the unfolded
    // pps (same state sequence), i.e. the simulator and unfolder implement
    // the same semantics.
    let fs = FiringSquad::paper();
    let model = LossyMessagingModel::new(fs.clone(), Rational::from_ratio(1, 10));
    let pps = pak::protocol::unfold::<_, Rational>(&model).unwrap();

    let mut run_signatures: Vec<String> = Vec::new();
    for run in pps.run_ids() {
        let sig: Vec<String> = (0..pps.run_len(run) as u32)
            .map(|t| format!("{:?}", pps.state_at(Point { run, time: t }).unwrap()))
            .collect();
        run_signatures.push(sig.join("|"));
    }

    let mut sim = Simulator::<_, Rational>::new(&model, 37);
    for _ in 0..500 {
        let trial = sim.sample();
        let sig: Vec<String> = trial.states.iter().map(|s| format!("{s:?}")).collect();
        let sig = sig.join("|");
        assert!(
            run_signatures.contains(&sig),
            "sampled trajectory not among unfolded runs: {sig}"
        );
    }
}
