//! Model checking formulas over a pps.
//!
//! [`ModelChecker`] evaluates a [`Formula`] across an entire system:
//! validity (all points), satisfiability (some point), the satisfying
//! point set, and measures of run events derived from formulas. It also
//! verifies *schema* validity — useful for checking axioms (e.g. S5 `T`,
//! the KoP schema `does_i(α) → K_i ϕ`) on concrete systems.

use pak_core::event::RunSet;
use pak_core::ids::Point;
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

use crate::formula::Formula;

/// A model checker bound to one system.
///
/// # Examples
///
/// ```
/// use pak_logic::{Formula, ModelChecker};
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
/// b.initial(SimpleState::new(1, vec![0]), Rational::from_ratio(1, 2))?;
/// b.initial(SimpleState::new(0, vec![0]), Rational::from_ratio(1, 2))?;
/// let pps = b.build()?;
/// let mc = ModelChecker::new(&pps);
///
/// let heads = Formula::atom(StateFact::new("heads", |g: &SimpleState| g.env == 1));
/// assert!(!mc.valid(&heads));
/// assert!(mc.satisfiable(&heads));
/// assert_eq!(mc.measure_at_time(&heads, 0), Rational::from_ratio(1, 2));
/// # Ok::<(), PpsError>(())
/// ```
#[derive(Debug)]
pub struct ModelChecker<'a, G: GlobalState, P: Probability> {
    pps: &'a Pps<G, P>,
}

impl<'a, G: GlobalState, P: Probability> ModelChecker<'a, G, P> {
    /// Binds a checker to a system.
    #[must_use]
    pub fn new(pps: &'a Pps<G, P>) -> Self {
        ModelChecker { pps }
    }

    /// The underlying system.
    #[must_use]
    pub fn pps(&self) -> &'a Pps<G, P> {
        self.pps
    }

    /// Whether the formula holds at every *live* point of the system
    /// ([`Pps::points`]) — the quantification the paper's validity notion
    /// uses. Dead points carry no truth value and are not consulted.
    #[must_use]
    pub fn valid(&self, f: &Formula<G, P>) -> bool {
        self.pps.points().all(|pt| f.holds_at(self.pps, pt))
    }

    /// Whether the formula holds at some live point.
    #[must_use]
    pub fn satisfiable(&self, f: &Formula<G, P>) -> bool {
        self.pps.points().any(|pt| f.holds_at(self.pps, pt))
    }

    /// All live points at which the formula holds, in `(run, time)` order.
    #[must_use]
    pub fn satisfying_points(&self, f: &Formula<G, P>) -> Vec<Point> {
        self.pps
            .points()
            .filter(|&pt| f.holds_at(self.pps, pt))
            .collect()
    }

    /// A counterexample point, if the formula is not valid: the first live
    /// point in `(run, time)` order at which the formula fails.
    #[must_use]
    pub fn counterexample(&self, f: &Formula<G, P>) -> Option<Point> {
        self.pps.points().find(|&pt| !f.holds_at(self.pps, pt))
    }

    /// The event `{r : (T, r, t) |= ϕ}` for a fixed time.
    ///
    /// Quantifies over *live* points only: a run that has ended before
    /// `time` has no point there, so it is excluded from the event — it
    /// can neither satisfy `ϕ` nor count toward the measure. (Formulas
    /// are uniformly false at dead points, so the liveness guard also
    /// skips evaluating them there at all.)
    #[must_use]
    pub fn event_at_time(&self, f: &Formula<G, P>, time: u32) -> RunSet {
        RunSet::from_predicate(self.pps.num_runs(), |run| {
            (time as usize) < self.pps.run_len(run) && f.holds_at(self.pps, Point { run, time })
        })
    }

    /// The measure `µ_T({r : (T, r, t) |= ϕ})`, over the runs still alive
    /// at `time` (see [`ModelChecker::event_at_time`]). In systems with
    /// uneven run lengths this is *not* 1 for `⊤` at late times: the mass
    /// of runs that have already ended is gone from the event.
    #[must_use]
    pub fn measure_at_time(&self, f: &Formula<G, P>, time: u32) -> P {
        self.pps.measure(&self.event_at_time(f, time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use pak_core::fact::StateFact;
    use pak_core::ids::{ActionId, AgentId, RunId};
    use pak_core::pps::PpsBuilder;
    use pak_core::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    /// A KoP-style system: the agent observes `ok` before acting; it acts
    /// only when `ok` holds.
    fn kop_system() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        // locals reveal env to the agent.
        let good = b.initial(SimpleState::new(1, vec![1]), r(2, 3)).unwrap();
        let bad = b.initial(SimpleState::new(0, vec![0]), r(1, 3)).unwrap();
        b.child(
            good,
            SimpleState::new(1, vec![1]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        b.child(bad, SimpleState::new(0, vec![0]), Rational::one(), &[])
            .unwrap();
        b.build().unwrap()
    }

    fn ok() -> Formula<SimpleState, Rational> {
        Formula::atom(StateFact::new("ok", |g: &SimpleState| g.env == 1))
    }

    #[test]
    fn kop_schema_validates() {
        // The Knowledge-of-Preconditions schema: does(α) → K_i(ok).
        let pps = kop_system();
        let mc = ModelChecker::new(&pps);
        let schema =
            Formula::does(AgentId(0), ActionId(0)).implies(Formula::knows(AgentId(0), ok()));
        assert!(mc.valid(&schema));
        assert!(mc.counterexample(&schema).is_none());
    }

    #[test]
    fn kop_schema_fails_when_observation_hidden() {
        // Hide the observation: the agent acts blindly; KoP schema fails.
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let good = b.initial(SimpleState::new(1, vec![0]), r(2, 3)).unwrap();
        let bad = b.initial(SimpleState::new(0, vec![0]), r(1, 3)).unwrap();
        b.child(
            good,
            SimpleState::new(1, vec![0]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        b.child(
            bad,
            SimpleState::new(0, vec![0]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        let pps = b.build().unwrap();
        let mc = ModelChecker::new(&pps);
        let schema =
            Formula::does(AgentId(0), ActionId(0)).implies(Formula::knows(AgentId(0), ok()));
        assert!(!mc.valid(&schema));
        let cex = mc.counterexample(&schema).unwrap();
        // The counterexample is an acting point where ok fails or is unknown.
        assert!(Formula::does(AgentId(0), ActionId(0)).holds_at(&pps, cex));
        // But the probabilistic weakening holds: belief ≥ 2/3 when acting.
        let weak = Formula::does(AgentId(0), ActionId(0)).implies(Formula::believes_at_least(
            AgentId(0),
            ok(),
            r(2, 3),
        ));
        assert!(mc.valid(&weak));
    }

    #[test]
    fn satisfying_points_and_measures() {
        let pps = kop_system();
        let mc = ModelChecker::new(&pps);
        assert_eq!(mc.measure_at_time(&ok(), 0), r(2, 3));
        let pts = mc.satisfying_points(&ok());
        assert_eq!(pts.len(), 2); // both times of the good run
        assert!(pts.iter().all(|pt| pt.run == RunId(0)));
        assert!(mc.satisfiable(&ok().not()));
        assert!(!mc.valid(&ok()));
    }

    #[test]
    fn event_at_time_matches_fact_events() {
        use pak_core::fact::Facts;
        let pps = kop_system();
        let mc = ModelChecker::new(&pps);
        let via_formula = mc.event_at_time(&ok(), 1);
        let fact = StateFact::new("ok", |g: &SimpleState| g.env == 1);
        let via_fact = pps.fact_event_at_time(&fact, 1);
        assert_eq!(via_formula, via_fact);
    }

    #[test]
    fn checker_exposes_system() {
        let pps = kop_system();
        let mc = ModelChecker::new(&pps);
        assert_eq!(mc.pps().num_runs(), 2);
    }

    /// Uneven run lengths: run 0 (µ = ⅔) lasts two steps, run 1 (µ = ⅓)
    /// ends after its initial state.
    fn uneven_system() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let long = b.initial(SimpleState::new(1, vec![0]), r(2, 3)).unwrap();
        let _short = b.initial(SimpleState::new(0, vec![0]), r(1, 3)).unwrap();
        b.child(long, SimpleState::new(1, vec![1]), Rational::one(), &[])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn events_and_measures_quantify_live_runs_only() {
        // Regression for the overcounting bug: at a time where some runs
        // have already ended, the event for *any* formula — `⊤` and
        // dead-point-false connectives included — contains only the runs
        // still alive, and the measure is their mass, not 1.
        let pps = uneven_system();
        let mc = ModelChecker::new(&pps);
        assert_eq!(pps.run_len(RunId(0)), 2);
        assert_eq!(pps.run_len(RunId(1)), 1);

        // At time 0 both runs are alive and ⊤ has full measure.
        assert_eq!(mc.measure_at_time(&Formula::True, 0), Rational::one());
        // At time 1 only run 0 exists; the ended run contributes nothing.
        let top_at_1 = mc.event_at_time(&Formula::True, 1);
        assert_eq!(top_at_1, pps.live_runs_at(1));
        assert!(top_at_1.contains(RunId(0)));
        assert!(!top_at_1.contains(RunId(1)));
        assert_eq!(mc.measure_at_time(&Formula::True, 1), r(2, 3));

        // Connectives that were once vacuously true at dead points must
        // not resurrect the ended run either.
        let vacuous = Formula::False.implies(Formula::False);
        assert_eq!(mc.event_at_time(&vacuous, 1), pps.live_runs_at(1));
        assert_eq!(mc.measure_at_time(&vacuous, 1), r(2, 3));
        let negated = ok().not().or(ok());
        assert_eq!(mc.measure_at_time(&negated, 1), r(2, 3));

        // Past every run's end the event is empty and the measure zero.
        assert!(mc.event_at_time(&Formula::True, 2).is_empty());
        assert!(mc.measure_at_time(&Formula::True, 2).is_zero());
    }

    #[test]
    fn validity_ignores_dead_points_on_uneven_systems() {
        // `⊤` is valid (all *live* points satisfy it) even though the
        // short run has no point at time 1.
        let pps = uneven_system();
        let mc = ModelChecker::new(&pps);
        assert!(mc.valid(&Formula::True));
        assert!(!mc.satisfiable(&Formula::False));
        assert_eq!(mc.satisfying_points(&Formula::True).len(), 3);
    }
}
