//! # pak-logic — an epistemic-probabilistic logic over pps
//!
//! The paper reasons semantically about facts, knowledge, and probabilistic
//! beliefs, deferring the formal logic to Halpern's *Reasoning about
//! Uncertainty*. This crate provides that formal layer for the workspace:
//!
//! * [`Formula`] — propositional connectives, `does_i(α)`, the knowledge
//!   modality `K_i` (truth in all local-state-indistinguishable points),
//!   the probabilistic-belief modality `B_i^{≥p}` (the paper's
//!   `β_i(ϕ) ≥ p`), and in-run temporal operators `◇`/`□`.
//! * [`ModelChecker`] — validity, satisfiability, counterexamples, and
//!   event measures over a concrete pps.
//!
//! Formulas implement [`Fact`](pak_core::fact::Fact), so they compose with
//! every analysis in `pak-core` — e.g. a probabilistic constraint whose
//! condition is itself an epistemic formula.
//!
//! # Example: the KoP principle and its probabilistic weakening
//!
//! ```
//! use pak_logic::{Formula, ModelChecker};
//! use pak_core::prelude::*;
//! use pak_num::Rational;
//!
//! // A system where the agent acts blindly on a 2/3-likely condition.
//! let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
//! let good = b.initial(SimpleState::new(1, vec![0]), Rational::from_ratio(2, 3))?;
//! let bad = b.initial(SimpleState::new(0, vec![0]), Rational::from_ratio(1, 3))?;
//! let act = ActionId(0);
//! b.child(good, SimpleState::new(1, vec![0]), Rational::one(), &[(AgentId(0), act)])?;
//! b.child(bad, SimpleState::new(0, vec![0]), Rational::one(), &[(AgentId(0), act)])?;
//! let pps = b.build()?;
//! let mc = ModelChecker::new(&pps);
//!
//! let ok = Formula::atom(StateFact::new("ok", |g: &SimpleState| g.env == 1));
//! // Deterministic KoP fails: acting does not imply knowing.
//! let kop = Formula::does(AgentId(0), act).implies(Formula::knows(AgentId(0), ok.clone()));
//! assert!(!mc.valid(&kop));
//! // The probabilistic analogue holds: acting implies belief ≥ 2/3.
//! let pak = Formula::does(AgentId(0), act)
//!     .implies(Formula::believes_at_least(AgentId(0), ok, Rational::from_ratio(2, 3)));
//! assert!(mc.valid(&pak));
//! # Ok::<(), PpsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod common;
pub mod formula;
pub mod generator;
pub mod parser;

pub use check::ModelChecker;
pub use common::{
    common_belief, common_belief_report, everyone_believes, CommonBeliefReport, PointSet,
};
pub use formula::{Formula, FormulaFact};
pub use generator::{random_formula, RandomFormulaConfig};
pub use parser::{FormulaParser, ParseFormulaError};
