//! A text syntax for epistemic-probabilistic formulas.
//!
//! Specifications are easier to review as text than as builder chains. The
//! grammar (precedence from loosest to tightest):
//!
//! ```text
//! formula  := implies
//! implies  := or ( "->" implies )?                     (right associative)
//! or       := and ( "|" and )*
//! and      := unary ( "&" unary )*
//! unary    := "!" unary
//!           | "K" AGENT unary                          (K0 phi)
//!           | "B" AGENT "{>=" PROB "}" unary           (B0{>=1/2} phi)
//!           | "<>" unary | "[]" unary                  (eventually / always)
//!           | "does" "(" AGENT "," ACTION ")"
//!           | "true" | "false"
//!           | IDENT                                    (registered atom)
//!           | "(" formula ")"
//! AGENT    := decimal            PROB := "a/b" | "0.75" | "1"
//! ```
//!
//! Atoms are registered on the parser by name, binding identifiers to
//! [`Fact`]s.
//!
//! # Examples
//!
//! ```
//! use pak_logic::parser::FormulaParser;
//! use pak_core::prelude::*;
//! use pak_num::Rational;
//!
//! let mut parser = FormulaParser::<SimpleState, Rational>::new();
//! parser.atom("heads", StateFact::new("heads", |g: &SimpleState| g.env == 1));
//! let f = parser.parse("does(0, 3) -> B0{>=99/100} heads").unwrap();
//! assert_eq!(f.to_string(), "(does_0(action#3) → B_0^{≥99/100} heads)");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use pak_core::fact::Fact;
use pak_core::ids::{ActionId, AgentId};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_num::Rational;

use crate::formula::Formula;

/// Error produced when parsing a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormulaError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseFormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseFormulaError {}

/// A parser with a registry of named atoms.
pub struct FormulaParser<G: GlobalState, P: Probability> {
    atoms: HashMap<String, Arc<dyn Fact<G, P> + Send + Sync>>,
}

impl<G: GlobalState, P: Probability> Default for FormulaParser<G, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<G: GlobalState, P: Probability> FormulaParser<G, P> {
    /// An empty parser (only the built-in syntax, no atoms).
    #[must_use]
    pub fn new() -> Self {
        FormulaParser {
            atoms: HashMap::new(),
        }
    }

    /// Registers an atom under `name`. Re-registering replaces the binding.
    pub fn atom(
        &mut self,
        name: impl Into<String>,
        fact: impl Fact<G, P> + Send + Sync + 'static,
    ) -> &mut Self {
        self.atoms.insert(name.into(), Arc::new(fact));
        self
    }

    /// Parses a formula.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseFormulaError`] describing the first syntax problem
    /// or unknown atom.
    pub fn parse(&self, input: &str) -> Result<Formula<G, P>, ParseFormulaError> {
        let mut cursor = Cursor { input, pos: 0 };
        let f = self.parse_implies(&mut cursor)?;
        cursor.skip_ws();
        if cursor.pos != input.len() {
            return Err(cursor.error("unexpected trailing input"));
        }
        Ok(f)
    }

    fn parse_implies(&self, c: &mut Cursor<'_>) -> Result<Formula<G, P>, ParseFormulaError> {
        let lhs = self.parse_or(c)?;
        c.skip_ws();
        if c.eat("->") {
            let rhs = self.parse_implies(c)?;
            return Ok(lhs.implies(rhs));
        }
        Ok(lhs)
    }

    fn parse_or(&self, c: &mut Cursor<'_>) -> Result<Formula<G, P>, ParseFormulaError> {
        let mut acc = self.parse_and(c)?;
        loop {
            c.skip_ws();
            if c.eat("|") {
                let rhs = self.parse_and(c)?;
                acc = acc.or(rhs);
            } else {
                return Ok(acc);
            }
        }
    }

    fn parse_and(&self, c: &mut Cursor<'_>) -> Result<Formula<G, P>, ParseFormulaError> {
        let mut acc = self.parse_unary(c)?;
        loop {
            c.skip_ws();
            if c.eat("&") {
                let rhs = self.parse_unary(c)?;
                acc = acc.and(rhs);
            } else {
                return Ok(acc);
            }
        }
    }

    fn parse_unary(&self, c: &mut Cursor<'_>) -> Result<Formula<G, P>, ParseFormulaError> {
        c.skip_ws();
        if c.eat("!") {
            return Ok(self.parse_unary(c)?.not());
        }
        if c.eat("<>") {
            return Ok(self.parse_unary(c)?.eventually());
        }
        if c.eat("[]") {
            return Ok(self.parse_unary(c)?.always());
        }
        if c.eat("(") {
            let inner = self.parse_implies(c)?;
            c.skip_ws();
            if !c.eat(")") {
                return Err(c.error("expected ')'"));
            }
            return Ok(inner);
        }
        // Keywords and modal operators.
        if c.peek_keyword("does") {
            c.eat("does");
            c.skip_ws();
            if !c.eat("(") {
                return Err(c.error("expected '(' after does"));
            }
            let agent = c.parse_number("agent id")?;
            c.skip_ws();
            if !c.eat(",") {
                return Err(c.error("expected ',' in does(agent, action)"));
            }
            let action = c.parse_number("action id")?;
            c.skip_ws();
            if !c.eat(")") {
                return Err(c.error("expected ')' after does arguments"));
            }
            return Ok(Formula::does(AgentId(agent), ActionId(action)));
        }
        if c.peek_keyword("true") {
            c.eat("true");
            return Ok(Formula::True);
        }
        if c.peek_keyword("false") {
            c.eat("false");
            return Ok(Formula::False);
        }
        // K<agent> inner
        if c.peek_char('K') && c.digit_follows(1) {
            c.advance(1);
            let agent = c.parse_number("agent id")?;
            let inner = self.parse_unary(c)?;
            return Ok(Formula::knows(AgentId(agent), inner));
        }
        // B<agent>{>=p} inner
        if c.peek_char('B') && c.digit_follows(1) {
            c.advance(1);
            let agent = c.parse_number("agent id")?;
            c.skip_ws();
            if !c.eat("{>=") {
                return Err(c.error("expected '{>=' after belief agent"));
            }
            let prob = c.parse_probability::<P>()?;
            if !c.eat("}") {
                return Err(c.error("expected '}' after belief threshold"));
            }
            let inner = self.parse_unary(c)?;
            return Ok(Formula::believes_at_least(AgentId(agent), inner, prob));
        }
        // Identifier atom.
        let ident = c.parse_ident()?;
        match self.atoms.get(&ident) {
            Some(fact) => Ok(Formula::Atom(Arc::clone(fact))),
            None => Err(c.error(&format!("unknown atom '{ident}'"))),
        }
    }
}

impl<G: GlobalState, P: Probability> fmt::Debug for FormulaParser<G, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.atoms.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "FormulaParser{{atoms: {names:?}}}")
    }
}

/// Input cursor with basic token helpers.
struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl Cursor<'_> {
    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(char::is_whitespace) {
            self.pos += self.rest().chars().next().map_or(0, char::len_utf8);
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn advance(&mut self, bytes: usize) {
        self.pos += bytes;
    }

    fn peek_char(&mut self, ch: char) -> bool {
        self.skip_ws();
        self.rest().starts_with(ch)
    }

    fn digit_follows(&self, offset: usize) -> bool {
        self.rest()
            .as_bytes()
            .get(offset)
            .is_some_and(u8::is_ascii_digit)
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        rest.starts_with(kw)
            && !rest[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }

    fn parse_number(&mut self, what: &str) -> Result<u32, ParseFormulaError> {
        self.skip_ws();
        let digits: String = self
            .rest()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if digits.is_empty() {
            return Err(self.error(&format!("expected {what}")));
        }
        self.pos += digits.len();
        digits
            .parse()
            .map_err(|_| self.error(&format!("{what} out of range")))
    }

    fn parse_probability<P: Probability>(&mut self) -> Result<P, ParseFormulaError> {
        self.skip_ws();
        let token: String = self
            .rest()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '/' || *c == '.')
            .collect();
        if token.is_empty() {
            return Err(self.error("expected probability"));
        }
        let rat = Rational::from_str(&token)
            .map_err(|e| self.error(&format!("bad probability '{token}': {e}")))?;
        if !rat.is_probability() {
            return Err(self.error(&format!("'{token}' is not in [0, 1]")));
        }
        self.pos += token.len();
        // Convert through u64 ratio (denominators in specs are small).
        let num = rat.numer().magnitude().to_u64();
        let den = rat.denom().to_u64();
        match (num, den) {
            (Some(n), Some(d)) => Ok(P::from_ratio(n, d)),
            _ => Err(self.error("probability too large to represent")),
        }
    }

    fn parse_ident(&mut self) -> Result<String, ParseFormulaError> {
        self.skip_ws();
        let ident: String = self
            .rest()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() || ident.starts_with(|c: char| c.is_ascii_digit()) {
            return Err(self.error("expected a formula"));
        }
        self.pos += ident.len();
        Ok(ident)
    }

    fn error(&self, message: &str) -> ParseFormulaError {
        ParseFormulaError {
            position: self.pos,
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::StateFact;
    use pak_core::pps::PpsBuilder;
    use pak_core::state::SimpleState;

    fn parser() -> FormulaParser<SimpleState, Rational> {
        let mut p = FormulaParser::new();
        p.atom(
            "heads",
            StateFact::new("heads", |g: &SimpleState| g.env == 1),
        );
        p.atom(
            "ok_2",
            StateFact::new("ok_2", |g: &SimpleState| g.locals[0] == 2),
        );
        p
    }

    #[test]
    fn parses_connectives_with_precedence() {
        let p = parser();
        // & binds tighter than |, which binds tighter than ->.
        let f = p.parse("heads & ok_2 | !heads -> false").unwrap();
        assert_eq!(f.to_string(), "(((heads ∧ ok_2) ∨ ¬heads) → ⊥)");
    }

    #[test]
    fn implication_is_right_associative() {
        let p = parser();
        let f = p.parse("heads -> heads -> heads").unwrap();
        assert_eq!(f.to_string(), "(heads → (heads → heads))");
    }

    #[test]
    fn parses_modalities() {
        let p = parser();
        let f = p.parse("K0 heads").unwrap();
        assert_eq!(f.to_string(), "K_0 heads");
        let f = p.parse("B1{>=3/4} !heads").unwrap();
        assert_eq!(f.to_string(), "B_1^{≥3/4} ¬heads");
        let f = p.parse("B0{>=0.25} heads").unwrap();
        assert_eq!(f.to_string(), "B_0^{≥1/4} heads");
        let f = p.parse("<> heads & [] true").unwrap();
        assert_eq!(f.to_string(), "(◇heads ∧ □⊤)");
    }

    #[test]
    fn parses_does_and_parens() {
        let p = parser();
        let f = p.parse("does(0, 3) -> (heads | false)").unwrap();
        assert_eq!(f.to_string(), "(does_0(action#3) → (heads ∨ ⊥))");
    }

    #[test]
    fn parsed_formula_evaluates() {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        b.initial(SimpleState::new(1, vec![0]), Rational::from_ratio(3, 4))
            .unwrap();
        b.initial(SimpleState::new(0, vec![0]), Rational::from_ratio(1, 4))
            .unwrap();
        let pps = b.build().unwrap();
        let p = parser();
        let f = p.parse("B0{>=3/4} heads & !K0 heads").unwrap();
        let pt = pak_core::ids::Point {
            run: pak_core::ids::RunId(0),
            time: 0,
        };
        assert!(f.holds_at(&pps, pt));
    }

    #[test]
    fn error_positions_and_messages() {
        let p = parser();
        let err = p.parse("heads &").unwrap_err();
        assert!(err.message.contains("expected a formula"));
        let err = p.parse("mystery").unwrap_err();
        assert!(err.message.contains("unknown atom 'mystery'"));
        let err = p.parse("heads extra").unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = p.parse("B0{>=5/4} heads").unwrap_err();
        assert!(err.message.contains("not in [0, 1]"));
        let err = p.parse("B0{>= } heads").unwrap_err();
        assert!(err.message.contains("expected probability"));
        let err = p.parse("does(0 3)").unwrap_err();
        assert!(err.message.contains("','"));
        let err = p.parse("(heads").unwrap_err();
        assert!(err.message.contains("')'"));
    }

    #[test]
    fn keywords_do_not_swallow_identifiers() {
        let mut p = parser();
        p.atom("doesnt", StateFact::new("doesnt", |_: &SimpleState| true));
        p.atom("truex", StateFact::new("truex", |_: &SimpleState| true));
        assert!(p.parse("doesnt").is_ok());
        assert!(p.parse("truex").is_ok());
        assert!(p.parse("true").unwrap().to_string() == "⊤");
    }

    #[test]
    fn k_and_b_require_digit() {
        // 'K' followed by a non-digit is an identifier, not a modality.
        let mut p = parser();
        p.atom("Kind", StateFact::new("Kind", |_: &SimpleState| true));
        assert!(p.parse("Kind").is_ok());
    }

    #[test]
    fn whitespace_insensitive() {
        let p = parser();
        let a = p.parse("K0(heads&ok_2)").unwrap();
        let b = p.parse("  K0 ( heads & ok_2 )  ").unwrap();
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn debug_lists_atoms() {
        let p = parser();
        let s = format!("{p:?}");
        assert!(s.contains("heads") && s.contains("ok_2"));
    }
}
