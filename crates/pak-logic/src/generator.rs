//! Seeded random formula generation.
//!
//! The differential suites and the query benches need *many* formulas of
//! every shape — all twelve [`Formula`] constructors, nested to a bounded
//! depth — generated deterministically so failures replay from a seed.
//! [`random_formula`] mirrors `pak_protocol::generator::random_model`: a
//! [`SplitMix64`] stream drives the choice of constructor at every node,
//! and atoms are predicates over [`SimpleState`] (the state type the
//! random models produce).
//!
//! # Examples
//!
//! ```
//! use pak_logic::generator::{random_formula, RandomFormulaConfig};
//! use pak_num::Rational;
//!
//! let cfg = RandomFormulaConfig::default();
//! let f = random_formula::<Rational>(7, &cfg);
//! let again = random_formula::<Rational>(7, &cfg);
//! assert_eq!(f.to_string(), again.to_string()); // same seed, same formula
//! ```

use pak_core::fact::StateFact;
use pak_core::generator::SplitMix64;
use pak_core::ids::{ActionId, AgentId};
use pak_core::prob::Probability;
use pak_core::state::SimpleState;

use crate::formula::Formula;

/// Shape parameters for [`random_formula`]. Keep the value ranges in sync
/// with the `RandomModelConfig` used to build the system under test, so
/// that atoms and `does`/`K_i`/`B_i` operands actually discriminate
/// between its states.
#[derive(Debug, Clone)]
pub struct RandomFormulaConfig {
    /// Maximum nesting depth (0 generates only leaves).
    pub max_depth: u32,
    /// Agents referenced by `does`, `K_i` and `B_i^{≥p}`: `0..n_agents`.
    pub n_agents: u32,
    /// Actions referenced by `does`: `0..n_actions`.
    pub n_actions: u32,
    /// Environment atoms compare `env` against `0..env_values`.
    pub env_values: u64,
    /// Local atoms compare an agent's local against `0..local_values`.
    pub local_values: u64,
}

impl Default for RandomFormulaConfig {
    fn default() -> Self {
        RandomFormulaConfig {
            max_depth: 3,
            n_agents: 2,
            n_actions: 2,
            env_values: 3,
            local_values: 2,
        }
    }
}

/// Generates a deterministic pseudo-random formula from a seed.
///
/// Every constructor of the language can appear: leaves are `⊤`, `⊥`,
/// environment/local atoms and `does_i(α)`; interior nodes draw uniformly
/// from `¬ ∧ ∨ → K_i B_i^{≥p} ◇ □` until `max_depth` is exhausted.
/// Belief thresholds are `k/4` for `k ∈ 1..=4`, exactly representable in
/// both `Rational` and `f64` so sweeps over both types see the same
/// formulas.
pub fn random_formula<P: Probability>(
    seed: u64,
    cfg: &RandomFormulaConfig,
) -> Formula<SimpleState, P> {
    let mut rng = SplitMix64::new(seed ^ 0xf0e1_d2c3_b4a5_9687);
    gen(&mut rng, cfg, cfg.max_depth)
}

fn gen<P: Probability>(
    rng: &mut SplitMix64,
    cfg: &RandomFormulaConfig,
    depth: u32,
) -> Formula<SimpleState, P> {
    let agent = |rng: &mut SplitMix64| AgentId(rng.next_u64() as u32 % cfg.n_agents.max(1));
    if depth == 0 {
        return match rng.next_u64() % 5 {
            0 => Formula::True,
            1 => Formula::False,
            2 => {
                let v = rng.next_u64() % cfg.env_values.max(1);
                Formula::atom(StateFact::new(
                    format!("env={v}"),
                    move |g: &SimpleState| g.env == v,
                ))
            }
            3 => {
                let i = agent(rng);
                let v = rng.next_u64() % cfg.local_values.max(1);
                Formula::atom(StateFact::new(
                    format!("local{}={v}", i.0),
                    move |g: &SimpleState| g.locals.get(i.index()).copied().unwrap_or(0) == v,
                ))
            }
            _ => {
                let i = agent(rng);
                let a = ActionId(rng.next_u64() as u32 % cfg.n_actions.max(1));
                Formula::does(i, a)
            }
        };
    }
    match rng.next_u64() % 8 {
        0 => gen(rng, cfg, depth - 1).not(),
        1 => gen::<P>(rng, cfg, depth - 1).and(gen(rng, cfg, depth - 1)),
        2 => gen::<P>(rng, cfg, depth - 1).or(gen(rng, cfg, depth - 1)),
        3 => gen::<P>(rng, cfg, depth - 1).implies(gen(rng, cfg, depth - 1)),
        4 => Formula::knows(agent(rng), gen(rng, cfg, depth - 1)),
        5 => {
            let i = agent(rng);
            let k = 1 + rng.next_u64() % 4;
            Formula::believes_at_least(i, gen(rng, cfg, depth - 1), P::from_ratio(k, 4))
        }
        6 => gen(rng, cfg, depth - 1).eventually(),
        _ => gen(rng, cfg, depth - 1).always(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_num::Rational;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomFormulaConfig::default();
        for seed in 0..32 {
            let a = random_formula::<Rational>(seed, &cfg);
            let b = random_formula::<Rational>(seed, &cfg);
            assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn rational_and_f64_streams_agree_on_shape() {
        let cfg = RandomFormulaConfig::default();
        for seed in 0..32 {
            let a = random_formula::<Rational>(seed, &cfg);
            let b = random_formula::<f64>(seed, &cfg);
            // Thresholds are k/4 in both types; displays differ only in
            // number formatting, so compare structure via the parser-free
            // route: same constructor sequence implies same shape.
            assert_eq!(shape_string(&a), shape_string(&b));
        }
    }

    #[test]
    fn every_constructor_appears_across_seeds() {
        let cfg = RandomFormulaConfig::default();
        let mut seen = [false; 12];
        for seed in 0..256 {
            mark::<Rational>(&random_formula(seed, &cfg), &mut seen);
        }
        assert!(seen.iter().all(|&s| s), "constructor coverage: {seen:?}");
    }

    #[test]
    fn depth_zero_generates_leaves_only() {
        let cfg = RandomFormulaConfig {
            max_depth: 0,
            ..RandomFormulaConfig::default()
        };
        for seed in 0..64 {
            let f = random_formula::<Rational>(seed, &cfg);
            let mut seen = [false; 12];
            mark(&f, &mut seen);
            // Leaves are ⊤/⊥/atom/does (indices 0–2 and 7); no connective
            // or modality may appear at depth 0.
            assert!(!seen[3..7].iter().any(|&s| s) && !seen[8..12].iter().any(|&s| s));
        }
    }

    fn shape_string<P: Probability>(f: &Formula<SimpleState, P>) -> String {
        match f {
            Formula::True => "T".into(),
            Formula::False => "F".into(),
            Formula::Atom(a) => a.label(),
            Formula::Not(x) => format!("!{}", shape_string(x)),
            Formula::And(a, b) => format!("({}&{})", shape_string(a), shape_string(b)),
            Formula::Or(a, b) => format!("({}|{})", shape_string(a), shape_string(b)),
            Formula::Implies(a, b) => format!("({}>{})", shape_string(a), shape_string(b)),
            Formula::Does(i, a) => format!("does{}_{}", i.0, a.0),
            Formula::Knows(i, x) => format!("K{} {}", i.0, shape_string(x)),
            Formula::BelievesAtLeast(i, x, _) => format!("B{} {}", i.0, shape_string(x)),
            Formula::Eventually(x) => format!("<>{}", shape_string(x)),
            Formula::Always(x) => format!("[]{}", shape_string(x)),
        }
    }

    fn mark<P: Probability>(f: &Formula<SimpleState, P>, seen: &mut [bool; 12]) {
        match f {
            Formula::True => seen[0] = true,
            Formula::False => seen[1] = true,
            Formula::Atom(_) => seen[2] = true,
            Formula::Not(x) => {
                seen[3] = true;
                mark(x, seen);
            }
            Formula::And(a, b) => {
                seen[4] = true;
                mark(a, seen);
                mark(b, seen);
            }
            Formula::Or(a, b) => {
                seen[5] = true;
                mark(a, seen);
                mark(b, seen);
            }
            Formula::Implies(a, b) => {
                seen[6] = true;
                mark(a, seen);
                mark(b, seen);
            }
            Formula::Does(..) => seen[7] = true,
            Formula::Knows(_, x) => {
                seen[8] = true;
                mark(x, seen);
            }
            Formula::BelievesAtLeast(_, x, _) => {
                seen[9] = true;
                mark(x, seen);
            }
            Formula::Eventually(x) => {
                seen[10] = true;
                mark(x, seen);
            }
            Formula::Always(x) => {
                seen[11] = true;
                mark(x, seen);
            }
        }
    }
}
