//! The epistemic-probabilistic formula language.
//!
//! The paper works semantically with facts; the companion logic (Halpern's
//! *Reasoning about Uncertainty* \[23\], which the paper defers to) pairs
//! propositional connectives with knowledge and probabilistic-belief
//! modalities. [`Formula`] implements that language over a pps:
//!
//! ```text
//! ϕ ::= ⊤ | ⊥ | atom | ¬ϕ | ϕ ∧ ϕ | ϕ ∨ ϕ | ϕ → ϕ
//!     | does_i(α)                 (action occurrence, §2.3)
//!     | K_i ϕ                     (knowledge: truth in all indistinguishable points)
//!     | B_i^{≥p} ϕ                (probabilistic belief: β_i(ϕ) ≥ p, §3)
//!     | ◇ϕ | □ϕ                   (eventually / always within the run)
//! ```
//!
//! A formula implements [`Fact`], so it can appear anywhere the core
//! analyses expect a condition — including inside probabilistic
//! constraints and other formulas.

use std::fmt;
use std::sync::Arc;

use pak_core::belief::Beliefs;
use pak_core::fact::Fact;
use pak_core::ids::{ActionId, AgentId, Point};
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

/// A formula of the epistemic-probabilistic language.
///
/// Formulas are cheaply cloneable (atoms and subformulas are reference
/// counted).
///
/// # Examples
///
/// ```
/// use pak_logic::Formula;
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// // "Alice believes with degree ≥ 0.9 that Bob is firing."
/// let f: Formula<SimpleState, Rational> = Formula::believes_at_least(
///     AgentId(0),
///     Formula::does(AgentId(1), ActionId(1)),
///     Rational::from_ratio(9, 10),
/// );
/// assert_eq!(f.to_string(), "B_0^{≥9/10} does_1(action#1)");
/// ```
#[derive(Clone)]
pub enum Formula<G: GlobalState, P: Probability> {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// An atomic fact.
    Atom(Arc<dyn Fact<G, P> + Send + Sync>),
    /// Negation.
    Not(Arc<Formula<G, P>>),
    /// Conjunction.
    And(Arc<Formula<G, P>>, Arc<Formula<G, P>>),
    /// Disjunction.
    Or(Arc<Formula<G, P>>, Arc<Formula<G, P>>),
    /// Material implication.
    Implies(Arc<Formula<G, P>>, Arc<Formula<G, P>>),
    /// `does_i(α)`: the agent performs the action now.
    Does(AgentId, ActionId),
    /// `K_i ϕ`: agent `i` knows `ϕ`.
    Knows(AgentId, Arc<Formula<G, P>>),
    /// `B_i^{≥p} ϕ`: agent `i`'s degree of belief in `ϕ` is at least `p`.
    BelievesAtLeast(AgentId, Arc<Formula<G, P>>, P),
    /// `◇ϕ`: `ϕ` holds at some point (present or future) of the run.
    Eventually(Arc<Formula<G, P>>),
    /// `□ϕ`: `ϕ` holds at every point from now to the end of the run.
    Always(Arc<Formula<G, P>>),
}

impl<G: GlobalState, P: Probability> Formula<G, P> {
    /// Wraps a fact as an atomic formula.
    pub fn atom(fact: impl Fact<G, P> + Send + Sync + 'static) -> Self {
        Formula::Atom(Arc::new(fact))
    }

    /// `¬ϕ`.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // formula builder, deliberately named ¬
    pub fn not(self) -> Self {
        Formula::Not(Arc::new(self))
    }

    /// `ϕ ∧ ψ`.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        Formula::And(Arc::new(self), Arc::new(other))
    }

    /// `ϕ ∨ ψ`.
    #[must_use]
    pub fn or(self, other: Self) -> Self {
        Formula::Or(Arc::new(self), Arc::new(other))
    }

    /// `ϕ → ψ`.
    #[must_use]
    pub fn implies(self, other: Self) -> Self {
        Formula::Implies(Arc::new(self), Arc::new(other))
    }

    /// `does_i(α)`.
    #[must_use]
    pub fn does(agent: AgentId, action: ActionId) -> Self {
        Formula::Does(agent, action)
    }

    /// `K_i ϕ`.
    #[must_use]
    pub fn knows(agent: AgentId, inner: Self) -> Self {
        Formula::Knows(agent, Arc::new(inner))
    }

    /// `B_i^{≥p} ϕ`.
    #[must_use]
    pub fn believes_at_least(agent: AgentId, inner: Self, p: P) -> Self {
        Formula::BelievesAtLeast(agent, Arc::new(inner), p)
    }

    /// `◇ϕ`.
    #[must_use]
    pub fn eventually(self) -> Self {
        Formula::Eventually(Arc::new(self))
    }

    /// `□ϕ`.
    #[must_use]
    pub fn always(self) -> Self {
        Formula::Always(Arc::new(self))
    }

    /// Evaluates the formula at a point of a pps, as a Boolean.
    ///
    /// This is the two-valued view of [`Formula::eval_at`], which states
    /// the point-semantics contract: a formula has a truth value exactly
    /// at the *live* points of the system ([`Pps::is_live`]). At a dead
    /// point — the run does not exist, or ends before `point.time` —
    /// `holds_at` reports `false` *uniformly for every formula*, `⊤`
    /// included, matching the core convention for facts. Because the rule
    /// is uniform (both sides of any equivalence are `false` there), every
    /// propositional identity — De Morgan, material implication
    /// `a → b ≡ ¬a ∨ b`, double negation — holds pointwise at **every**
    /// point, dead or live. Never panics, for any point.
    #[must_use]
    pub fn holds_at(&self, pps: &Pps<G, P>, point: Point) -> bool {
        self.eval_at(pps, point) == Some(true)
    }

    /// Evaluates the formula at a point of a pps, three-valued.
    ///
    /// **The point-semantics contract.** Truth is defined exactly at the
    /// *live* points of the system ([`Pps::is_live`]): pairs `(r, t)`
    /// where run `r` exists and `t` is within its length — the set the
    /// paper's validity and measure notions quantify over. At a live
    /// point every connective and modality has its textbook meaning, and
    /// every quantifier inside the formula ranges over live points only:
    /// `K_i` over the agent's information cell (cells contain live points
    /// by construction), `B_i^{≥p}` over the conditional measure of the
    /// cell, `◇`/`□` over the remainder of the run. At a dead point there
    /// is no state, no cell and no belief, so there is no truth value:
    /// the result is `None` — for `⊤` and `⊥` as much as for any other
    /// formula — and evaluation never panics, even for out-of-range run
    /// ids.
    #[must_use]
    pub fn eval_at(&self, pps: &Pps<G, P>, point: Point) -> Option<bool> {
        if !pps.is_live(point) {
            return None;
        }
        // From here on `point` is live, and every point evaluation below
        // stays within live points, so plain `holds_at` recursion is exact.
        let value = match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(f) => f.holds(pps, point),
            Formula::Not(f) => !f.holds_at(pps, point),
            Formula::And(a, b) => a.holds_at(pps, point) && b.holds_at(pps, point),
            Formula::Or(a, b) => a.holds_at(pps, point) || b.holds_at(pps, point),
            Formula::Implies(a, b) => !a.holds_at(pps, point) || b.holds_at(pps, point),
            Formula::Does(agent, action) => pps.does(*agent, *action, point),
            Formula::Knows(agent, inner) => {
                let cell = pps.cell_at(*agent, point)?;
                let c = pps.cell(cell);
                pps.cell_points(c).all(|pt| inner.holds_at(pps, pt))
            }
            Formula::BelievesAtLeast(agent, inner, p) => {
                let fact = FormulaFact(inner.as_ref().clone());
                let belief = pps.belief(*agent, &fact, point)?;
                belief.at_least(p)
            }
            Formula::Eventually(inner) => {
                let len = pps.run_len(point.run) as u32;
                (point.time..len).any(|t| {
                    inner.holds_at(
                        pps,
                        Point {
                            run: point.run,
                            time: t,
                        },
                    )
                })
            }
            Formula::Always(inner) => {
                let len = pps.run_len(point.run) as u32;
                (point.time..len).all(|t| {
                    inner.holds_at(
                        pps,
                        Point {
                            run: point.run,
                            time: t,
                        },
                    )
                })
            }
        };
        Some(value)
    }
}

/// Adapter giving formulas the [`Fact`] interface (used internally for the
/// belief modality and externally to plug formulas into the core analyses).
pub struct FormulaFact<G: GlobalState, P: Probability>(pub Formula<G, P>);

impl<G: GlobalState, P: Probability> fmt::Debug for FormulaFact<G, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FormulaFact({})", self.0)
    }
}

impl<G: GlobalState, P: Probability> Fact<G, P> for FormulaFact<G, P> {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        self.0.holds_at(pps, point)
    }

    fn label(&self) -> String {
        self.0.to_string()
    }
}

impl<G: GlobalState, P: Probability> Fact<G, P> for Formula<G, P> {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        self.holds_at(pps, point)
    }

    fn label(&self) -> String {
        self.to_string()
    }
}

impl<G: GlobalState, P: Probability> fmt::Debug for Formula<G, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Formula({self})")
    }
}

impl<G: GlobalState, P: Probability> fmt::Display for Formula<G, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Atom(a) => write!(f, "{}", a.label()),
            Formula::Not(x) => write!(f, "¬{x}"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Implies(a, b) => write!(f, "({a} → {b})"),
            Formula::Does(i, act) => write!(f, "does_{}({act})", i.0),
            Formula::Knows(i, x) => write!(f, "K_{} {x}", i.0),
            Formula::BelievesAtLeast(i, x, p) => write!(f, "B_{}^{{≥{p}}} {x}", i.0),
            Formula::Eventually(x) => write!(f, "◇{x}"),
            Formula::Always(x) => write!(f, "□{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::StateFact;
    use pak_core::ids::RunId;
    use pak_core::pps::PpsBuilder;
    use pak_core::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    /// Two runs: hidden env bit, agent observes nothing at t=0, everything
    /// at t=1.
    fn reveal_system() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let h = b.initial(SimpleState::new(1, vec![0]), r(3, 4)).unwrap();
        let t = b.initial(SimpleState::new(0, vec![0]), r(1, 4)).unwrap();
        b.child(h, SimpleState::new(1, vec![1]), Rational::one(), &[])
            .unwrap();
        b.child(t, SimpleState::new(0, vec![2]), Rational::one(), &[])
            .unwrap();
        b.build().unwrap()
    }

    fn heads() -> Formula<SimpleState, Rational> {
        Formula::atom(StateFact::new("heads", |g: &SimpleState| g.env == 1))
    }

    #[test]
    fn propositional_connectives() {
        let pps = reveal_system();
        let pt = Point {
            run: RunId(0),
            time: 0,
        };
        assert!(Formula::<SimpleState, Rational>::True.holds_at(&pps, pt));
        assert!(!Formula::<SimpleState, Rational>::False.holds_at(&pps, pt));
        assert!(heads().holds_at(&pps, pt));
        assert!(!heads().not().holds_at(&pps, pt));
        assert!(heads().and(Formula::True).holds_at(&pps, pt));
        assert!(heads().or(Formula::False).holds_at(&pps, pt));
        assert!(Formula::False.implies(heads()).holds_at(&pps, pt));
    }

    #[test]
    fn knowledge_requires_indistinguishability() {
        let pps = reveal_system();
        let k_heads = Formula::knows(AgentId(0), heads());
        // At t=0 the agent cannot distinguish the two runs: no knowledge.
        assert!(!k_heads.holds_at(
            &pps,
            Point {
                run: RunId(0),
                time: 0
            }
        ));
        // At t=1 the observation reveals the bit: knowledge on the heads run.
        assert!(k_heads.holds_at(
            &pps,
            Point {
                run: RunId(0),
                time: 1
            }
        ));
        assert!(!k_heads.holds_at(
            &pps,
            Point {
                run: RunId(1),
                time: 1
            }
        ));
    }

    #[test]
    fn knowledge_implies_truth() {
        // The S5 axiom T on a concrete system: K_i ϕ → ϕ everywhere.
        let pps = reveal_system();
        let k = Formula::knows(AgentId(0), heads());
        let axiom_t = k.implies(heads());
        for pt in pps.points().collect::<Vec<_>>() {
            assert!(axiom_t.holds_at(&pps, pt));
        }
    }

    #[test]
    fn belief_modality_thresholds() {
        let pps = reveal_system();
        let pt0 = Point {
            run: RunId(0),
            time: 0,
        };
        // β(heads) = ¾ at time 0.
        assert!(Formula::believes_at_least(AgentId(0), heads(), r(3, 4)).holds_at(&pps, pt0));
        assert!(!Formula::believes_at_least(AgentId(0), heads(), r(4, 5)).holds_at(&pps, pt0));
        // After the reveal, belief is 1 or 0.
        let pt1 = Point {
            run: RunId(0),
            time: 1,
        };
        assert!(
            Formula::believes_at_least(AgentId(0), heads(), Rational::one()).holds_at(&pps, pt1)
        );
        let pt1t = Point {
            run: RunId(1),
            time: 1,
        };
        assert!(!Formula::believes_at_least(AgentId(0), heads(), r(1, 100)).holds_at(&pps, pt1t));
    }

    #[test]
    fn knowledge_implies_belief_one() {
        // K_i ϕ → B_i^{≥1} ϕ on a concrete system.
        let pps = reveal_system();
        let schema = Formula::knows(AgentId(0), heads()).implies(Formula::believes_at_least(
            AgentId(0),
            heads(),
            Rational::one(),
        ));
        for pt in pps.points().collect::<Vec<_>>() {
            assert!(schema.holds_at(&pps, pt));
        }
    }

    #[test]
    fn temporal_modalities() {
        let pps = reveal_system();
        let observed = Formula::atom(StateFact::new("observed", |g: &SimpleState| {
            g.locals[0] != 0
        }));
        let pt0 = Point {
            run: RunId(0),
            time: 0,
        };
        assert!(observed.clone().eventually().holds_at(&pps, pt0));
        assert!(!observed.clone().always().holds_at(&pps, pt0));
        let pt1 = Point {
            run: RunId(0),
            time: 1,
        };
        assert!(observed.always().holds_at(&pps, pt1));
        // heads is constant: always ↔ eventually at every point of run 0.
        assert!(heads().always().holds_at(&pps, pt0));
    }

    #[test]
    fn nested_belief_about_knowledge() {
        let pps = reveal_system();
        // "The agent believes with degree ≥ ¾ that it will eventually know
        // whether heads": at t=0 it is in fact certain of this.
        let will_know = Formula::knows(AgentId(0), heads())
            .or(Formula::knows(AgentId(0), heads().not()))
            .eventually();
        let f = Formula::believes_at_least(AgentId(0), will_know, Rational::one());
        assert!(f.holds_at(
            &pps,
            Point {
                run: RunId(0),
                time: 0
            }
        ));
    }

    #[test]
    fn beyond_run_end_fails_everything() {
        let pps = reveal_system();
        let beyond = Point {
            run: RunId(0),
            time: 42,
        };
        assert!(!Formula::<SimpleState, Rational>::True.holds_at(&pps, beyond));
        assert!(!heads().not().holds_at(&pps, beyond));
    }

    /// One formula per constructor of the language, exercising every
    /// evaluation arm.
    fn every_constructor() -> Vec<Formula<SimpleState, Rational>> {
        vec![
            Formula::True,
            Formula::False,
            heads(),
            heads().not(),
            heads().and(Formula::True),
            heads().or(Formula::False),
            Formula::True.implies(heads()),
            Formula::does(AgentId(0), ActionId(0)),
            Formula::knows(AgentId(0), heads()),
            Formula::believes_at_least(AgentId(0), heads(), r(1, 2)),
            heads().eventually(),
            heads().always(),
        ]
    }

    #[test]
    fn every_constructor_is_undefined_at_dead_points() {
        // The regression for the `BelievesAtLeast` panic path: at a dead
        // point every constructor (the belief and knowledge modalities
        // included) must return `None` from `eval_at` and `false` from
        // `holds_at`, never panic. Both kinds of dead point are covered:
        // past a run's end, and an out-of-range run id.
        let pps = reveal_system();
        let dead = [
            Point {
                run: RunId(0),
                time: 2,
            },
            Point {
                run: RunId(1),
                time: 42,
            },
            Point {
                run: RunId(99),
                time: 0,
            },
        ];
        for f in every_constructor() {
            for pt in dead {
                assert!(!pps.is_live(pt));
                assert_eq!(f.eval_at(&pps, pt), None, "{f} at {pt:?}");
                assert!(!f.holds_at(&pps, pt), "{f} at {pt:?}");
            }
        }
        // And at live points eval_at is two-valued, agreeing with holds_at.
        for f in every_constructor() {
            for pt in pps.points().collect::<Vec<_>>() {
                assert_eq!(f.eval_at(&pps, pt), Some(f.holds_at(&pps, pt)));
            }
        }
    }

    #[test]
    fn propositional_identities_hold_at_every_point() {
        // Material implication and De Morgan, pointwise — including dead
        // points, where the uniform-falsity rule makes both sides false.
        let pps = reveal_system();
        let k = Formula::knows(AgentId(0), heads());
        let pairs: Vec<(
            Formula<SimpleState, Rational>,
            Formula<SimpleState, Rational>,
        )> = vec![
            (heads().implies(k.clone()), heads().not().or(k.clone())),
            (
                Formula::True.implies(heads()),
                Formula::True.not().or(heads()),
            ),
            (
                heads().and(k.clone()).not(),
                heads().not().or(k.clone().not()),
            ),
            (
                heads().or(k.clone()).not(),
                heads().not().and(k.clone().not()),
            ),
            (heads().not().not(), heads()),
        ];
        let mut probe: Vec<Point> = pps.points().collect();
        probe.extend([
            Point {
                run: RunId(0),
                time: 7,
            },
            Point {
                run: RunId(5),
                time: 0,
            },
        ]);
        for (lhs, rhs) in pairs {
            for &pt in &probe {
                assert_eq!(
                    lhs.holds_at(&pps, pt),
                    rhs.holds_at(&pps, pt),
                    "{lhs} vs {rhs} at {pt:?}"
                );
                assert_eq!(lhs.eval_at(&pps, pt), rhs.eval_at(&pps, pt));
            }
        }
    }

    #[test]
    fn display_forms() {
        let f: Formula<SimpleState, Rational> =
            Formula::knows(AgentId(1), Formula::does(AgentId(0), ActionId(2)).not());
        assert_eq!(f.to_string(), "K_1 ¬does_0(action#2)");
        let b: Formula<SimpleState, Rational> =
            Formula::believes_at_least(AgentId(0), Formula::True, r(1, 2));
        assert_eq!(b.to_string(), "B_0^{≥1/2} ⊤");
        let t: Formula<SimpleState, Rational> = Formula::True.eventually().always();
        assert_eq!(t.to_string(), "□◇⊤");
    }

    #[test]
    fn formula_as_fact_in_core_analysis() {
        use pak_core::belief::ActionAnalysis;
        // Figure-1-like system with an action; use a formula as the
        // condition of an analysis.
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let g0 = b
            .initial(SimpleState::new(1, vec![0]), Rational::one())
            .unwrap();
        b.child(
            g0,
            SimpleState::new(1, vec![0]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        let pps = b.build().unwrap();
        let phi = heads();
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &phi).unwrap();
        assert!(a.constraint_probability().is_one());
    }
}
