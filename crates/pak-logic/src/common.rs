//! Probabilistic common belief (Monderer–Samet \[29\], Fagin–Halpern \[16\]).
//!
//! The paper's related-work section highlights *common p-belief* as the
//! probabilistic analogue of common knowledge: everyone `p`-believes `ϕ`,
//! everyone `p`-believes that everyone `p`-believes it, and so on. Formally
//! (Monderer–Samet), the *everyone-believes* operator is
//!
//! ```text
//! E_G^p(ϕ) = ⋀_{i ∈ G} B_i^{≥p}(ϕ)
//! ```
//!
//! and common `p`-belief `C_G^p(ϕ)` is the greatest fixpoint of
//! `X ↦ E_G^p(ϕ ∧ X)`. On a finite pps the fixpoint is reached by downward
//! iteration from the full point set, implemented here exactly.
//!
//! Coordinated attack connects back to the paper (§1): over a lossy
//! channel, common `p`-belief of "we attack" is unattainable for high `p`
//! at any finite round — the probabilistic face of the coordinated-attack
//! impossibility — which the tests demonstrate on concrete systems.

use std::collections::HashSet;

use pak_core::fact::Fact;
use pak_core::ids::{AgentId, Point};
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;

/// A set of points of a pps (a "proposition" in the semantic sense).
pub type PointSet = HashSet<Point>;

/// Computes the set of points where agent `agent` believes the *point set*
/// `target` with degree at least `p`: `µ(target-at-cell-time | ℓ) ≥ p`.
///
/// This is the semantic belief operator on arbitrary propositions (point
/// sets), generalising `β_i(ϕ) ≥ p` from facts to sets.
pub fn believes_set<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    p: &P,
    target: &PointSet,
) -> PointSet {
    let mut out = PointSet::new();
    for (cell_id, cell) in pps.agent_cells(agent) {
        // µ({r ∈ ℓ : (r, cell.time) ∈ target} | ℓ); the cell's run-set
        // is borrowed from the index, not cloned — conditioning only
        // reads it.
        let mut hit = pps.no_runs();
        for pt in pps.cell_points(cell) {
            if target.contains(&pt) {
                hit.insert(pt.run);
            }
        }
        let belief = pps
            .conditional(&hit, pps.cell_runs(cell_id))
            .expect("local states have positive measure");
        if belief.at_least(p) {
            out.extend(pps.cell_points(cell));
        }
    }
    out
}

/// The points where a fact holds, as a [`PointSet`].
pub fn fact_points<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    fact: &dyn Fact<G, P>,
) -> PointSet {
    pps.points().filter(|&pt| fact.holds(pps, pt)).collect()
}

/// `E_G^p`: the points where **every** agent in `group` believes `target`
/// with degree at least `p`.
pub fn everyone_believes<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    group: &[AgentId],
    p: &P,
    target: &PointSet,
) -> PointSet {
    let mut out: Option<PointSet> = None;
    for &agent in group {
        let b = believes_set(pps, agent, p, target);
        out = Some(match out {
            None => b,
            Some(acc) => acc.intersection(&b).copied().collect(),
        });
    }
    out.unwrap_or_default()
}

/// `C_G^p(ϕ)`: the points of common `p`-belief of `fact` among `group` —
/// the greatest fixpoint of `X ↦ E_G^p(ϕ-points ∩ X)`.
///
/// # Examples
///
/// ```
/// use pak_logic::common::{common_belief, fact_points};
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// // A public observation: both agents see the coin. Common 1-belief of
/// // "heads" holds exactly at the heads points.
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(2);
/// b.initial(SimpleState::new(1, vec![1, 1]), Rational::from_ratio(1, 2))?;
/// b.initial(SimpleState::new(0, vec![0, 0]), Rational::from_ratio(1, 2))?;
/// let pps = b.build()?;
/// let heads = StateFact::new("heads", |g: &SimpleState| g.env == 1);
/// let c = common_belief(&pps, &[AgentId(0), AgentId(1)], &Rational::one(), &heads);
/// assert_eq!(c.len(), 1);
/// # Ok::<(), PpsError>(())
/// ```
pub fn common_belief<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    group: &[AgentId],
    p: &P,
    fact: &dyn Fact<G, P>,
) -> PointSet {
    let phi = fact_points(pps, fact);
    // Downward iteration from the top.
    let mut current: PointSet = pps.points().collect();
    loop {
        let restricted: PointSet = phi.intersection(&current).copied().collect();
        let next = everyone_believes(pps, group, p, &restricted);
        if next == current {
            return current;
        }
        // The operator is monotone and we started at the top, so the
        // iterates decrease; termination is bounded by |Pts(T)|.
        debug_assert!(next.is_subset(&current));
        current = next;
    }
}

/// Convenience report of the common-belief iteration: the fixpoint together
/// with the number of iterations and the measure of time-`t` common-belief
/// runs for each time.
#[derive(Debug, Clone)]
pub struct CommonBeliefReport<P> {
    /// The fixpoint point set.
    pub points: PointSet,
    /// Iterations to convergence.
    pub iterations: usize,
    /// For each time `t` up to the horizon, `µ({r : (r, t) ∈ fixpoint})`.
    pub measure_by_time: Vec<P>,
}

/// Computes [`common_belief`] with diagnostics.
pub fn common_belief_report<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    group: &[AgentId],
    p: &P,
    fact: &dyn Fact<G, P>,
) -> CommonBeliefReport<P> {
    let phi = fact_points(pps, fact);
    let mut current: PointSet = pps.points().collect();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let restricted: PointSet = phi.intersection(&current).copied().collect();
        let next = everyone_believes(pps, group, p, &restricted);
        if next == current {
            break;
        }
        current = next;
    }
    let horizon = pps.horizon();
    let mut measure_by_time = Vec::with_capacity(horizon as usize + 1);
    for t in 0..=horizon {
        let mut ev = pps.no_runs();
        for &pt in &current {
            if pt.time == t {
                ev.insert(pt.run);
            }
        }
        measure_by_time.push(pps.measure(&ev));
    }
    CommonBeliefReport {
        points: current,
        iterations,
        measure_by_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::StateFact;
    use pak_core::ids::RunId;
    use pak_core::pps::PpsBuilder;
    use pak_core::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    /// Both agents publicly observe the coin.
    fn public_coin() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(2);
        b.initial(SimpleState::new(1, vec![1, 1]), r(1, 2)).unwrap();
        b.initial(SimpleState::new(0, vec![0, 0]), r(1, 2)).unwrap();
        b.build().unwrap()
    }

    /// Agent 0 observes the coin; agent 1 does not.
    fn private_coin() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(2);
        b.initial(SimpleState::new(1, vec![1, 0]), r(3, 4)).unwrap();
        b.initial(SimpleState::new(0, vec![0, 0]), r(1, 4)).unwrap();
        b.build().unwrap()
    }

    fn heads() -> StateFact<SimpleState> {
        StateFact::new("heads", |g: &SimpleState| g.env == 1)
    }

    #[test]
    fn public_event_gives_common_certainty() {
        let pps = public_coin();
        let both = [AgentId(0), AgentId(1)];
        let c = common_belief(&pps, &both, &Rational::one(), &heads());
        assert_eq!(c.len(), 1);
        assert!(c.contains(&Point {
            run: RunId(0),
            time: 0
        }));
    }

    #[test]
    fn private_signal_blocks_common_belief_above_prior() {
        let pps = private_coin();
        let both = [AgentId(0), AgentId(1)];
        // Agent 1's belief in heads is ¾ everywhere; agent 0 knows. Common
        // p-belief for p ≤ ¾ holds at the heads point; for p > ¾ nowhere.
        let c_low = common_belief(&pps, &both, &r(3, 4), &heads());
        assert!(c_low.contains(&Point {
            run: RunId(0),
            time: 0
        }));
        let c_high = common_belief(&pps, &both, &r(9, 10), &heads());
        assert!(c_high.is_empty());
    }

    #[test]
    fn single_agent_common_belief_is_plain_belief() {
        let pps = private_coin();
        let alone = [AgentId(1)];
        // For a single agent, C^p(ϕ) where ϕ is… subtle: the fixpoint of
        // B(ϕ ∧ X). For a time-0-only system with constant belief ¾ this
        // equals B^p(ϕ) points.
        let c = common_belief(&pps, &alone, &r(3, 4), &heads());
        // Agent 1 believes heads at ¾ at both points: both qualify after
        // intersecting with ϕ-points? ϕ∧X shrinks to heads points; belief in
        // the heads point set is ¾ ≥ ¾ at every point.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn common_belief_monotone_in_p() {
        let pps = private_coin();
        let both = [AgentId(0), AgentId(1)];
        let c1 = common_belief(&pps, &both, &r(1, 2), &heads());
        let c2 = common_belief(&pps, &both, &r(3, 4), &heads());
        let c3 = common_belief(&pps, &both, &Rational::one(), &heads());
        assert!(c2.is_subset(&c1));
        assert!(c3.is_subset(&c2));
    }

    #[test]
    fn believes_set_matches_belief_on_fact_points() {
        let pps = private_coin();
        let phi = fact_points(&pps, &heads());
        let b = believes_set(&pps, AgentId(1), &r(3, 4), &phi);
        // Agent 1 believes heads at ¾ everywhere.
        assert_eq!(b.len(), 2);
        let b_strict = believes_set(&pps, AgentId(1), &r(4, 5), &phi);
        assert!(b_strict.is_empty());
    }

    #[test]
    fn report_diagnostics() {
        let pps = public_coin();
        let rep = common_belief_report(&pps, &[AgentId(0), AgentId(1)], &Rational::one(), &heads());
        assert!(rep.iterations >= 1);
        assert_eq!(rep.measure_by_time.len(), 1);
        assert_eq!(rep.measure_by_time[0], r(1, 2));
    }

    #[test]
    fn empty_group_yields_empty() {
        let pps = public_coin();
        let c = common_belief(&pps, &[], &r(1, 2), &heads());
        assert!(c.is_empty());
    }
}
