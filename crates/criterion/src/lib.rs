//! A minimal, dependency-free, API-compatible subset of the `criterion`
//! benchmark harness.
//!
//! The workspace builds in offline environments where crates.io is not
//! reachable, so the real `criterion` cannot be used. This vendored shim
//! implements exactly the surface the `pak-bench` targets need —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`], [`Throughput`] — with a
//! simple adaptive timing loop, and
//! adds one extension the harness uses: [`Criterion::save_json`], which
//! dumps every recorded measurement as machine-readable JSON so performance
//! can be tracked across PRs.
//!
//! Timing model: each benchmark is warmed up for `warm_up_time`, then
//! `sample_size` samples are taken; every sample runs the closure for a
//! batch of iterations sized so the whole measurement phase fits in
//! `measurement_time`. The reported statistics are per-iteration
//! nanoseconds (median / mean / min / max over samples).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (accepted, recorded in JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always times one routine call at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSize {
    /// Inputs are cheap; large batches would be fine.
    #[default]
    SmallInput,
    /// Inputs are expensive to hold; prefer small batches.
    LargeInput,
    /// Construct exactly one input per routine call.
    PerIteration,
}

/// Identifier of a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch size chosen by the harness, recording the
    /// total elapsed wall-clock time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `routine` on a fresh input from `setup` each iteration,
    /// timing only the routine. This is how a benchmark excludes
    /// per-iteration preparation (cloning a handle, building an input
    /// buffer) from the reported cost. The timer starts after `setup`
    /// returns and stops before the routine's output is dropped, one
    /// routine call at a time, so `_size` is accepted purely for
    /// signature compatibility with the real crate.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            total += start.elapsed();
            drop(out);
        }
        self.elapsed = total;
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Per-iteration nanoseconds, one entry per sample.
    pub samples_ns: Vec<f64>,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Median per-iteration nanoseconds.
    #[must_use]
    pub fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let n = s.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    }

    /// Mean per-iteration nanoseconds.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }
}

/// The benchmark harness: collects measurements for every registered
/// benchmark and prints a summary.
#[derive(Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    filter: Option<String>,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            sample_size: 20,
            filter: None,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Switches to *quick* smoke-test timings: minimal warm-up, a short
    /// measurement window, and few samples. The numbers are too noisy to
    /// compare, but every benchmark body still executes — including the
    /// paper-vs-measured reproduction assertions — so CI can run the full
    /// bench matrix as a correctness smoke test in seconds.
    #[must_use]
    pub fn quick_mode(mut self) -> Self {
        self.warm_up_time = Duration::from_millis(10);
        self.measurement_time = Duration::from_millis(40);
        self.sample_size = 3;
        self
    }

    /// Applies command-line configuration. The shim understands a bare
    /// benchmark-name filter, a `--quick` flag (see [`Criterion::quick_mode`],
    /// also enabled by setting the `PAK_BENCH_QUICK` environment variable to
    /// anything but `0`), and ignores the flags Cargo passes to bench
    /// executables (`--bench`, `--test`, etc.).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        if std::env::var("PAK_BENCH_QUICK").is_ok_and(|v| v != "0") {
            self = self.quick_mode();
        }
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" => {}
                "--quick" => self = self.quick_mode(),
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = v;
                    }
                }
                s if s.starts_with('-') => {
                    // Unknown flag: skip its value too (if one follows), so
                    // the value is not mistaken for a benchmark-name filter.
                    if args.peek().is_some_and(|next| !next.starts_with('-')) {
                        args.next();
                    }
                }
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Registers and runs a single benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        self.run_one(id, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Prints the final summary table of every recorded measurement.
    pub fn final_summary(&mut self) {
        println!(
            "\n--- bench summary ({} benchmarks) ---",
            self.measurements.len()
        );
        for m in &self.measurements {
            println!(
                "{:<60} {:>14} median  {:>14} mean",
                m.id,
                fmt_ns(m.median_ns()),
                fmt_ns(m.mean_ns())
            );
        }
    }

    /// The recorded measurements, in registration order.
    #[must_use]
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Writes every recorded measurement as JSON to `path`.
    ///
    /// The format is a stable array of objects:
    /// `[{"id": "...", "median_ns": ..., "mean_ns": ..., "min_ns": ...,
    ///    "max_ns": ..., "samples": N, "throughput_elements": E?}, ...]`.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written (benchmark harness context, so
    /// failing loudly is preferable to silently dropping results).
    pub fn save_json(&self, path: &str) {
        let mut out = String::from("[\n");
        for (i, m) in self.measurements.iter().enumerate() {
            let min = m.samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
            let max = m.samples_ns.iter().copied().fold(0.0_f64, f64::max);
            let _ = write!(
                out,
                "  {{\"id\": {:?}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}",
                m.id,
                m.median_ns(),
                m.mean_ns(),
                if min.is_finite() { min } else { 0.0 },
                max,
                m.samples_ns.len(),
            );
            if let Some(Throughput::Elements(e)) = m.throughput {
                let _ = write!(out, ", \"throughput_elements\": {e}");
            }
            out.push_str(if i + 1 == self.measurements.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("]\n");
        std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: also yields a per-iteration time estimate.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX).max(1);
                per_iter = per_iter.max(Duration::from_nanos(1));
            }
            // Grow the batch until one call takes a meaningful slice of time.
            if b.elapsed < Duration::from_millis(1) && b.iters < (1 << 20) {
                b.iters *= 2;
            }
        }
        // Choose the batch so sample_size batches fill measurement_time.
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        let m = Measurement {
            id: id.clone(),
            samples_ns,
            throughput,
        };
        println!(
            "{:<60} {:>14}/iter (median of {} samples × {} iters)",
            id,
            fmt_ns(m.median_ns()),
            self.sample_size,
            iters
        );
        self.measurements.push(m);
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Registers and runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        let t = self.throughput;
        self.criterion.run_one(id, t, f);
        self
    }

    /// Registers and runs a benchmark taking a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        let t = self.throughput;
        self.criterion.run_one(id, t, |b| f(b, input));
        self
    }

    /// Closes the group (no-op; measurements are recorded eagerly).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shrinks_timing_budget() {
        let c = Criterion::default().quick_mode();
        assert!(c.warm_up_time <= Duration::from_millis(10));
        assert!(c.measurement_time <= Duration::from_millis(40));
        assert!(c.sample_size <= 3);
        // Quick runs still record real measurements.
        let mut c = c;
        c.bench_function("quick", |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(c.measurements().len(), 1);
        assert_eq!(c.measurements()[0].samples_ns.len(), 3);
    }

    #[test]
    fn bench_records_measurement() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns() >= 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(c.measurements()[0].id, "grp/f/7");
        assert_eq!(
            c.measurements()[0].throughput,
            Some(Throughput::Elements(4))
        );
    }

    #[test]
    fn iter_batched_excludes_setup_time() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].median_ns() >= 0.0);
    }

    #[test]
    fn json_output_shape() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        c.bench_function("j", |b| b.iter(|| black_box(0u8)));
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        let path = path.to_str().expect("utf8 temp path");
        c.save_json(path);
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.trim_start().starts_with('['));
        assert!(body.contains("\"median_ns\""));
        let _ = std::fs::remove_file(path);
    }
}
