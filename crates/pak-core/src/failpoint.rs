//! Deterministic, seed-driven fault injection for chaos testing.
//!
//! A *failpoint* is a named site in library code where a test can inject
//! a fault: a model-style error, a forced cancellation, or a panic
//! (simulating spurious worker death). Sites are compiled in
//! unconditionally but cost a single relaxed atomic load when no plan is
//! installed, so they are safe on hot paths.
//!
//! The registry is **process-global** (not thread-local) because the
//! primary consumer is `pak-server`, whose worker threads must observe
//! plans installed by a test thread. To keep runs deterministic:
//!
//! - [`install`] returns a [`FailGuard`] that holds a process-wide
//!   serialization lock for its lifetime, so two plans can never be
//!   active at once. Tests that interleave fault-free phases with
//!   injected phases should additionally serialize whole test bodies
//!   (integration-test binaries run `#[test]` fns concurrently).
//! - Faults fire on exact hit counts ([`FailPlan::fail_at`]) or fixed
//!   periods ([`FailPlan::fail_every`]); there is no randomness inside
//!   the registry. Seed-driven sweeps derive plans from seeds via
//!   [`FailPlan::from_seed`] so the full plan is a pure function of the
//!   seed.
//!
//! ## Sites
//!
//! The canonical site names (see [`SITES`]) and the fault semantics each
//! consumer documents:
//!
//! | site | location | `Error` | `Cancel` | `Panic` |
//! |---|---|---|---|---|
//! | `unfold.expand` | per fresh node expansion | bad-distribution error | cancelled error | panics |
//! | `extend.level` | `extend_horizon` level boundary | bad-distribution error | cancelled error | panics |
//! | `eval.subformula` | batched evaluator, per subformula (cancellable paths only) | cancelled error | cancelled error | panics |
//! | `cache.insert` | `PpsCache::insert` | insert silently skipped | insert silently skipped | panics |
//! | `server.worker` | `pak-server` worker, per request | no-op | cancels the request token | panics (worker survives via isolation) |

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Every named failpoint site in the workspace, for sweep-style tests.
pub const SITES: &[&str] = &[
    "unfold.expand",
    "extend.level",
    "eval.subformula",
    "cache.insert",
    "server.worker",
];

/// The kind of fault a site injects when its arm fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Surface a model-style error through the site's error path.
    Error,
    /// Force a cancellation through the site's cancellation path.
    Cancel,
    /// Panic at the site (simulates spurious worker death).
    Panic,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum When {
    /// Fire exactly once, on the `n`-th hit (0-based) of the site.
    AtHit(u64),
    /// Fire on every `n`-th hit: hits `n-1, 2n-1, 3n-1, …` (0-based).
    Every(u64),
}

#[derive(Debug, Clone)]
struct Arm {
    site: String,
    when: When,
    fault: Fault,
}

/// A deterministic fault-injection plan: a set of arms, each naming a
/// site, a firing schedule over that site's hit counter, and a fault.
///
/// Plans are inert until passed to [`install`].
#[derive(Debug, Clone, Default)]
pub struct FailPlan {
    arms: Vec<Arm>,
}

impl FailPlan {
    /// An empty plan (no arms fire).
    #[must_use]
    pub fn new() -> Self {
        FailPlan::default()
    }

    /// Adds an arm firing `fault` exactly once, on the `hit`-th time
    /// (0-based) execution reaches `site`.
    #[must_use]
    pub fn fail_at(mut self, site: &str, hit: u64, fault: Fault) -> Self {
        self.arms.push(Arm {
            site: site.to_owned(),
            when: When::AtHit(hit),
            fault,
        });
        self
    }

    /// Adds an arm firing `fault` on every `period`-th hit of `site`
    /// (the `period-1`-th, `2·period-1`-th, … hits, 0-based). A period
    /// of zero never fires.
    #[must_use]
    pub fn fail_every(mut self, site: &str, period: u64, fault: Fault) -> Self {
        self.arms.push(Arm {
            site: site.to_owned(),
            when: When::Every(period),
            fault,
        });
        self
    }

    /// Derives a single-arm plan for `site` as a pure function of
    /// `seed`: the hit index is drawn from `0..8` and the fault cycles
    /// through `Error`/`Cancel`/`Panic`. Sweeping many seeds therefore
    /// covers early, mid, and late hits with every fault kind.
    ///
    /// Callers that cannot tolerate panics (direct handle-level tests
    /// with no isolation boundary) should use
    /// [`FailPlan::from_seed_no_panic`] instead.
    #[must_use]
    pub fn from_seed(site: &str, seed: u64) -> Self {
        let mix = splitmix(seed);
        let hit = mix % 8;
        let fault = match (mix >> 8) % 3 {
            0 => Fault::Error,
            1 => Fault::Cancel,
            _ => Fault::Panic,
        };
        FailPlan::new().fail_at(site, hit, fault)
    }

    /// As [`FailPlan::from_seed`], but the fault alternates only between
    /// `Error` and `Cancel`.
    #[must_use]
    pub fn from_seed_no_panic(site: &str, seed: u64) -> Self {
        let mix = splitmix(seed);
        let hit = mix % 8;
        let fault = if (mix >> 8).is_multiple_of(2) {
            Fault::Error
        } else {
            Fault::Cancel
        };
        FailPlan::new().fail_at(site, hit, fault)
    }
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct Active {
    plan: FailPlan,
    hits: HashMap<String, u64>,
    fired: HashMap<String, u64>,
}

static ANY_ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Active>> {
    static REGISTRY: OnceLock<Mutex<Option<Active>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

fn serializer() -> &'static Mutex<()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL.get_or_init(|| Mutex::new(()))
}

fn lock_registry() -> MutexGuard<'static, Option<Active>> {
    // An injected panic can poison these locks (the panic unwinds
    // through frames that held them transitively in the test harness);
    // the data is always left consistent, so poison is ignored.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// An RAII guard keeping a [`FailPlan`] installed. Dropping it clears
/// the plan and releases the process-wide serialization lock.
///
/// The guard is not `Send`; it must be dropped on the installing thread.
#[derive(Debug)]
pub struct FailGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        *lock_registry() = None;
        ANY_ACTIVE.store(false, Ordering::Release);
    }
}

/// Installs `plan` as the process's active fault-injection plan,
/// resetting all hit counters. Blocks until any previously installed
/// plan's [`FailGuard`] is dropped.
#[must_use]
pub fn install(plan: FailPlan) -> FailGuard {
    let serial = serializer().lock().unwrap_or_else(PoisonError::into_inner);
    *lock_registry() = Some(Active {
        plan,
        hits: HashMap::new(),
        fired: HashMap::new(),
    });
    ANY_ACTIVE.store(true, Ordering::Release);
    FailGuard { _serial: serial }
}

/// Records a hit on `site` and returns the fault to inject, if any arm
/// fires on this hit. The no-plan fast path is one relaxed atomic load.
///
/// Library code calls this at its named sites; it never panics itself —
/// the *caller* converts [`Fault::Panic`] into a panic so the panic
/// message names the site.
#[must_use]
pub fn check(site: &str) -> Option<Fault> {
    if !ANY_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let mut guard = lock_registry();
    let active = guard.as_mut()?;
    let hit = active.hits.entry(site.to_owned()).or_insert(0);
    let n = *hit;
    *hit += 1;
    let fault = active.plan.arms.iter().find_map(|arm| {
        if arm.site != site {
            return None;
        }
        let fires = match arm.when {
            When::AtHit(h) => n == h,
            When::Every(0) => false,
            When::Every(p) => (n + 1) % p == 0,
        };
        fires.then_some(arm.fault)
    });
    if fault.is_some() {
        *active.fired.entry(site.to_owned()).or_insert(0) += 1;
    }
    fault
}

/// Total hits recorded on `site` under the currently installed plan
/// (zero when no plan is installed).
#[must_use]
pub fn hits(site: &str) -> u64 {
    lock_registry()
        .as_ref()
        .and_then(|a| a.hits.get(site).copied())
        .unwrap_or(0)
}

/// Number of times an arm actually fired on `site` under the currently
/// installed plan (zero when no plan is installed).
#[must_use]
pub fn fired(site: &str) -> u64 {
    lock_registry()
        .as_ref()
        .and_then(|a| a.fired.get(site).copied())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_plan() {
        // Hold the serializer so no sibling test has a plan installed.
        let _s = serializer().lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(check("unfold.expand"), None);
        assert_eq!(hits("unfold.expand"), 0);
    }

    #[test]
    fn at_hit_fires_once_and_counts() {
        let _g = install(FailPlan::new().fail_at("extend.level", 2, Fault::Error));
        assert_eq!(check("extend.level"), None);
        assert_eq!(check("extend.level"), None);
        assert_eq!(check("extend.level"), Some(Fault::Error));
        assert_eq!(check("extend.level"), None);
        assert_eq!(hits("extend.level"), 4);
        assert_eq!(fired("extend.level"), 1);
        assert_eq!(check("eval.subformula"), None);
    }

    #[test]
    fn every_fires_periodically() {
        let _g = install(FailPlan::new().fail_every("cache.insert", 3, Fault::Cancel));
        let pattern: Vec<bool> = (0..9).map(|_| check("cache.insert").is_some()).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(fired("cache.insert"), 3);
    }

    #[test]
    fn guard_drop_clears_plan() {
        {
            let _g = install(FailPlan::new().fail_at("server.worker", 0, Fault::Panic));
            assert_eq!(check("server.worker"), Some(Fault::Panic));
        }
        assert_eq!(check("server.worker"), None);
    }

    #[test]
    fn seed_derivation_is_pure() {
        for seed in 0..64 {
            let a = FailPlan::from_seed("unfold.expand", seed);
            let b = FailPlan::from_seed("unfold.expand", seed);
            assert_eq!(a.arms.len(), 1);
            assert_eq!(a.arms[0].when, b.arms[0].when);
            assert_eq!(a.arms[0].fault, b.arms[0].fault);
        }
        let faults: std::collections::HashSet<Fault> = (0..64)
            .map(|s| FailPlan::from_seed("x", s).arms[0].fault)
            .collect();
        assert_eq!(faults.len(), 3, "seed sweep covers all fault kinds");
        let no_panic =
            (0..64).all(|s| FailPlan::from_seed_no_panic("x", s).arms[0].fault != Fault::Panic);
        assert!(no_panic);
    }
}
