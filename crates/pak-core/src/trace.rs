//! Belief dynamics: how `β_i(ϕ)` evolves along runs.
//!
//! The paper analyses beliefs at single action points; for protocol design
//! it is equally useful to watch the whole posterior trajectory — e.g.
//! Alice's belief in `ϕ_both` rising and falling as messages arrive or are
//! lost. A [`BeliefTrace`] records, for one run, the agent's belief in a
//! fact at every time, and the module computes aggregate views (the
//! expected trajectory, per-time extremes).
//!
//! Because beliefs are posteriors conditioned on local states, traces are
//! **martingale-like**: the expected belief at time `t+1` given the state
//! at `t` equals the belief at `t` (the tower rule / Jeffrey
//! conditionalisation the paper's §6.1 discusses). The test suite checks
//! this exactly.

use crate::belief::Beliefs;
use crate::fact::Fact;
use crate::ids::{AgentId, Point, RunId, Time};
use crate::pps::Pps;
use crate::prob::Probability;
use crate::state::GlobalState;

/// The belief trajectory of one agent, about one fact, along one run.
#[derive(Debug, Clone)]
pub struct BeliefTrace<P> {
    /// The run traced.
    pub run: RunId,
    /// `values[t]` is `β_i(ϕ)` at `(run, t)`.
    pub values: Vec<P>,
}

impl<P: Probability> BeliefTrace<P> {
    /// Computes the trace of `agent`'s belief in `fact` along `run`.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    pub fn compute<G: GlobalState>(
        pps: &Pps<G, P>,
        agent: AgentId,
        fact: &dyn Fact<G, P>,
        run: RunId,
    ) -> Self {
        let values = (0..pps.run_len(run) as Time)
            .map(|time| {
                pps.belief(agent, fact, Point { run, time })
                    .expect("time within run")
            })
            .collect();
        BeliefTrace { run, values }
    }

    /// The net change from the first to the last value.
    #[must_use]
    pub fn drift(&self) -> P {
        match (self.values.first(), self.values.last()) {
            (Some(first), Some(last)) => last.sub(first),
            _ => P::zero(),
        }
    }

    /// Whether the trace ever reaches certainty (belief 1) or refutation
    /// (belief 0).
    #[must_use]
    pub fn resolves(&self) -> bool {
        self.values.iter().any(|v| v.is_one() || v.is_zero())
    }
}

/// Per-time aggregate of all runs' beliefs: the expected trajectory and the
/// pointwise extremes.
#[derive(Debug, Clone)]
pub struct BeliefEnvelope<P> {
    /// `expected[t] = E_µ[β_i(ϕ) at time t]` over runs of length > `t`.
    pub expected: Vec<P>,
    /// Pointwise minimum belief at each time.
    pub min: Vec<P>,
    /// Pointwise maximum belief at each time.
    pub max: Vec<P>,
}

/// Computes the [`BeliefEnvelope`] of `agent`'s belief in `fact` over the
/// whole system.
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
/// use pak_core::trace::belief_envelope;
/// use pak_num::Rational;
///
/// // Hidden coin revealed at time 1.
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
/// let h = b.initial(SimpleState::new(1, vec![0]), Rational::from_ratio(1, 2))?;
/// let t = b.initial(SimpleState::new(0, vec![0]), Rational::from_ratio(1, 2))?;
/// b.child(h, SimpleState::new(1, vec![1]), Rational::one(), &[])?;
/// b.child(t, SimpleState::new(0, vec![2]), Rational::one(), &[])?;
/// let pps = b.build()?;
///
/// let heads = StateFact::new("heads", |g: &SimpleState| g.env == 1);
/// let env = belief_envelope(&pps, AgentId(0), &heads);
/// // The expected belief is constant (martingale): ½ before and after.
/// assert_eq!(env.expected, vec![Rational::from_ratio(1, 2); 2]);
/// // But the envelope opens up: after the reveal, beliefs are 0 or 1.
/// assert!(env.min[1].is_zero() && env.max[1].is_one());
/// # Ok::<(), PpsError>(())
/// ```
pub fn belief_envelope<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    fact: &dyn Fact<G, P>,
) -> BeliefEnvelope<P> {
    let horizon = pps.horizon();
    let mut expected = Vec::with_capacity(horizon as usize + 1);
    let mut min = Vec::with_capacity(horizon as usize + 1);
    let mut max = Vec::with_capacity(horizon as usize + 1);
    for t in 0..=horizon {
        let mut weighted = P::zero();
        let mut mass = P::zero();
        let mut lo: Option<P> = None;
        let mut hi: Option<P> = None;
        for run in pps.run_ids() {
            if (t as usize) >= pps.run_len(run) {
                continue;
            }
            let b = pps
                .belief(agent, fact, Point { run, time: t })
                .expect("time within run");
            let p = pps.run_probability(run);
            weighted.add_assign(&p.mul(&b));
            mass.add_assign(p);
            lo = Some(match lo {
                None => b.clone(),
                Some(cur) => {
                    if cur.at_least(&b) {
                        b.clone()
                    } else {
                        cur
                    }
                }
            });
            hi = Some(match hi {
                None => b,
                Some(cur) => {
                    if b.at_least(&cur) {
                        b
                    } else {
                        cur
                    }
                }
            });
        }
        expected.push(weighted.div(&mass));
        min.push(lo.expect("some run reaches every time ≤ horizon"));
        max.push(hi.expect("some run reaches every time ≤ horizon"));
    }
    BeliefEnvelope { expected, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::StateFact;
    use crate::pps::PpsBuilder;
    use crate::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    /// A two-round reveal: at t=1 the agent learns a noisy signal; at t=2
    /// the truth.
    fn gradual_reveal() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        // env 1 ("true") w.p. 2/3.
        let yes = b.initial(SimpleState::new(1, vec![0]), r(2, 3)).unwrap();
        let no = b.initial(SimpleState::new(0, vec![0]), r(1, 3)).unwrap();
        // Signal correct w.p. 3/4 (local 1 = "looks true", 2 = "looks false").
        let y_t = b
            .child(yes, SimpleState::new(1, vec![1]), r(3, 4), &[])
            .unwrap();
        let y_f = b
            .child(yes, SimpleState::new(1, vec![2]), r(1, 4), &[])
            .unwrap();
        let n_t = b
            .child(no, SimpleState::new(0, vec![1]), r(1, 4), &[])
            .unwrap();
        let n_f = b
            .child(no, SimpleState::new(0, vec![2]), r(3, 4), &[])
            .unwrap();
        // Full reveal at t=2 (local = 10 + truth).
        for (node, env) in [(y_t, 1u64), (y_f, 1), (n_t, 0), (n_f, 0)] {
            b.child(
                node,
                SimpleState::new(env, vec![10 + env]),
                Rational::one(),
                &[],
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn truth() -> StateFact<SimpleState> {
        StateFact::new("true", |g: &SimpleState| g.env == 1)
    }

    #[test]
    fn trace_values_follow_bayes() {
        let pps = gradual_reveal();
        // Run 0: env=1, signal "looks true", revealed.
        let trace = BeliefTrace::compute(&pps, AgentId(0), &truth(), RunId(0));
        // t=0: prior 2/3. t=1: posterior given "looks true" =
        // (2/3·3/4)/(2/3·3/4 + 1/3·1/4) = 6/7. t=2: certainty.
        assert_eq!(trace.values, vec![r(2, 3), r(6, 7), Rational::one()]);
        assert!(trace.resolves());
        assert_eq!(trace.drift(), r(1, 3));
    }

    #[test]
    fn negative_signal_trace() {
        let pps = gradual_reveal();
        // Run 1: env=1 but signal "looks false".
        let trace = BeliefTrace::compute(&pps, AgentId(0), &truth(), RunId(1));
        // Posterior given "looks false" = (2/3·1/4)/(2/3·1/4 + 1/3·3/4) = 2/5.
        assert_eq!(trace.values, vec![r(2, 3), r(2, 5), Rational::one()]);
    }

    #[test]
    fn expected_trajectory_is_martingale() {
        // The tower rule: E[β at t] is constant in t (= the prior).
        let pps = gradual_reveal();
        let env = belief_envelope(&pps, AgentId(0), &truth());
        assert_eq!(env.expected, vec![r(2, 3); 3]);
    }

    #[test]
    fn envelope_opens_with_information() {
        let pps = gradual_reveal();
        let env = belief_envelope(&pps, AgentId(0), &truth());
        // Width grows: 0 at t=0 (single cell), wider at t=1, full at t=2.
        let width: Vec<Rational> = env.max.iter().zip(&env.min).map(|(h, l)| h - l).collect();
        assert_eq!(width[0], Rational::zero());
        assert_eq!(width[1], r(6, 7) - r(2, 5));
        assert_eq!(width[2], Rational::one());
    }

    #[test]
    fn constant_fact_constant_trace() {
        let pps = gradual_reveal();
        let top = crate::fact::TrueFact;
        for run in pps.run_ids() {
            let trace = BeliefTrace::compute(&pps, AgentId(0), &top, run);
            assert!(trace.values.iter().all(Rational::is_one));
            assert_eq!(trace.drift(), Rational::zero());
        }
    }
}
