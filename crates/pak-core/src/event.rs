//! Run events: measurable subsets of `R_T`.
//!
//! In a finite pps every subset of runs is measurable (§2.1 of the paper), so
//! an *event* is simply a set of runs. [`RunSet`] is a compact bitset over
//! run indices supporting the boolean algebra the analyses need.

use core::fmt;

use crate::ids::RunId;

/// A set of runs of a pps, i.e. an event in the probability space `X_T`.
///
/// # Examples
///
/// ```
/// use pak_core::event::RunSet;
/// use pak_core::ids::RunId;
///
/// let mut a = RunSet::empty(8);
/// a.insert(RunId(1));
/// a.insert(RunId(3));
/// let b = RunSet::full(8);
/// assert_eq!(a.intersection(&b), a);
/// assert_eq!(a.complement().len(), 6);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RunSet {
    /// Number of runs in the universe `R_T`.
    universe: usize,
    /// Bit blocks, little-endian; bits beyond `universe` are always zero.
    blocks: Vec<u64>,
}

impl RunSet {
    /// The empty event over a universe of `universe` runs.
    #[must_use]
    pub fn empty(universe: usize) -> Self {
        RunSet {
            universe,
            blocks: vec![0; universe.div_ceil(64)],
        }
    }

    /// The full event `R_T` over a universe of `universe` runs.
    #[must_use]
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        s.trim();
        s
    }

    /// Builds an event from the runs selected by a predicate.
    #[must_use]
    pub fn from_predicate(universe: usize, mut pred: impl FnMut(RunId) -> bool) -> Self {
        let mut s = Self::empty(universe);
        for i in 0..universe {
            let run = RunId(i as u32);
            if pred(run) {
                s.insert(run);
            }
        }
        s
    }

    /// Clears any bits beyond the universe size.
    fn trim(&mut self) {
        let rem = self.universe % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// The number of runs in the universe (not the event).
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The number of runs in the event.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// The bytes this event occupies: the struct plus its bit blocks.
    /// Feeds [`Pps::memory_footprint`](crate::pps::Pps::memory_footprint).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.blocks.len() * std::mem::size_of::<u64>()
    }

    /// Returns `true` if the event contains no runs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Adds a run to the event.
    ///
    /// # Panics
    ///
    /// Panics if `run` is outside the universe.
    pub fn insert(&mut self, run: RunId) {
        let i = run.index();
        assert!(
            i < self.universe,
            "run {run} outside universe {}",
            self.universe
        );
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Adds every run in the half-open index range `range` to the event,
    /// one whole 64-bit block at a time.
    ///
    /// The pps build pass relies on this: the runs through a tree node form
    /// a contiguous interval in DFS order, so filling a cell's run-set
    /// costs O(words covered) instead of one [`RunSet::insert`] per run.
    ///
    /// # Panics
    ///
    /// Panics if the range is decreasing or reaches outside the universe.
    pub fn insert_range(&mut self, range: core::ops::Range<usize>) {
        let (lo, hi) = (range.start, range.end);
        assert!(
            lo <= hi && hi <= self.universe,
            "range {lo}..{hi} outside universe {}",
            self.universe
        );
        if lo == hi {
            return;
        }
        // Masks select the bits ≥ lo in the first word and ≤ hi − 1 in the
        // last; every word strictly between is filled whole.
        let (first_word, first_bit) = (lo / 64, lo % 64);
        let (last_word, last_bit) = ((hi - 1) / 64, (hi - 1) % 64);
        let lo_mask = u64::MAX << first_bit;
        let hi_mask = u64::MAX >> (63 - last_bit);
        if first_word == last_word {
            self.blocks[first_word] |= lo_mask & hi_mask;
        } else {
            self.blocks[first_word] |= lo_mask;
            for block in &mut self.blocks[first_word + 1..last_word] {
                *block = u64::MAX;
            }
            self.blocks[last_word] |= hi_mask;
        }
    }

    /// Resets the event to empty over a (possibly different) universe,
    /// reusing the block allocation. Equivalent to `*self =
    /// RunSet::empty(universe)` without the round-trip through the
    /// allocator — the incremental extension repair resets every retained
    /// cell's run-set each level, where that round-trip adds up.
    pub fn reset(&mut self, universe: usize) {
        self.universe = universe;
        self.blocks.clear();
        self.blocks.resize(universe.div_ceil(64), 0);
    }

    /// Removes a run from the event.
    pub fn remove(&mut self, run: RunId) {
        let i = run.index();
        if i < self.universe {
            self.blocks[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Returns `true` if the event contains `run`.
    #[must_use]
    pub fn contains(&self, run: RunId) -> bool {
        let i = run.index();
        i < self.universe && (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set intersection (conjunction of events).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// Set union (disjunction of events).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn difference(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & !b)
    }

    /// In-place union: `self ∪= other`. The allocation-free companion of
    /// [`RunSet::union`] for accumulation loops (e.g. OR-ing cell run-sets
    /// into a verdict event).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Complement within the universe (negation of the event).
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut out = RunSet {
            universe: self.universe,
            blocks: self.blocks.iter().map(|b| !b).collect(),
        };
        out.trim();
        out
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the events share no runs.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        RunSet {
            universe: self.universe,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Iterates over the runs in the event in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = RunId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            core::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let bit = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(RunId((bi * 64 + bit) as u32))
                }
            })
        })
    }

    /// Iterates over `self ∩ other` without materialising the
    /// intersection — the measure-of-intersection hot path uses this to
    /// stay allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn iter_and<'a>(&'a self, other: &'a Self) -> impl Iterator<Item = RunId> + 'a {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .enumerate()
            .flat_map(|(bi, (&x, &y))| {
                let mut b = x & y;
                core::iter::from_fn(move || {
                    if b == 0 {
                        None
                    } else {
                        let bit = b.trailing_zeros() as usize;
                        b &= b - 1;
                        Some(RunId((bi * 64 + bit) as u32))
                    }
                })
            })
    }
}

impl fmt::Debug for RunSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RunSet{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", r.0)?;
        }
        write!(f, "}} of {}", self.universe)
    }
}

impl FromIterator<RunId> for RunSet {
    /// Collects runs into a set whose universe is the largest index + 1.
    ///
    /// Prefer [`RunSet::empty`] + [`RunSet::insert`] when the universe size
    /// is known (which it always is, from the pps).
    fn from_iter<T: IntoIterator<Item = RunId>>(iter: T) -> Self {
        let runs: Vec<RunId> = iter.into_iter().collect();
        let universe = runs.iter().map(|r| r.index() + 1).max().unwrap_or(0);
        let mut s = RunSet::empty(universe);
        for r in runs {
            s.insert(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(universe: usize, runs: &[u32]) -> RunSet {
        let mut s = RunSet::empty(universe);
        for &r in runs {
            s.insert(RunId(r));
        }
        s
    }

    #[test]
    fn union_with_matches_union() {
        let a0 = set(130, &[0, 63, 64, 129]);
        let b = set(130, &[1, 63, 100]);
        let mut a = a0.clone();
        a.union_with(&b);
        assert_eq!(a, a0.union(&b));
        let mut e = RunSet::empty(0);
        e.union_with(&RunSet::empty(0));
        assert_eq!(e, RunSet::empty(0));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn union_with_rejects_universe_mismatch() {
        let mut a = set(10, &[1]);
        a.union_with(&set(11, &[1]));
    }

    #[test]
    fn empty_and_full() {
        assert!(RunSet::empty(10).is_empty());
        assert_eq!(RunSet::full(10).len(), 10);
        assert_eq!(RunSet::full(0).len(), 0);
        assert_eq!(RunSet::full(64).len(), 64);
        assert_eq!(RunSet::full(65).len(), 65);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = RunSet::empty(100);
        s.insert(RunId(63));
        s.insert(RunId(64));
        assert!(s.contains(RunId(63)));
        assert!(s.contains(RunId(64)));
        assert!(!s.contains(RunId(65)));
        s.remove(RunId(63));
        assert!(!s.contains(RunId(63)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        RunSet::empty(5).insert(RunId(5));
    }

    #[test]
    fn reset_equals_fresh_empty() {
        // Shrinking, growing, and same-size resets all leave the set
        // indistinguishable from a freshly allocated empty one.
        let mut s = set(100, &[0, 63, 64, 99]);
        for universe in [100usize, 3, 0, 64, 65, 200, 1] {
            s.reset(universe);
            assert_eq!(s, RunSet::empty(universe), "universe {universe}");
            if universe > 0 {
                s.insert(RunId(universe as u32 - 1));
                assert_eq!(s.len(), 1);
            }
        }
    }

    /// Bit-by-bit reference for [`RunSet::insert_range`].
    fn insert_range_reference(s: &mut RunSet, range: core::ops::Range<usize>) {
        for i in range {
            s.insert(RunId(i as u32));
        }
    }

    #[test]
    fn insert_range_matches_bit_by_bit_reference() {
        // Sweep every (lo, hi) pair over universes straddling one, two, and
        // three words, on top of a non-empty starting set (ranges must OR
        // into existing bits, not overwrite them).
        for universe in [0usize, 1, 5, 63, 64, 65, 127, 128, 130, 192] {
            let mut base = RunSet::empty(universe);
            for i in (0..universe).step_by(7) {
                base.insert(RunId(i as u32));
            }
            for lo in 0..=universe {
                for hi in lo..=universe {
                    let mut fast = base.clone();
                    fast.insert_range(lo..hi);
                    let mut slow = base.clone();
                    insert_range_reference(&mut slow, lo..hi);
                    assert_eq!(fast, slow, "universe {universe}, range {lo}..{hi}");
                    assert_eq!(fast.len(), slow.len());
                }
            }
        }
    }

    #[test]
    fn insert_range_word_boundaries_and_extremes() {
        // Exact word-boundary ranges.
        let mut s = RunSet::empty(192);
        s.insert_range(64..128);
        assert_eq!(s.len(), 64);
        assert!(!s.contains(RunId(63)) && s.contains(RunId(64)));
        assert!(s.contains(RunId(127)) && !s.contains(RunId(128)));
        // The empty range is a no-op anywhere, including at the end.
        let mut e = RunSet::empty(70);
        e.insert_range(0..0);
        e.insert_range(70..70);
        assert!(e.is_empty());
        // The full range equals RunSet::full.
        let mut f = RunSet::empty(130);
        f.insert_range(0..130);
        assert_eq!(f, RunSet::full(130));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_range_past_universe_panics() {
        RunSet::empty(10).insert_range(5..11);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    #[allow(clippy::reversed_empty_ranges)] // the rejection under test
    fn insert_range_decreasing_panics() {
        RunSet::empty(10).insert_range(5..4);
    }

    #[test]
    fn boolean_algebra() {
        let a = set(10, &[1, 2, 3]);
        let b = set(10, &[3, 4]);
        assert_eq!(a.intersection(&b), set(10, &[3]));
        assert_eq!(a.union(&b), set(10, &[1, 2, 3, 4]));
        assert_eq!(a.difference(&b), set(10, &[1, 2]));
        assert_eq!(a.complement(), set(10, &[0, 4, 5, 6, 7, 8, 9]));
    }

    #[test]
    fn de_morgan_law() {
        let a = set(70, &[0, 10, 65]);
        let b = set(70, &[10, 66]);
        assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
    }

    #[test]
    fn subset_and_disjoint() {
        let a = set(10, &[1, 2]);
        let b = set(10, &[1, 2, 3]);
        let c = set(10, &[4]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(RunSet::empty(10).is_subset(&a));
    }

    #[test]
    fn iteration_in_order() {
        let s = set(130, &[0, 64, 129, 5]);
        let got: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(got, vec![0, 5, 64, 129]);
    }

    #[test]
    fn from_predicate_and_from_iter() {
        let evens = RunSet::from_predicate(10, |r| r.0 % 2 == 0);
        assert_eq!(evens.len(), 5);
        let collected: RunSet = [RunId(2), RunId(7)].into_iter().collect();
        assert!(collected.contains(RunId(7)));
        assert_eq!(collected.universe(), 8);
    }

    #[test]
    fn complement_respects_partial_block() {
        let s = set(3, &[0]);
        let c = s.complement();
        assert_eq!(c.len(), 2);
        assert!(c.contains(RunId(1)) && c.contains(RunId(2)));
    }
}
