//! Facts (conditions) over a pps and their associated run events.
//!
//! A fact `ϕ` (§2.3) is identified with the set of points at which it is
//! true. [`Fact`] captures this as a predicate on points; combinators build
//! compound facts. The module also provides the paper's `@`-operators:
//!
//! * `ϕ@ℓ` — "ϕ holds at the (unique) point of the current run where the
//!   agent's local state is ℓ" ([`Facts::fact_at_cell`]),
//! * `ϕ@α` — "ϕ holds when the agent performs the proper action α"
//!   ([`Facts::fact_at_action`]),
//!
//! both of which are *facts about runs* and hence measurable events.

use std::fmt;
use std::sync::Arc;

use crate::event::RunSet;
use crate::ids::{ActionId, AgentId, CellId, Point};
use crate::pps::Pps;
use crate::prob::Probability;
use crate::state::GlobalState;

/// A fact (condition, event-in-time) over the points of a pps.
///
/// Implementors decide truth at each point `(r, t)`. Facts are evaluated
/// against a concrete system, so the same `Fact` value can be reused across
/// systems that share state and action vocabulary.
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
///
/// // "agent 0's local data is odd" as a state fact:
/// let odd = StateFact::<SimpleState>::new("odd", |g| g.locals[0] % 2 == 1);
/// # let _ = odd;
/// ```
pub trait Fact<G: GlobalState, P: Probability>: fmt::Debug {
    /// Returns `true` if the fact holds at `point` of `pps`.
    ///
    /// Points past the end of a run (where `state_at` is `None`) should
    /// report `false`.
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool;

    /// A short human-readable label for reports.
    fn label(&self) -> String {
        "ϕ".to_string()
    }
}

/// A fact defined by an arbitrary closure on points.
#[derive(Clone)]
pub struct FnFact<G: GlobalState, P: Probability> {
    label: String,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&Pps<G, P>, Point) -> bool + Send + Sync>,
}

impl<G: GlobalState, P: Probability> FnFact<G, P> {
    /// Wraps a closure as a fact.
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(&Pps<G, P>, Point) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnFact {
            label: label.into(),
            f: Arc::new(f),
        }
    }
}

impl<G: GlobalState, P: Probability> fmt::Debug for FnFact<G, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnFact({})", self.label)
    }
}

impl<G: GlobalState, P: Probability> Fact<G, P> for FnFact<G, P> {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        (self.f)(pps, point)
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// A fact that depends only on the current global state — by construction a
/// *past-based* fact in the sense of §4 (its truth at `(r, t)` is a function
/// of the node reached at time `t`).
#[derive(Clone)]
pub struct StateFact<G> {
    label: String,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&G) -> bool + Send + Sync>,
}

impl<G: GlobalState> StateFact<G> {
    /// Wraps a predicate on global states as a fact.
    pub fn new(label: impl Into<String>, f: impl Fn(&G) -> bool + Send + Sync + 'static) -> Self {
        StateFact {
            label: label.into(),
            f: Arc::new(f),
        }
    }

    /// Evaluates the underlying predicate directly on a state.
    #[must_use]
    pub fn eval(&self, state: &G) -> bool {
        (self.f)(state)
    }
}

impl<G> fmt::Debug for StateFact<G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateFact({})", self.label)
    }
}

impl<G: GlobalState, P: Probability> Fact<G, P> for StateFact<G> {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        pps.state_at(point).is_some_and(|s| (self.f)(s))
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// The fact `does_i(α)`: agent `i` is currently performing `α` (§2.3).
///
/// Note that `does_i(α)` is **not** past-based in general: at a mixed-action
/// point, runs sharing the node at time `t` diverge on the action taken.
/// This is exactly the source of the paper's Figure 1 counterexamples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoesFact {
    /// The acting agent.
    pub agent: AgentId,
    /// The action.
    pub action: ActionId,
}

impl DoesFact {
    /// Creates the fact `does_agent(action)`.
    #[must_use]
    pub fn new(agent: AgentId, action: ActionId) -> Self {
        DoesFact { agent, action }
    }
}

impl<G: GlobalState, P: Probability> Fact<G, P> for DoesFact {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        pps.does(self.agent, self.action, point)
    }

    fn label(&self) -> String {
        format!("does_{}({})", self.agent.0, self.action)
    }
}

/// Negation of a fact.
#[derive(Debug)]
pub struct NotFact<F>(pub F);

impl<G: GlobalState, P: Probability, F: Fact<G, P>> Fact<G, P> for NotFact<F> {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        // ¬ϕ at points past a run's end: the paper evaluates facts only at
        // points of Pts(T); for uniformity we treat out-of-run points as
        // not satisfying any fact, including negations.
        if pps.state_at(point).is_none() {
            return false;
        }
        !self.0.holds(pps, point)
    }

    fn label(&self) -> String {
        format!("¬{}", self.0.label())
    }
}

/// Conjunction of two facts.
#[derive(Debug)]
pub struct AndFact<A, B>(pub A, pub B);

impl<G: GlobalState, P: Probability, A: Fact<G, P>, B: Fact<G, P>> Fact<G, P> for AndFact<A, B> {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        self.0.holds(pps, point) && self.1.holds(pps, point)
    }

    fn label(&self) -> String {
        format!("({} ∧ {})", self.0.label(), self.1.label())
    }
}

/// Disjunction of two facts.
#[derive(Debug)]
pub struct OrFact<A, B>(pub A, pub B);

impl<G: GlobalState, P: Probability, A: Fact<G, P>, B: Fact<G, P>> Fact<G, P> for OrFact<A, B> {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        self.0.holds(pps, point) || self.1.holds(pps, point)
    }

    fn label(&self) -> String {
        format!("({} ∨ {})", self.0.label(), self.1.label())
    }
}

/// The constant `true` fact (holds at every point of every run).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrueFact;

impl<G: GlobalState, P: Probability> Fact<G, P> for TrueFact {
    fn holds(&self, pps: &Pps<G, P>, point: Point) -> bool {
        pps.state_at(point).is_some()
    }

    fn label(&self) -> String {
        "⊤".to_string()
    }
}

/// The constant `false` fact.
#[derive(Debug, Clone, Copy, Default)]
pub struct FalseFact;

impl<G: GlobalState, P: Probability> Fact<G, P> for FalseFact {
    fn holds(&self, _pps: &Pps<G, P>, _point: Point) -> bool {
        false
    }

    fn label(&self) -> String {
        "⊥".to_string()
    }
}

/// Fact-evaluation and `@`-operator helpers on a pps.
///
/// These methods realise §2.3 and §3 of the paper. They are provided as an
/// extension trait so `pps.rs` stays focused on structure and measure.
pub trait Facts<G: GlobalState, P: Probability> {
    /// The event `{r : (T, r, t) |= ϕ for the given fixed t}`. Runs shorter
    /// than `t` are excluded.
    fn fact_event_at_time(&self, fact: &dyn Fact<G, P>, time: u32) -> RunSet;

    /// Checks whether `ϕ` is a *fact about runs*: its truth is the same at
    /// every point of each run (§2.3).
    fn is_run_fact(&self, fact: &dyn Fact<G, P>) -> bool;

    /// The event of a fact about runs: `{r : (T, r) |= ϕ}` (evaluated at
    /// time 0 of each run; meaningful when [`Facts::is_run_fact`] holds, and
    /// usable as "ϕ holds at time 0" otherwise).
    fn run_fact_event(&self, fact: &dyn Fact<G, P>) -> RunSet;

    /// The event `ℓ`: runs in which the cell's local state occurs.
    fn cell_event(&self, cell: CellId) -> RunSet;

    /// The event `ϕ@ℓ`: runs in which the local state of `cell` occurs
    /// *and* `ϕ` holds at the point realising it (§3).
    fn fact_at_cell(&self, fact: &dyn Fact<G, P>, cell: CellId) -> RunSet;

    /// The event `α@ℓ` (shorthand for `does_i(α)@ℓ`): runs in which the
    /// cell's local state occurs and the agent performs `action` there.
    fn action_at_cell(&self, action: ActionId, cell: CellId) -> RunSet;

    /// The event `ϕ@α`: runs in which the (proper) action `α` is performed
    /// by `agent` and `ϕ` holds at the unique point of performance (§3.1).
    fn fact_at_action(&self, fact: &dyn Fact<G, P>, agent: AgentId, action: ActionId) -> RunSet;

    /// Checks whether `ϕ` is *past-based* (§4): for all runs agreeing up to
    /// time `t` (i.e. sharing the time-`t` node), `ϕ` agrees at `t`.
    fn is_past_based(&self, fact: &dyn Fact<G, P>) -> bool;

    /// Checks whether `action` is *deterministic* for `agent` (§4): whether
    /// `does_i(α)` is a function of `i`'s local state.
    fn is_deterministic_action(&self, agent: AgentId, action: ActionId) -> bool;
}

impl<G: GlobalState, P: Probability> Facts<G, P> for Pps<G, P> {
    fn fact_event_at_time(&self, fact: &dyn Fact<G, P>, time: u32) -> RunSet {
        RunSet::from_predicate(self.num_runs(), |run| {
            (time as usize) < self.run_len(run) && fact.holds(self, Point { run, time })
        })
    }

    fn is_run_fact(&self, fact: &dyn Fact<G, P>) -> bool {
        self.run_ids().all(|run| {
            let at0 = fact.holds(self, Point { run, time: 0 });
            (1..self.run_len(run) as u32).all(|time| fact.holds(self, Point { run, time }) == at0)
        })
    }

    fn run_fact_event(&self, fact: &dyn Fact<G, P>) -> RunSet {
        self.fact_event_at_time(fact, 0)
    }

    fn cell_event(&self, cell: CellId) -> RunSet {
        self.cell(cell).runs.clone()
    }

    fn fact_at_cell(&self, fact: &dyn Fact<G, P>, cell: CellId) -> RunSet {
        let c = self.cell(cell);
        let time = c.time;
        RunSet::from_predicate(self.num_runs(), |run| {
            c.runs.contains(run) && fact.holds(self, Point { run, time })
        })
    }

    fn action_at_cell(&self, action: ActionId, cell: CellId) -> RunSet {
        let c = self.cell(cell);
        let agent = c.agent;
        let time = c.time;
        RunSet::from_predicate(self.num_runs(), |run| {
            c.runs.contains(run) && self.does(agent, action, Point { run, time })
        })
    }

    fn fact_at_action(&self, fact: &dyn Fact<G, P>, agent: AgentId, action: ActionId) -> RunSet {
        RunSet::from_predicate(self.num_runs(), |run| {
            match self.action_point(agent, action, run) {
                None => false,
                Some(pt) => fact.holds(self, pt),
            }
        })
    }

    fn is_past_based(&self, fact: &dyn Fact<G, P>) -> bool {
        // Group points by tree node: a fact is past-based iff it is constant
        // on each node's set of passing runs. Each run's node path is a
        // borrowed slice of the shared run arena, so point → node is a
        // plain array walk.
        let mut verdict: Vec<Option<bool>> = vec![None; self.num_nodes()];
        for run in self.run_ids() {
            for (time, &node) in self.nodes_of(run).iter().enumerate() {
                let v = fact.holds(
                    self,
                    Point {
                        run,
                        time: time as u32,
                    },
                );
                match verdict[node.index()] {
                    None => verdict[node.index()] = Some(v),
                    Some(prev) => {
                        if prev != v {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    fn is_deterministic_action(&self, agent: AgentId, action: ActionId) -> bool {
        // does_i(α) must be constant on every information set of the agent.
        for (_, cell) in self.agent_cells(agent) {
            let mut first: Option<bool> = None;
            for pt in self.cell_points(cell) {
                let v = self.does(agent, action, pt);
                match first {
                    None => first = Some(v),
                    Some(prev) => {
                        if prev != v {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, RunId};
    use crate::pps::PpsBuilder;
    use crate::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn st(env: u64, locals: &[u64]) -> SimpleState {
        SimpleState::new(env, locals.to_vec())
    }

    /// Figure 1: one agent, mixed α/α′ at time 0.
    fn figure1() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        b.child(g0, st(0, &[1]), r(1, 2), &[(AgentId(0), ActionId(0))])
            .unwrap();
        b.child(g0, st(0, &[2]), r(1, 2), &[(AgentId(0), ActionId(1))])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn state_fact_is_past_based() {
        let pps = figure1();
        let f = StateFact::<SimpleState>::new("local=1", |g| g.locals[0] == 1);
        assert!(pps.is_past_based(&f));
        assert!(f.eval(&st(0, &[1])));
    }

    #[test]
    fn does_fact_not_past_based_under_mixing() {
        let pps = figure1();
        let f = DoesFact::new(AgentId(0), ActionId(0));
        // The two runs share the time-0 node but only one performs α there.
        assert!(!Facts::<SimpleState, Rational>::is_past_based(&pps, &f));
    }

    #[test]
    fn mixed_action_is_not_deterministic() {
        let pps = figure1();
        assert!(!pps.is_deterministic_action(AgentId(0), ActionId(0)));
    }

    #[test]
    fn unconditional_action_is_deterministic() {
        // A single run where the agent always performs α: trivially a
        // deterministic function of the local state.
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        b.child(
            g0,
            st(0, &[1]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        let pps = b.build().unwrap();
        assert!(pps.is_deterministic_action(AgentId(0), ActionId(0)));
    }

    #[test]
    fn combinators_and_labels() {
        let pps = figure1();
        let alpha = DoesFact::new(AgentId(0), ActionId(0));
        let not_alpha = NotFact(alpha);
        let pt0 = Point {
            run: RunId(0),
            time: 0,
        };
        let pt1 = Point {
            run: RunId(1),
            time: 0,
        };
        let does0 = Facts::<SimpleState, Rational>::fact_event_at_time(&pps, &alpha, 0);
        assert_eq!(does0.len(), 1);
        // not_alpha holds exactly at the other time-0 point.
        let a = alpha.holds(&pps, pt0) as u8 + alpha.holds(&pps, pt1) as u8;
        let n = not_alpha.holds(&pps, pt0) as u8 + not_alpha.holds(&pps, pt1) as u8;
        assert_eq!((a, n), (1, 1));
        assert_eq!(
            Fact::<SimpleState, Rational>::label(&not_alpha),
            "¬does_0(action#0)"
        );
        let both = AndFact(TrueFact, FalseFact);
        assert!(!both.holds(&pps, pt0));
        let either = OrFact(TrueFact, FalseFact);
        assert!(either.holds(&pps, pt0));
        assert_eq!(Fact::<SimpleState, Rational>::label(&either), "(⊤ ∨ ⊥)");
    }

    #[test]
    fn true_false_facts_respect_run_bounds() {
        let pps = figure1();
        let beyond = Point {
            run: RunId(0),
            time: 99,
        };
        assert!(!Fact::<SimpleState, Rational>::holds(
            &TrueFact, &pps, beyond
        ));
        assert!(!Fact::<SimpleState, Rational>::holds(
            &FalseFact, &pps, beyond
        ));
        let not_false = NotFact(FalseFact);
        assert!(!Fact::<SimpleState, Rational>::holds(
            &not_false, &pps, beyond
        ));
    }

    #[test]
    fn fact_at_action_events() {
        let pps = figure1();
        // ψ = ¬does(α) evaluated at the α-point is false on the α-run.
        let psi = NotFact(DoesFact::new(AgentId(0), ActionId(0)));
        let ev = pps.fact_at_action(&psi, AgentId(0), ActionId(0));
        assert!(ev.is_empty());
        // ϕ = does(α) at the α-point is exactly R_α.
        let phi = DoesFact::new(AgentId(0), ActionId(0));
        let ev = pps.fact_at_action(&phi, AgentId(0), ActionId(0));
        assert_eq!(ev, pps.action_event(AgentId(0), ActionId(0)));
    }

    #[test]
    fn at_cell_operators() {
        let pps = figure1();
        let cell = pps
            .cell_at(
                AgentId(0),
                Point {
                    run: RunId(0),
                    time: 0,
                },
            )
            .unwrap();
        // ℓ occurs in both runs.
        assert_eq!(pps.cell_event(cell).len(), 2);
        // α@ℓ: performed in exactly one run.
        assert_eq!(pps.action_at_cell(ActionId(0), cell).len(), 1);
        // ⊤@ℓ = ℓ.
        let top = TrueFact;
        assert_eq!(pps.fact_at_cell(&top, cell), pps.cell_event(cell));
    }

    #[test]
    fn run_fact_detection() {
        let pps = figure1();
        // "α is performed at some time in the run" is a fact about runs.
        let performed = FnFact::new("α performed", |pps: &Pps<SimpleState, Rational>, pt| {
            !pps.performance_times(AgentId(0), ActionId(0), pt.run)
                .is_empty()
        });
        assert!(pps.is_run_fact(&performed));
        // does(α) is transient (true at t=0 on run 0, false at t=1).
        let does = DoesFact::new(AgentId(0), ActionId(0));
        assert!(!pps.is_run_fact(&does));
        let _ = NodeId::ROOT;
    }
}
