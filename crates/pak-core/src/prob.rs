//! The [`Probability`] abstraction.
//!
//! All of `pak-core` is generic over the numeric type used for transition
//! probabilities and derived measures. Two implementations are provided:
//!
//! * [`pak_num::Rational`] — exact. The paper's Theorem 6.2 states an
//!   *equality*; with rationals the library verifies it with `==`.
//! * `f64` — fast and approximate, for large sweeps and Monte-Carlo
//!   cross-checks. Equality comparisons use an absolute tolerance of
//!   [`F64_TOLERANCE`].

use core::fmt::{Debug, Display};

use pak_num::Rational;

/// Absolute tolerance used when comparing `f64` probabilities for equality
/// (e.g. validating that a distribution sums to one).
pub const F64_TOLERANCE: f64 = 1e-9;

/// A numeric type usable as a probability in a purely probabilistic system.
///
/// Implementors form an ordered field restricted to the operations the
/// analyses need. The trait is sealed in spirit — downstream code should use
/// the provided `f64` and [`Rational`] implementations — but is left open so
/// that experiments with interval arithmetic or logprobs remain possible.
///
/// # Examples
///
/// ```
/// use pak_core::prob::Probability;
/// use pak_num::Rational;
///
/// fn half<P: Probability>() -> P {
///     P::from_ratio(1, 2)
/// }
///
/// assert_eq!(half::<f64>(), 0.5);
/// assert_eq!(half::<Rational>(), Rational::from_ratio(1, 2));
/// ```
pub trait Probability: Clone + PartialEq + PartialOrd + Debug + Display + 'static {
    /// The additive identity, probability `0`.
    fn zero() -> Self;

    /// The multiplicative identity, probability `1`.
    fn one() -> Self;

    /// Constructs the value `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    fn from_ratio(num: u64, den: u64) -> Self;

    /// Addition.
    #[must_use]
    fn add(&self, other: &Self) -> Self;

    /// In-place addition: `*self += other`.
    ///
    /// Accumulation loops (measures, expectations) should prefer this over
    /// [`Probability::add`]; exact implementations can then reuse storage
    /// or take word-sized fast paths instead of constructing a fresh value
    /// per term.
    fn add_assign(&mut self, other: &Self) {
        *self = self.add(other);
    }

    /// In-place multiplication: `*self *= other`.
    fn mul_assign(&mut self, other: &Self) {
        *self = self.mul(other);
    }

    /// Subtraction. May produce negative values (used for differences of
    /// measures in theorem reports).
    #[must_use]
    fn sub(&self, other: &Self) -> Self;

    /// Multiplication.
    #[must_use]
    fn mul(&self, other: &Self) -> Self;

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero (in debug builds for `f64`).
    #[must_use]
    fn div(&self, other: &Self) -> Self;

    /// Returns `true` if the value equals zero (up to the type's tolerance).
    fn is_zero(&self) -> bool;

    /// Returns `true` if the value equals one (up to the type's tolerance).
    fn is_one(&self) -> bool;

    /// Equality up to the type's tolerance (exact for rationals).
    fn approx_eq(&self, other: &Self) -> bool;

    /// `self >= other`, with tolerance slack for inexact types: a value that
    /// falls short of `other` by no more than the tolerance still passes.
    fn at_least(&self, other: &Self) -> bool;

    /// Lossy conversion to `f64` for reporting.
    fn to_f64(&self) -> f64;

    /// Returns `true` if the value lies in `[0, 1]` (up to tolerance).
    fn is_valid_probability(&self) -> bool {
        self.at_least(&Self::zero()) && Self::one().at_least(self)
    }

    /// The complement `1 - self`.
    #[must_use]
    fn one_minus(&self) -> Self {
        Self::one().sub(self)
    }
}

impl Probability for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_ratio(num: u64, den: u64) -> Self {
        assert!(den != 0, "from_ratio denominator must be non-zero");
        #[allow(clippy::cast_precision_loss)]
        {
            num as f64 / den as f64
        }
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn add_assign(&mut self, other: &Self) {
        *self += other;
    }

    fn mul_assign(&mut self, other: &Self) {
        *self *= other;
    }

    fn sub(&self, other: &Self) -> Self {
        self - other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn div(&self, other: &Self) -> Self {
        debug_assert!(*other != 0.0, "division of f64 probability by zero");
        self / other
    }

    fn is_zero(&self) -> bool {
        self.abs() <= F64_TOLERANCE
    }

    fn is_one(&self) -> bool {
        (self - 1.0).abs() <= F64_TOLERANCE
    }

    fn approx_eq(&self, other: &Self) -> bool {
        (self - other).abs() <= F64_TOLERANCE
    }

    fn at_least(&self, other: &Self) -> bool {
        *self >= other - F64_TOLERANCE
    }

    fn to_f64(&self) -> f64 {
        *self
    }
}

impl Probability for Rational {
    fn zero() -> Self {
        Rational::zero()
    }

    fn one() -> Self {
        Rational::one()
    }

    fn from_ratio(num: u64, den: u64) -> Self {
        assert!(den != 0, "from_ratio denominator must be non-zero");
        Rational::new(num.into(), den.into()).expect("den checked non-zero")
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }

    fn add_assign(&mut self, other: &Self) {
        *self += other;
    }

    fn mul_assign(&mut self, other: &Self) {
        *self *= other;
    }

    fn sub(&self, other: &Self) -> Self {
        self - other
    }

    fn mul(&self, other: &Self) -> Self {
        self * other
    }

    fn div(&self, other: &Self) -> Self {
        self / other
    }

    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }

    fn is_one(&self) -> bool {
        Rational::is_one(self)
    }

    fn approx_eq(&self, other: &Self) -> bool {
        self == other
    }

    fn at_least(&self, other: &Self) -> bool {
        self >= other
    }

    fn to_f64(&self) -> f64 {
        Rational::to_f64(self)
    }

    fn one_minus(&self) -> Self {
        // The inherent method has a dedicated word path ((b ∓ a)/b is
        // already reduced); the trait default would route through a
        // generic subtraction instead.
        Rational::one_minus(self)
    }
}

/// Sums an iterator of probabilities, accumulating in place.
pub fn sum<'a, P: Probability>(iter: impl IntoIterator<Item = &'a P>) -> P {
    let mut acc = P::zero();
    for x in iter {
        acc.add_assign(x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<P: Probability>() {
        let half = P::from_ratio(1, 2);
        let third = P::from_ratio(1, 3);
        assert!(P::zero().is_zero());
        assert!(P::one().is_one());
        assert!(half.add(&half).is_one());
        assert!(half.mul(&P::one()).approx_eq(&half));
        assert!(half.sub(&half).is_zero());
        assert!(half.div(&half).is_one());
        assert!(half.at_least(&third));
        assert!(!third.at_least(&half));
        assert!(half.is_valid_probability());
        assert!(half.one_minus().approx_eq(&half));
        assert!((half.to_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f64_laws() {
        laws::<f64>();
    }

    #[test]
    fn rational_laws() {
        laws::<Rational>();
    }

    #[test]
    fn f64_tolerance_behaviour() {
        let x = 0.1f64 + 0.2;
        assert!(x.approx_eq(&0.3));
        assert!(Probability::at_least(&0.3f64, &x));
    }

    #[test]
    fn rational_is_exact() {
        let a = Rational::from_ratio(1, 3);
        let b = Rational::from_ratio(1, 3).add(&Rational::from_ratio(1, 1_000_000_000));
        assert!(!a.approx_eq(&b));
    }

    #[test]
    fn sum_helper() {
        let parts = vec![0.25f64, 0.25, 0.5];
        assert!(sum(&parts).is_one());
    }

    #[test]
    fn invalid_probability_detected() {
        assert!(!1.5f64.is_valid_probability());
        assert!(!(-0.1f64).is_valid_probability());
        assert!(!Rational::from_ratio(3, 2).is_valid_probability());
    }
}
