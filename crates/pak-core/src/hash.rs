//! The workspace's shared fast hasher.
//!
//! Both the unfolder's successor-merge index and the global-state intern
//! pool are rebuilt from the model's own output on every construction, so
//! HashDoS resistance buys nothing there while the per-key setup cost of
//! the default SipHash dominates the small keys involved. [`FxHasher`]
//! implements the multiply-rotate scheme rustc uses for its own interning
//! tables; [`FxBuildHasher`] plugs it into `std` hash maps.
//!
//! # Examples
//!
//! ```
//! use std::collections::HashMap;
//! use pak_core::hash::FxBuildHasher;
//!
//! let mut m: HashMap<u64, &str, FxBuildHasher> = HashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A fast, non-keyed hasher (the multiply-rotate scheme rustc uses for its
/// own interning tables). Not HashDoS-resistant by design: use it only for
/// maps keyed on data the program itself produced.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s, for use as the
/// `S` parameter of `std` hash maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A 64-bit structural fingerprint, used as a cache key: two values with
/// equal fingerprints are treated as identical by caches keyed on it
/// (e.g. `pak-engine`'s `(model fingerprint, horizon)` tree cache).
///
/// Fingerprints are [`FxHasher`] digests: deterministic within a process
/// and across processes (the hasher is unkeyed), but *not*
/// collision-resistant against adversarial inputs — key caches on them
/// only for data the program itself produced.
///
/// # Examples
///
/// ```
/// use pak_core::hash::Fingerprint;
///
/// let a = Fingerprint::of(&("coin", 2u32));
/// let b = Fingerprint::of(&("coin", 2u32));
/// assert_eq!(a, b);
/// assert_ne!(a, Fingerprint::of(&("coin", 3u32)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprints any hashable value.
    #[must_use]
    pub fn of<T: std::hash::Hash + ?Sized>(value: &T) -> Self {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        Fingerprint(h.finish())
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = (vec![1u64, 2, 3], 7u32);
        let b = (vec![1u64, 2, 3], 7u32);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn hashing_is_sensitive_to_each_word() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u64, 2u64)), hash_of(&(2u64, 1u64)));
    }

    #[test]
    fn byte_slices_hash_per_byte() {
        assert_ne!(hash_of(&[1u8, 2]), hash_of(&[2u8, 1]));
    }
}
