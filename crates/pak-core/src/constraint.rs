//! Probabilistic constraints (Definition 3.2).
//!
//! A probabilistic constraint on an action `α` in a pps `T` is a statement
//! `µ_T(ϕ@α | α) ≥ p`: the condition `ϕ` must hold with probability at
//! least `p` when `α` is performed. [`ProbabilisticConstraint`] packages the
//! triple `(agent, action, threshold)` with a fact so specifications can be
//! passed around, checked, and reported on as values.

use std::fmt;
use std::sync::Arc;

use crate::belief::ActionAnalysis;
use crate::error::AnalysisError;
use crate::fact::Fact;
use crate::ids::{ActionId, AgentId};
use crate::pps::Pps;
use crate::prob::Probability;
use crate::state::GlobalState;

/// A probabilistic constraint `µ_T(ϕ@α | α) ≥ p` (Definition 3.2).
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// // Example 1's specification: µ(ϕ_both | fire_A) ≥ 0.95.
/// let phi_both = StateFact::<SimpleState>::new("both firing", |g| g.env == 3);
/// let spec = ProbabilisticConstraint::new(
///     AgentId(0),
///     ActionId(0),
///     phi_both,
///     Rational::from_ratio(19, 20),
/// );
/// assert!(spec.to_string().contains("0.95"));
/// ```
#[derive(Clone)]
pub struct ProbabilisticConstraint<G: GlobalState, P: Probability> {
    /// The acting agent `i`.
    pub agent: AgentId,
    /// The constrained action `α`.
    pub action: ActionId,
    /// The condition `ϕ`.
    fact: Arc<dyn Fact<G, P> + Send + Sync>,
    /// The threshold `p`.
    pub threshold: P,
}

impl<G: GlobalState, P: Probability> ProbabilisticConstraint<G, P> {
    /// Creates the constraint `µ(ϕ@α | α) ≥ threshold`.
    pub fn new(
        agent: AgentId,
        action: ActionId,
        fact: impl Fact<G, P> + Send + Sync + 'static,
        threshold: P,
    ) -> Self {
        ProbabilisticConstraint {
            agent,
            action,
            fact: Arc::new(fact),
            threshold,
        }
    }

    /// The condition `ϕ`.
    #[must_use]
    pub fn fact(&self) -> &dyn Fact<G, P> {
        self.fact.as_ref()
    }

    /// Evaluates `µ_T(ϕ@α | α)` on a concrete system.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ImproperAction`] if the action is not proper
    /// in `pps`.
    pub fn evaluate(&self, pps: &Pps<G, P>) -> Result<ConstraintEvaluation<P>, AnalysisError> {
        let analysis = ActionAnalysis::new(pps, self.agent, self.action, self.fact.as_ref())?;
        let achieved = analysis.constraint_probability();
        Ok(ConstraintEvaluation {
            satisfied: achieved.at_least(&self.threshold),
            achieved,
            threshold: self.threshold.clone(),
            expected_belief: analysis.expected_belief(),
            threshold_met_measure: analysis.threshold_measure(&self.threshold),
        })
    }

    /// Checks satisfaction only.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ImproperAction`] if the action is not proper
    /// in `pps`.
    pub fn is_satisfied(&self, pps: &Pps<G, P>) -> Result<bool, AnalysisError> {
        Ok(self.evaluate(pps)?.satisfied)
    }
}

impl<G: GlobalState, P: Probability> fmt::Debug for ProbabilisticConstraint<G, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProbabilisticConstraint(µ({}@{} | {}) ≥ {})",
            self.fact.label(),
            self.action,
            self.action,
            self.threshold
        )
    }
}

impl<G: GlobalState, P: Probability> fmt::Display for ProbabilisticConstraint<G, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "µ({}@α | α) ≥ {} for α = {} of {}",
            self.fact.label(),
            self.threshold.to_f64(),
            self.action,
            self.agent
        )
    }
}

/// The result of evaluating a [`ProbabilisticConstraint`] on a system.
#[derive(Debug, Clone)]
pub struct ConstraintEvaluation<P> {
    /// Whether `µ(ϕ@α | α) ≥ p`.
    pub satisfied: bool,
    /// The achieved probability `µ(ϕ@α | α)`.
    pub achieved: P,
    /// The required threshold `p`.
    pub threshold: P,
    /// `E[β_i(ϕ)@α | α]` — equal to `achieved` under local-state
    /// independence (Theorem 6.2).
    pub expected_belief: P,
    /// `µ(β_i(ϕ)@α ≥ p | α)` — how often the agent's belief meets the
    /// threshold when acting.
    pub threshold_met_measure: P,
}

impl<P: Probability> ConstraintEvaluation<P> {
    /// The margin `achieved − threshold` (negative when unsatisfied).
    #[must_use]
    pub fn margin(&self) -> P {
        self.achieved.sub(&self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::StateFact;
    use crate::pps::PpsBuilder;
    use crate::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn biased_coin(p_heads: Rational) -> Pps<SimpleState, Rational> {
        // Agent observes nothing; env=1 w.p. p, env=0 otherwise; agent then
        // unconditionally acts.
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let h = b
            .initial(SimpleState::new(1, vec![0]), p_heads.clone())
            .unwrap();
        let t = b
            .initial(SimpleState::new(0, vec![0]), p_heads.one_minus())
            .unwrap();
        b.child(
            h,
            SimpleState::new(1, vec![0]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        b.child(
            t,
            SimpleState::new(0, vec![0]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        b.build().unwrap()
    }

    fn heads() -> StateFact<SimpleState> {
        StateFact::new("heads", |g: &SimpleState| g.env == 1)
    }

    #[test]
    fn constraint_satisfaction() {
        let pps = biased_coin(r(99, 100));
        let spec = ProbabilisticConstraint::new(AgentId(0), ActionId(0), heads(), r(95, 100));
        let eval = spec.evaluate(&pps).unwrap();
        assert!(eval.satisfied);
        assert_eq!(eval.achieved, r(99, 100));
        assert_eq!(eval.margin(), r(4, 100));
        assert!(spec.is_satisfied(&pps).unwrap());
    }

    #[test]
    fn constraint_violation() {
        let pps = biased_coin(r(1, 2));
        let spec = ProbabilisticConstraint::new(AgentId(0), ActionId(0), heads(), r(95, 100));
        let eval = spec.evaluate(&pps).unwrap();
        assert!(!eval.satisfied);
        assert!(eval.margin().to_f64() < 0.0);
    }

    #[test]
    fn expectation_theorem_reflected_in_evaluation() {
        // The agent never observes the coin, so its belief equals the prior;
        // Theorem 6.2: expected belief = achieved probability.
        let pps = biased_coin(r(2, 3));
        let spec = ProbabilisticConstraint::new(AgentId(0), ActionId(0), heads(), r(1, 2));
        let eval = spec.evaluate(&pps).unwrap();
        assert_eq!(eval.expected_belief, eval.achieved);
        // Belief is 2/3 ≥ ½ always, so the threshold-met measure is 1.
        assert_eq!(eval.threshold_met_measure, Rational::one());
    }

    #[test]
    fn improper_action_propagates() {
        let pps = biased_coin(r(1, 2));
        let spec = ProbabilisticConstraint::new(AgentId(0), ActionId(9), heads(), r(1, 2));
        assert!(spec.evaluate(&pps).is_err());
    }

    #[test]
    fn display_and_debug() {
        let spec: ProbabilisticConstraint<SimpleState, Rational> =
            ProbabilisticConstraint::new(AgentId(0), ActionId(0), heads(), r(19, 20));
        assert!(format!("{spec}").contains("0.95"));
        assert!(format!("{spec:?}").contains("heads"));
    }
}
