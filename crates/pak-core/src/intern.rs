//! Interning of global states and agent-local states.
//!
//! An unfolded system visits the same global state over and over: successor
//! merging, environment branching that lands on identical states, and
//! models whose transition tables copy the state all produce tree nodes
//! that *share* a `Global`. Storing the state by value in every node (and
//! cloning it into the frontier, the builder, and each analysis) made
//! state cloning a measurable share of unfolding cost.
//!
//! [`StatePool`] is an append-only arena keyed by hash: each distinct
//! state is stored exactly once and identified by a copyable
//! [`StateId`] — a plain dense index, only meaningful for the pool that
//! issued it. Deduplication uses the same scheme as the
//! unfolder's successor merge — an [`FxHasher`] probe
//! into hash buckets with candidate confirmation by `Eq` — so the pool
//! inherits the merge contract: **equal states must hash equal**. A
//! coarser or finer `Eq` changes only how many distinct ids exist, never
//! the states an id resolves to.
//!
//! [`LocalPool`] applies the same treatment one level down: the pps build
//! pass interns each distinct state's *local projection* per agent, so
//! information-set cells are keyed by copyable
//! [`LocalId`]s instead of cloned `G::Local` values.
//!
//! # Examples
//!
//! ```
//! use pak_core::intern::StatePool;
//! use pak_core::state::SimpleState;
//!
//! let mut pool = StatePool::new();
//! let a = pool.intern(SimpleState::new(0, vec![1, 2]));
//! let b = pool.intern(SimpleState::new(0, vec![1, 2])); // duplicate
//! let c = pool.intern(SimpleState::new(9, vec![1, 2]));
//!
//! assert_eq!(a, b, "equal states intern to the same id");
//! assert_ne!(a, c);
//! assert_eq!(pool.len(), 2, "the duplicate was not stored twice");
//! assert_eq!(pool[a].locals, vec![1, 2]);
//! ```

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Index;

use crate::hash::{FxBuildHasher, FxHasher};
use crate::ids::{LocalId, StateId};

/// The shared arena core behind [`StatePool`] and [`LocalPool`]: stores
/// each distinct value once, identified by a dense `u32` index. The
/// public pools wrap it with their respective id newtypes so state ids and
/// local ids cannot be confused at compile time.
#[derive(Debug, Clone)]
struct RawPool<T> {
    values: Vec<T>,
    /// Hash → candidate indices with that hash (almost always a single
    /// entry; collisions are resolved by `Eq` confirmation against
    /// `values`).
    index: HashMap<u64, Vec<u32>, FxBuildHasher>,
}

impl<T> Default for RawPool<T> {
    fn default() -> Self {
        RawPool {
            values: Vec::new(),
            index: HashMap::default(),
        }
    }
}

impl<T: Eq + Hash> RawPool<T> {
    fn intern(&mut self, value: T) -> u32 {
        match self.lookup(&value) {
            Some(i) => i,
            None => self.insert_new(value),
        }
    }

    /// Appends a value known to be absent (misses re-hash once; interning
    /// is dominated by hits, where a single probe suffices).
    fn insert_new(&mut self, value: T) -> u32 {
        let hash = Self::hash_of(&value);
        let id = u32::try_from(self.values.len()).expect("more than u32::MAX interned values");
        self.index.entry(hash).or_default().push(id);
        self.values.push(value);
        id
    }

    fn lookup(&self, value: &T) -> Option<u32> {
        let hash = Self::hash_of(value);
        self.index
            .get(&hash)?
            .iter()
            .find(|&&i| self.values[i as usize] == *value)
            .copied()
    }

    fn hash_of(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    /// Drops every value with id `>= len`, unwinding the pool to a prefix.
    ///
    /// Ids are handed out densely, so truncating to a past length restores
    /// the pool to exactly the state it had then: surviving ids keep their
    /// values, dropped ids are removed from the hash index so the values
    /// can be re-interned later (possibly under different ids). Cost is
    /// `O(dropped)` — one re-hash per dropped value.
    fn truncate(&mut self, len: usize) {
        for id in len..self.values.len() {
            let hash = Self::hash_of(&self.values[id]);
            if let Some(bucket) = self.index.get_mut(&hash) {
                bucket.retain(|&i| (i as usize) < len);
                if bucket.is_empty() {
                    self.index.remove(&hash);
                }
            }
        }
        self.values.truncate(len);
    }
}

/// An arena that stores each distinct value once and hands out copyable
/// [`StateId`] handles.
///
/// The pool is append-only: ids are dense (`0..len`) and stay valid for
/// the pool's lifetime. Lookup by id is a plain slice index; interning is
/// one hash and, on a repeat, one `Eq` confirmation — no allocation.
#[derive(Debug, Clone)]
pub struct StatePool<G> {
    raw: RawPool<G>,
}

impl<G> Default for StatePool<G> {
    fn default() -> Self {
        StatePool {
            raw: RawPool::default(),
        }
    }
}

impl<G: Eq + Hash> StatePool<G> {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        StatePool {
            raw: RawPool::default(),
        }
    }

    /// The number of *distinct* states interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.values.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.values.is_empty()
    }

    /// Interns `state`, returning the id of the stored copy.
    ///
    /// If an equal state is already present its id is returned and `state`
    /// is dropped; otherwise `state` is moved into the pool. Either way no
    /// clone is made.
    pub fn intern(&mut self, state: G) -> StateId {
        StateId(self.raw.intern(state))
    }

    /// Interns by reference, cloning `state` only when it is not already
    /// present.
    pub fn intern_ref(&mut self, state: &G) -> StateId
    where
        G: Clone,
    {
        match self.raw.lookup(state) {
            Some(i) => StateId(i),
            None => StateId(self.raw.insert_new(state.clone())),
        }
    }

    /// The id of an equal state already in the pool, if any, without
    /// inserting.
    #[must_use]
    pub fn lookup(&self, state: &G) -> Option<StateId> {
        self.raw.lookup(state).map(StateId)
    }

    /// Resolves an id to the stored state.
    ///
    /// Returns `None` for ids outside the pool (e.g. from another pool).
    #[must_use]
    pub fn get(&self, id: StateId) -> Option<&G> {
        self.raw.values.get(id.index())
    }

    /// Iterates over `(id, state)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &G)> {
        self.raw
            .values
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId(i as u32), s))
    }

    /// Drops every state with id `>= len`, unwinding the pool to a prefix
    /// of its interning order.
    ///
    /// This is the rollback hook for aborted horizon extensions: states
    /// interned for a level that fails validation are removed so the pool
    /// matches the retained tree again. Surviving ids are untouched.
    pub fn truncate(&mut self, len: usize) {
        self.raw.truncate(len);
    }

    /// Consumes the pool, yielding its distinct states in interning order
    /// (index `k` of the iterator is the state `StateId(k)` resolved to).
    ///
    /// Used when one pool's contents are re-interned into another — e.g.
    /// stitching the per-subtree pool shards of a parallel unfold back
    /// into the sequential interning order — so each state moves instead
    /// of being cloned.
    pub fn into_states(self) -> impl Iterator<Item = G> {
        self.raw.values.into_iter()
    }
}

impl<G: Eq + Hash> Index<StateId> for StatePool<G> {
    type Output = G;

    /// Resolves an id to the stored state.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this pool.
    fn index(&self, id: StateId) -> &G {
        &self.raw.values[id.index()]
    }
}

/// An arena of distinct agent-local states, handing out copyable
/// [`LocalId`] handles.
///
/// The pps build pass keeps one `LocalPool` per agent: every *distinct*
/// global state is projected onto the agent's local data exactly once, so
/// bucketing tree nodes into information-set cells compares two `u32`s per
/// node instead of cloning and hashing a `G::Local`. Same arena scheme as
/// [`StatePool`] (dense ids, hash probe with `Eq` confirmation), same
/// contract: equal locals must hash equal.
///
/// # Examples
///
/// ```
/// use pak_core::intern::LocalPool;
///
/// let mut pool = LocalPool::new();
/// let a = pool.intern(7u64);
/// let b = pool.intern(7u64); // duplicate
/// assert_eq!(a, b);
/// assert_eq!(pool.len(), 1);
/// assert_eq!(pool[a], 7);
/// ```
#[derive(Debug, Clone)]
pub struct LocalPool<L> {
    raw: RawPool<L>,
}

impl<L> Default for LocalPool<L> {
    fn default() -> Self {
        LocalPool {
            raw: RawPool::default(),
        }
    }
}

impl<L: Eq + Hash> LocalPool<L> {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        LocalPool {
            raw: RawPool::default(),
        }
    }

    /// The number of *distinct* locals interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.raw.values.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.raw.values.is_empty()
    }

    /// Interns `local`, returning the id of the stored copy (see
    /// [`StatePool::intern`]).
    pub fn intern(&mut self, local: L) -> LocalId {
        LocalId(self.raw.intern(local))
    }

    /// The id of an equal local already in the pool, if any, without
    /// inserting.
    #[must_use]
    pub fn lookup(&self, local: &L) -> Option<LocalId> {
        self.raw.lookup(local).map(LocalId)
    }

    /// Resolves an id to the stored local.
    ///
    /// Returns `None` for ids outside the pool (e.g. from another pool).
    #[must_use]
    pub fn get(&self, id: LocalId) -> Option<&L> {
        self.raw.values.get(id.index())
    }

    /// Iterates over `(id, local)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (LocalId, &L)> {
        self.raw
            .values
            .iter()
            .enumerate()
            .map(|(i, l)| (LocalId(i as u32), l))
    }
}

impl<L: Eq + Hash> Index<LocalId> for LocalPool<L> {
    type Output = L;

    /// Resolves an id to the stored local.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this pool.
    fn index(&self, id: LocalId) -> &L {
        &self.raw.values[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SimpleState;

    #[test]
    fn interning_dedups_equal_states() {
        let mut pool = StatePool::new();
        let ids: Vec<StateId> = (0..10)
            .map(|k| pool.intern(SimpleState::new(k % 3, vec![k % 2])))
            .collect();
        // 3 envs × 2 locals = 6 distinct states.
        assert_eq!(pool.len(), 6);
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(pool[id], SimpleState::new(k as u64 % 3, vec![k as u64 % 2]));
        }
    }

    #[test]
    fn ids_are_dense_and_in_first_seen_order() {
        let mut pool = StatePool::new();
        let a = pool.intern(SimpleState::new(1, vec![]));
        let b = pool.intern(SimpleState::new(2, vec![]));
        let a2 = pool.intern(SimpleState::new(1, vec![]));
        assert_eq!(a, StateId(0));
        assert_eq!(b, StateId(1));
        assert_eq!(a2, a);
        let collected: Vec<u64> = pool.iter().map(|(_, s)| s.env).collect();
        assert_eq!(collected, vec![1, 2]);
    }

    #[test]
    fn intern_ref_clones_only_on_miss() {
        let mut pool = StatePool::new();
        let s = SimpleState::new(0, vec![7]);
        let a = pool.intern_ref(&s);
        let b = pool.intern_ref(&s);
        assert_eq!(a, b);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut pool = StatePool::new();
        let s = SimpleState::new(0, vec![]);
        assert_eq!(pool.lookup(&s), None);
        let id = pool.intern(s.clone());
        assert_eq!(pool.lookup(&s), Some(id));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn get_is_total_over_foreign_ids() {
        let mut pool = StatePool::new();
        pool.intern(SimpleState::new(0, vec![]));
        assert!(pool.get(StateId(0)).is_some());
        assert!(pool.get(StateId(99)).is_none());
    }

    #[test]
    fn local_pool_dedups_and_resolves() {
        let mut pool: LocalPool<u64> = LocalPool::new();
        assert!(pool.is_empty());
        let ids: Vec<LocalId> = (0..12).map(|k| pool.intern(k % 4)).collect();
        assert_eq!(pool.len(), 4);
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(pool[id], k as u64 % 4);
        }
        assert_eq!(pool.lookup(&2), Some(ids[2]));
        assert_eq!(pool.lookup(&99), None);
        assert_eq!(pool.get(LocalId(99)), None);
        let in_order: Vec<u64> = pool.iter().map(|(_, &l)| l).collect();
        assert_eq!(in_order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn truncate_unwinds_to_a_prefix() {
        let mut pool = StatePool::new();
        let a = pool.intern(SimpleState::new(1, vec![]));
        let b = pool.intern(SimpleState::new(2, vec![]));
        pool.intern(SimpleState::new(3, vec![]));
        pool.intern(SimpleState::new(4, vec![]));
        pool.truncate(2);
        assert_eq!(pool.len(), 2);
        // Surviving ids still resolve and dropped states really left the
        // index: re-interning hands out fresh dense ids again.
        assert_eq!(pool.lookup(&SimpleState::new(1, vec![])), Some(a));
        assert_eq!(pool.lookup(&SimpleState::new(3, vec![])), None);
        let c = pool.intern(SimpleState::new(4, vec![]));
        assert_eq!(c, StateId(2));
        assert_eq!(pool.intern(SimpleState::new(2, vec![])), b);
    }

    #[test]
    fn hash_collisions_are_resolved_by_eq() {
        // Force every key into one bucket by interning through a pool of
        // unit-hash wrappers: distinct values must still get distinct ids.
        #[derive(PartialEq, Eq, Clone, Debug)]
        struct Degenerate(u64);
        impl Hash for Degenerate {
            fn hash<H: Hasher>(&self, state: &mut H) {
                0u64.hash(state); // pathological: everything collides
            }
        }
        let mut pool = StatePool::new();
        let ids: Vec<StateId> = (0..32).map(|k| pool.intern(Degenerate(k))).collect();
        assert_eq!(pool.len(), 32);
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(pool[id], Degenerate(k as u64));
            assert_eq!(pool.intern(Degenerate(k as u64)), id);
        }
    }
}
