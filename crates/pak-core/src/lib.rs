//! # pak-core — purely probabilistic systems and the PAK theorems
//!
//! This crate implements the formal model of *Probably Approximately
//! Knowing* (Zamir & Moses, PODC 2020):
//!
//! * **Purely probabilistic systems** (§2): a finite labelled tree
//!   `T = (V, E, π)` inducing a prior probability space over runs —
//!   [`pps::Pps`], built with [`pps::PpsBuilder`].
//! * **Facts** (§2.3): conditions over points, the `@`-operators
//!   (`ϕ@ℓ`, `ϕ@α`), past-basedness — [`fact`].
//! * **Probabilistic beliefs** (§3): the posterior `β_i(ϕ) = µ_T(ϕ@ℓ | ℓ)`
//!   — [`belief`], with [`belief::ActionAnalysis`] bundling every quantity
//!   the paper derives for an `(agent, action, fact)` triple.
//! * **Probabilistic constraints** (Definition 3.2): `µ_T(ϕ@α | α) ≥ p` —
//!   [`constraint`].
//! * **Local-state independence** (Definition 4.1) and Lemma 4.3's
//!   sufficient conditions — [`independence`].
//! * **The theorems** (§§4–7): sufficiency, necessity, the expectation
//!   theorem, and the PAK bounds, each as a checkable function returning a
//!   structured report — [`theorems`].
//!
//! Everything is generic over the numeric type through
//! [`prob::Probability`]; use [`pak_num::Rational`] for exact verification
//! (the expectation theorem is an *equality*) and `f64` for fast sweeps.
//!
//! # Example: a probabilistic constraint, analysed exactly
//!
//! ```
//! use pak_core::prelude::*;
//! use pak_num::Rational;
//!
//! // A two-run coin system: the agent acts blindly; ϕ = "heads".
//! let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
//! let h = b.initial(SimpleState::new(1, vec![0]), Rational::from_ratio(99, 100))?;
//! let t = b.initial(SimpleState::new(0, vec![0]), Rational::from_ratio(1, 100))?;
//! let fire = ActionId(0);
//! b.child(h, SimpleState::new(1, vec![0]), Rational::one(), &[(AgentId(0), fire)])?;
//! b.child(t, SimpleState::new(0, vec![0]), Rational::one(), &[(AgentId(0), fire)])?;
//! let pps = b.build()?;
//!
//! let heads = StateFact::<SimpleState>::new("heads", |g| g.env == 1);
//! let analysis = ActionAnalysis::new(&pps, AgentId(0), fire, &heads).unwrap();
//!
//! // µ(ϕ@α | α) = 0.99, and (Theorem 6.2) the expected belief equals it.
//! assert_eq!(analysis.constraint_probability(), Rational::from_ratio(99, 100));
//! assert_eq!(analysis.expected_belief(), Rational::from_ratio(99, 100));
//! # Ok::<(), PpsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod belief;
pub mod cancel;
pub mod constraint;
pub mod error;
pub mod event;
pub mod fact;
pub mod failpoint;
pub mod generator;
pub mod hash;
pub mod ids;
pub mod independence;
pub mod intern;
pub mod pps;
pub mod prob;
pub mod state;
pub mod theorems;
pub mod trace;
pub mod viz;

/// Convenient glob-import of the most commonly used items.
///
/// ```
/// use pak_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::belief::{ActionAnalysis, Beliefs, FrontierEntry, RunBelief};
    pub use crate::constraint::{ConstraintEvaluation, ProbabilisticConstraint};
    pub use crate::error::{AnalysisError, PpsError};
    pub use crate::event::RunSet;
    pub use crate::fact::{
        AndFact, DoesFact, Fact, Facts, FalseFact, FnFact, NotFact, OrFact, StateFact, TrueFact,
    };
    pub use crate::ids::{ActionId, AgentId, CellId, LocalId, NodeId, Point, RunId, StateId, Time};
    pub use crate::independence::{
        check_lemma43, check_local_state_independence, is_local_state_independent,
    };
    pub use crate::intern::{LocalPool, StatePool};
    pub use crate::pps::{BuildOptions, Cell, Pps, PpsBuilder, PpsExtender};
    pub use crate::prob::Probability;
    pub use crate::state::{GlobalState, LocalState, SimpleState};
    pub use crate::theorems::{
        check_expectation, check_kop_limit, check_necessity, check_pak, check_pak_corollary,
        check_sufficiency, pak_frontier,
    };
}
