//! Subjective probabilistic beliefs (§3).
//!
//! Agent `i`'s degree of belief in a fact `ϕ` at a point `(r, t)` is the
//! posterior probability obtained by conditioning the prior `µ_T` on `i`'s
//! local state `ℓ = r_i(t)`:
//!
//! ```text
//! β_i(ϕ)  at (r, t)   :=   µ_T(ϕ@ℓ | ℓ)
//! ```
//!
//! (Definition 3.1). Because every local state in a pps has positive
//! measure, the posterior is always well defined. This is the `P_post`
//! notion of Halpern–Tuttle, as the paper notes.

use crate::error::AnalysisError;
use crate::fact::{Fact, Facts};
use crate::ids::{ActionId, AgentId, CellId, Point, RunId};
use crate::pps::Pps;
use crate::prob::Probability;
use crate::state::GlobalState;

/// Belief-evaluation methods on a pps.
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
///
/// // One agent; a hidden fair coin is flipped before time 0. The agent's
/// // local state (0 in both cases) reveals nothing.
/// let mut b = PpsBuilder::<SimpleState, f64>::new(1);
/// b.initial(SimpleState::new(1, vec![0]), 0.5)?; // heads, hidden
/// b.initial(SimpleState::new(2, vec![0]), 0.5)?; // tails, hidden
/// let pps = b.build()?;
///
/// let heads = StateFact::<SimpleState>::new("heads", |g| g.env == 1);
/// // With no information, the posterior equals the prior: ½.
/// let belief = pps
///     .belief(AgentId(0), &heads, Point { run: RunId(0), time: 0 })
///     .unwrap();
/// assert_eq!(belief, 0.5);
/// # Ok::<(), PpsError>(())
/// ```
pub trait Beliefs<G: GlobalState, P: Probability> {
    /// `β_i(ϕ)` at a point: the agent's posterior degree of belief in `ϕ`
    /// given its local state there (Definition 3.1).
    ///
    /// Returns `None` if the run has ended before `point.time`.
    fn belief(&self, agent: AgentId, fact: &dyn Fact<G, P>, point: Point) -> Option<P>;

    /// `µ_T(ϕ@ℓ | ℓ)` for the local state of `cell` — the belief shared by
    /// every point of the cell.
    fn belief_in_cell(&self, fact: &dyn Fact<G, P>, cell: CellId) -> P;

    /// The random variable `(β_i(ϕ)@α)[r]`: the agent's belief in `ϕ` at
    /// the point of `run` where it performs the proper action `action`, or
    /// zero if the action is not performed in `run` (the paper's
    /// convention, §3.1).
    fn belief_at_action(
        &self,
        agent: AgentId,
        action: ActionId,
        fact: &dyn Fact<G, P>,
        run: RunId,
    ) -> P;
}

impl<G: GlobalState, P: Probability> Beliefs<G, P> for Pps<G, P> {
    fn belief(&self, agent: AgentId, fact: &dyn Fact<G, P>, point: Point) -> Option<P> {
        let cell = self.cell_at(agent, point)?;
        Some(self.belief_in_cell(fact, cell))
    }

    fn belief_in_cell(&self, fact: &dyn Fact<G, P>, cell: CellId) -> P {
        // Borrow the cell's run-set straight out of the index instead of
        // cloning it through `cell_event` — conditioning only reads it.
        let l_event = self.cell_runs(cell);
        let phi_at_l = self.fact_at_cell(fact, cell);
        self.conditional(&phi_at_l, l_event)
            .expect("every local state in a pps has positive measure")
    }

    fn belief_at_action(
        &self,
        agent: AgentId,
        action: ActionId,
        fact: &dyn Fact<G, P>,
        run: RunId,
    ) -> P {
        match self.action_point(agent, action, run) {
            None => P::zero(),
            Some(pt) => self
                .belief(agent, fact, pt)
                .expect("action point lies within the run"),
        }
    }
}

/// A complete analysis of one `(agent, action, fact)` triple over a pps.
///
/// Constructing the analysis verifies that the action is *proper* (§3.1) and
/// precomputes the per-run belief values `β_i(ϕ)@α`, the action event
/// `R_α`, and the event `ϕ@α`. All the quantities of §§4–7 are then
/// available as cheap accessors:
///
/// * [`constraint_probability`](ActionAnalysis::constraint_probability) —
///   `µ_T(ϕ@α | α)`,
/// * [`expected_belief`](ActionAnalysis::expected_belief) —
///   `E_µ(β_i(ϕ)@α | α)` (Definition 6.1),
/// * [`threshold_measure`](ActionAnalysis::threshold_measure) —
///   `µ_T(β_i(ϕ)@α ≥ q | α)`,
/// * [`min_belief_when_acting`](ActionAnalysis::min_belief_when_acting).
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// // Figure 1 of the paper: mixed action α/α′, ψ = ¬does(α).
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
/// let g0 = b.initial(SimpleState::zeroed(1), Rational::one())?;
/// let (i, alpha, alpha2) = (AgentId(0), ActionId(0), ActionId(1));
/// b.child(g0, SimpleState::zeroed(1), Rational::from_ratio(1, 2), &[(i, alpha)])?;
/// b.child(g0, SimpleState::zeroed(1), Rational::from_ratio(1, 2), &[(i, alpha2)])?;
/// let pps = b.build()?;
///
/// let psi = NotFact(DoesFact::new(i, alpha));
/// let a = ActionAnalysis::new(&pps, i, alpha, &psi).unwrap();
/// // µ(ψ@α | α) = 0 — ψ is false whenever α is performed…
/// assert!(a.constraint_probability().is_zero());
/// // …yet the agent's belief in ψ when acting is ½ (the mixed step).
/// assert_eq!(a.min_belief_when_acting(), Some(Rational::from_ratio(1, 2)));
/// # Ok::<(), PpsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ActionAnalysis<P> {
    agent: AgentId,
    action: ActionId,
    fact_label: String,
    /// µ_T(R_α).
    action_measure: P,
    /// µ_T(ϕ@α).
    fact_at_action_measure: P,
    /// Per run in R_α: (run, µ_T(r), β_i(ϕ)@α[r], ϕ holds at action point).
    per_run: Vec<RunBelief<P>>,
    /// The cells `L_i[α]`.
    action_cells: Vec<CellId>,
}

/// Per-run data of an [`ActionAnalysis`].
#[derive(Debug, Clone)]
pub struct RunBelief<P> {
    /// The run (a member of `R_α`).
    pub run: RunId,
    /// The prior probability `µ_T(r)`.
    pub prob: P,
    /// The belief `β_i(ϕ)@α[r]`.
    pub belief: P,
    /// Whether `ϕ` holds at the point where the action is performed.
    pub fact_holds: bool,
    /// The point at which the action is performed.
    pub point: Point,
}

impl<P: Probability> ActionAnalysis<P> {
    /// Analyses the triple, verifying the action is proper.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::ImproperAction`] if `action` is never
    /// performed by `agent`, or performed more than once in some run.
    pub fn new<G: GlobalState>(
        pps: &Pps<G, P>,
        agent: AgentId,
        action: ActionId,
        fact: &dyn Fact<G, P>,
    ) -> Result<Self, AnalysisError> {
        let mut performed = false;
        for run in pps.run_ids() {
            match pps.performance_count(agent, action, run) {
                0 => {}
                1 => performed = true,
                _ => {
                    return Err(AnalysisError::ImproperAction {
                        agent,
                        action,
                        never_performed: false,
                    })
                }
            }
        }
        if !performed {
            return Err(AnalysisError::ImproperAction {
                agent,
                action,
                never_performed: true,
            });
        }

        // Beliefs are constant across a local-state cell (Definition 3.1),
        // so evaluate the posterior once per cell and share it across all
        // runs acting from that cell, instead of re-conditioning per point.
        let mut cell_beliefs: std::collections::HashMap<CellId, P> =
            std::collections::HashMap::new();
        let mut per_run = Vec::new();
        let mut action_measure = P::zero();
        let mut fact_at_action_measure = P::zero();
        for run in pps.run_ids() {
            let Some(point) = pps.action_point(agent, action, run) else {
                continue;
            };
            let cell = pps
                .cell_at(agent, point)
                .expect("action point lies within the run");
            let belief = cell_beliefs
                .entry(cell)
                .or_insert_with(|| pps.belief_in_cell(fact, cell))
                .clone();
            let prob = pps.run_probability(run).clone();
            let fact_holds = fact.holds(pps, point);
            action_measure.add_assign(&prob);
            if fact_holds {
                fact_at_action_measure.add_assign(&prob);
            }
            per_run.push(RunBelief {
                run,
                prob,
                belief,
                fact_holds,
                point,
            });
        }

        Ok(ActionAnalysis {
            agent,
            action,
            fact_label: fact.label(),
            action_measure,
            fact_at_action_measure,
            per_run,
            action_cells: pps.action_cells(agent, action),
        })
    }

    /// The acting agent.
    #[must_use]
    pub fn agent(&self) -> AgentId {
        self.agent
    }

    /// The analysed action.
    #[must_use]
    pub fn action(&self) -> ActionId {
        self.action
    }

    /// The label of the analysed fact.
    #[must_use]
    pub fn fact_label(&self) -> &str {
        &self.fact_label
    }

    /// `µ_T(R_α)`: the prior probability that the action is performed.
    #[must_use]
    pub fn action_measure(&self) -> &P {
        &self.action_measure
    }

    /// `µ_T(ϕ@α | α)`: the probability that the condition holds when the
    /// action is performed — the left-hand side of a probabilistic
    /// constraint (Definition 3.2).
    #[must_use]
    pub fn constraint_probability(&self) -> P {
        self.fact_at_action_measure.div(&self.action_measure)
    }

    /// Whether the probabilistic constraint `µ_T(ϕ@α | α) ≥ p` is
    /// satisfied.
    #[must_use]
    pub fn satisfies_constraint(&self, p: &P) -> bool {
        self.constraint_probability().at_least(p)
    }

    /// `E_µ(β_i(ϕ)@α | α)`: the expected degree of belief when acting
    /// (Definition 6.1).
    #[must_use]
    pub fn expected_belief(&self) -> P {
        let mut acc = P::zero();
        for rb in &self.per_run {
            acc.add_assign(&rb.prob.mul(&rb.belief));
        }
        acc.div(&self.action_measure)
    }

    /// `µ_T(β_i(ϕ)@α ≥ q | α)`: the measure of runs, conditioned on the
    /// action being performed, in which the belief when acting meets the
    /// threshold `q`.
    #[must_use]
    pub fn threshold_measure(&self, q: &P) -> P {
        let mut acc = P::zero();
        for rb in &self.per_run {
            if rb.belief.at_least(q) {
                acc.add_assign(&rb.prob);
            }
        }
        acc.div(&self.action_measure)
    }

    /// The minimum belief over all points where the action is performed, or
    /// `None` if the action is never performed (impossible for proper
    /// actions).
    #[must_use]
    pub fn min_belief_when_acting(&self) -> Option<P> {
        self.per_run
            .iter()
            .map(|rb| rb.belief.clone())
            .reduce(|a, b| if b.at_least(&a) { a } else { b })
    }

    /// The maximum belief over all points where the action is performed.
    #[must_use]
    pub fn max_belief_when_acting(&self) -> Option<P> {
        self.per_run
            .iter()
            .map(|rb| rb.belief.clone())
            .reduce(|a, b| if a.at_least(&b) { a } else { b })
    }

    /// The per-run belief records (each run of `R_α` exactly once).
    #[must_use]
    pub fn runs(&self) -> &[RunBelief<P>] {
        &self.per_run
    }

    /// The distinct belief values when acting, with the conditional measure
    /// of the runs attaining each, sorted ascending by belief.
    #[must_use]
    pub fn belief_distribution(&self) -> Vec<(P, P)> {
        let mut entries: Vec<(P, P)> = Vec::new();
        for rb in &self.per_run {
            let cond = rb.prob.div(&self.action_measure);
            match entries.iter_mut().find(|(b, _)| b.approx_eq(&rb.belief)) {
                Some((_, m)) => m.add_assign(&cond),
                None => entries.push((rb.belief.clone(), cond)),
            }
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("belief values are ordered"));
        entries
    }

    /// The set of local states `L_i[α]` at which the action is performed.
    #[must_use]
    pub fn action_cells(&self) -> &[CellId] {
        &self.action_cells
    }

    /// The §8 frontier: what the agent could achieve by *refraining* from
    /// the action at low-belief information states.
    ///
    /// For each distinct belief value `b` attained when acting (descending),
    /// the entry records the policy "act only where `β_i(ϕ) ≥ b`": the
    /// fraction of the original acting measure kept, and the success
    /// probability `µ(ϕ@α | α)` the restricted policy would achieve — by
    /// Theorem 6.2, the belief-weighted average over the kept states.
    ///
    /// The first entry is the safest liveness-reduced policy; the last
    /// (threshold = min belief) is the original behaviour. Success is
    /// non-increasing along the frontier, formalising the paper's §8
    /// observation that acting under low belief reduces success.
    #[must_use]
    pub fn refrain_frontier(&self) -> Vec<FrontierEntry<P>> {
        let dist = self.belief_distribution(); // ascending by belief
        let mut out = Vec::with_capacity(dist.len());
        let mut kept_mass = P::zero();
        let mut kept_weighted = P::zero();
        for (belief, measure) in dist.into_iter().rev() {
            kept_mass.add_assign(&measure);
            kept_weighted.add_assign(&measure.mul(&belief));
            out.push(FrontierEntry {
                belief_threshold: belief,
                kept_action_measure: kept_mass.clone(),
                success: kept_weighted.div(&kept_mass),
            });
        }
        out
    }
}

/// One point of the [`ActionAnalysis::refrain_frontier`]: the outcome of
/// acting only at information states with belief at least
/// `belief_threshold`.
#[derive(Debug, Clone)]
pub struct FrontierEntry<P> {
    /// The belief cutoff defining the restricted policy.
    pub belief_threshold: P,
    /// The fraction of the original conditional acting measure kept.
    pub kept_action_measure: P,
    /// `µ(ϕ@α | α)` of the restricted policy (by Theorem 6.2, the
    /// belief-weighted average over kept states).
    pub success: P,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AnalysisError;
    use crate::fact::{DoesFact, NotFact, StateFact, TrueFact};
    use crate::pps::PpsBuilder;
    use crate::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn st(env: u64, locals: &[u64]) -> SimpleState {
        SimpleState::new(env, locals.to_vec())
    }

    /// Figure 1 of the paper.
    fn figure1() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        b.child(g0, st(0, &[1]), r(1, 2), &[(AgentId(0), ActionId(0))])
            .unwrap();
        b.child(g0, st(0, &[2]), r(1, 2), &[(AgentId(0), ActionId(1))])
            .unwrap();
        b.build().unwrap()
    }

    /// The Theorem 5.2 system Tˆ(p, ε) from Figure 2.
    fn theorem52(p: Rational, eps: Rational) -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::new(2);
        // Agent 0 = i (the actor), agent 1 = j (holds `bit`).
        // Initial: bit=1 w.p. p, bit=0 w.p. 1−p. Locals: [i_data, j_bit].
        let s1 = b.initial(st(0, &[0, 1]), p.clone()).unwrap();
        let s0 = b.initial(st(0, &[0, 0]), p.one_minus()).unwrap();
        // Round 1: j sends m_j or m'_j; i's local records the message (1=m, 2=m').
        // From s0 (bit=0): j sends m_j surely.
        let alpha = ActionId(0);
        let i = AgentId(0);
        let t0 = b.child(s0, st(0, &[1, 0]), Rational::one(), &[]).unwrap();
        // From s1 (bit=1): m_j w.p. 1−ε/p, m'_j w.p. ε/p.
        let eps_over_p = &eps / &p;
        let t1m = b
            .child(s1, st(0, &[1, 1]), eps_over_p.one_minus(), &[])
            .unwrap();
        let t1m2 = b.child(s1, st(0, &[2, 1]), eps_over_p, &[]).unwrap();
        // Round 2: i unconditionally performs α.
        b.child(t0, st(0, &[1, 0]), Rational::one(), &[(i, alpha)])
            .unwrap();
        b.child(t1m, st(0, &[1, 1]), Rational::one(), &[(i, alpha)])
            .unwrap();
        b.child(t1m2, st(0, &[2, 1]), Rational::one(), &[(i, alpha)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn improper_action_rejected() {
        let pps = figure1();
        let err = ActionAnalysis::new(&pps, AgentId(0), ActionId(9), &TrueFact).unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::ImproperAction {
                never_performed: true,
                ..
            }
        ));
    }

    #[test]
    fn figure1_sufficiency_counterexample_quantities() {
        // §4: ψ = ¬does(α). β_i(ψ) = ½ whenever α is performed, yet
        // µ(ψ@α | α) = 0.
        let pps = figure1();
        let psi = NotFact(DoesFact::new(AgentId(0), ActionId(0)));
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &psi).unwrap();
        assert_eq!(a.constraint_probability(), Rational::zero());
        assert_eq!(a.min_belief_when_acting(), Some(r(1, 2)));
        assert_eq!(a.max_belief_when_acting(), Some(r(1, 2)));
        assert!(!a.satisfies_constraint(&r(1, 2)));
    }

    #[test]
    fn figure1_expectation_counterexample_quantities() {
        // §6: ϕ = does(α). µ(ϕ@α | α) = 1 but E[β@α | α] = ½.
        let pps = figure1();
        let phi = DoesFact::new(AgentId(0), ActionId(0));
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &phi).unwrap();
        assert_eq!(a.constraint_probability(), Rational::one());
        assert_eq!(a.expected_belief(), r(1, 2));
    }

    #[test]
    fn theorem52_exact_quantities() {
        // p = 3/4, ε = 1/4: µ(ϕ@α|α) = p; µ(β ≥ p | α) = ε;
        // merged-state belief = (p−ε)/(1−ε).
        let (p, eps) = (r(3, 4), r(1, 4));
        let pps = theorem52(p.clone(), eps.clone());
        let bit_is_one = StateFact::<SimpleState>::new("bit=1", |g| g.locals[1] == 1);
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &bit_is_one).unwrap();

        assert_eq!(a.constraint_probability(), p);
        assert_eq!(a.threshold_measure(&p), eps);
        let merged = (&p - &eps) / eps.one_minus();
        assert_eq!(a.min_belief_when_acting(), Some(merged));
        assert_eq!(a.max_belief_when_acting(), Some(Rational::one()));
        // Theorem 6.2 instance: E[β@α|α] = µ(ϕ@α|α).
        assert_eq!(a.expected_belief(), a.constraint_probability());
    }

    #[test]
    fn belief_distribution_sums_to_one() {
        let (p, eps) = (r(9, 10), r(1, 10));
        let pps = theorem52(p, eps);
        let phi = StateFact::<SimpleState>::new("bit=1", |g| g.locals[1] == 1);
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &phi).unwrap();
        let dist = a.belief_distribution();
        let total: Rational = dist.iter().map(|(_, m)| m.clone()).sum();
        assert_eq!(total, Rational::one());
        // Two distinct belief values: (p−ε)/(1−ε) and 1.
        assert_eq!(dist.len(), 2);
        assert!(dist[0].0 < dist[1].0);
    }

    #[test]
    fn belief_is_cell_constant() {
        let pps = theorem52(r(1, 2), r(1, 4));
        let phi = StateFact::<SimpleState>::new("bit=1", |g| g.locals[1] == 1);
        for (cell_id, cell) in pps.cells() {
            if cell.agent != AgentId(0) {
                continue;
            }
            let expected = pps.belief_in_cell(&phi, cell_id);
            for pt in pps.cell_points(cell) {
                assert_eq!(pps.belief(AgentId(0), &phi, pt), Some(expected.clone()));
            }
        }
    }

    #[test]
    fn belief_of_tautology_is_one() {
        let pps = figure1();
        for pt in pps.points().collect::<Vec<_>>() {
            let b = pps.belief(AgentId(0), &TrueFact, pt).unwrap();
            assert_eq!(b, Rational::one());
        }
    }

    #[test]
    fn belief_at_action_zero_convention() {
        let pps = figure1();
        // Run 1 performs α′, not α: the random variable is 0 there.
        let phi = TrueFact;
        let alpha_runs = pps.action_event(AgentId(0), ActionId(0));
        for run in pps.run_ids() {
            let v = pps.belief_at_action(AgentId(0), ActionId(0), &phi, run);
            if alpha_runs.contains(run) {
                assert_eq!(v, Rational::one());
            } else {
                assert_eq!(v, Rational::zero());
            }
        }
    }

    #[test]
    fn refrain_frontier_is_monotone_and_anchored() {
        // On Tˆ(3/4, 1/4): beliefs are {2/3 (mass 3/4), 1 (mass 1/4)}.
        let pps = theorem52(r(3, 4), r(1, 4));
        let phi = StateFact::<SimpleState>::new("bit=1", |g: &SimpleState| g.locals[1] == 1);
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &phi).unwrap();
        let frontier = a.refrain_frontier();
        assert_eq!(frontier.len(), 2);
        // Safest restriction: act only at the certain state.
        assert_eq!(frontier[0].belief_threshold, Rational::one());
        assert_eq!(frontier[0].kept_action_measure, r(1, 4));
        assert_eq!(frontier[0].success, Rational::one());
        // Full policy: reproduces the unrestricted analysis exactly.
        assert_eq!(frontier[1].kept_action_measure, Rational::one());
        assert_eq!(frontier[1].success, a.constraint_probability());
        // §8 monotonicity: success never increases as more states act.
        assert!(frontier[0].success >= frontier[1].success);
    }

    #[test]
    fn refrain_frontier_single_belief_value() {
        let pps = figure1();
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &TrueFact).unwrap();
        let frontier = a.refrain_frontier();
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].kept_action_measure, Rational::one());
    }

    #[test]
    fn accessors() {
        let pps = figure1();
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &TrueFact).unwrap();
        assert_eq!(a.agent(), AgentId(0));
        assert_eq!(a.action(), ActionId(0));
        assert_eq!(a.fact_label(), "⊤");
        assert_eq!(a.action_measure(), &r(1, 2));
        assert_eq!(a.runs().len(), 1);
        assert_eq!(a.action_cells().len(), 1);
    }
}
