//! Local-state independence (Definition 4.1) and its sufficient conditions
//! (Lemma 4.3).
//!
//! A fact `ϕ` is *local-state independent* of a proper action `α` of agent
//! `i` in `T` if, for every local state `ℓ_i ∈ L_i`,
//!
//! ```text
//! µ_T(ϕ@ℓ_i | ℓ_i) · µ_T(α@ℓ_i | ℓ_i)  =  µ_T([ϕ ∧ α]@ℓ_i | ℓ_i)
//! ```
//!
//! Intuitively, whether `ϕ` holds at a point is independent of whether the
//! agent's (possibly mixed) protocol chooses `α` there. The paper's
//! Lemma 4.3 gives two broadly applicable sufficient conditions, both of
//! which the library can *check* on any concrete system:
//!
//! * `α` is a deterministic action for `i`
//!   ([`Facts::is_deterministic_action`](crate::fact::Facts)), or
//! * `ϕ` is past-based ([`Facts::is_past_based`](crate::fact::Facts)).

use crate::fact::{AndFact, DoesFact, Fact, Facts};
use crate::ids::{ActionId, AgentId, CellId};
use crate::pps::Pps;
use crate::prob::Probability;
use crate::state::GlobalState;

/// The outcome of checking Definition 4.1 on a system.
#[derive(Debug, Clone)]
pub struct IndependenceReport<P> {
    /// Whether the fact is local-state independent of the action.
    pub independent: bool,
    /// The first violating local state, if any, with the two sides of the
    /// defining equation: `(cell, lhs = µ(ϕ@ℓ|ℓ)·µ(α@ℓ|ℓ), rhs = µ([ϕ∧α]@ℓ|ℓ))`.
    pub violation: Option<(CellId, P, P)>,
    /// Number of local states examined.
    pub cells_checked: usize,
}

/// Checks whether `fact` is local-state independent of `action` for `agent`
/// (Definition 4.1), returning a detailed report.
///
/// All local states of the agent are examined (the definition quantifies
/// over `L_i`, not just `L_i[α]`; for cells where the action is never
/// performed both sides are zero, so only performing cells can violate).
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
/// use pak_core::independence::check_local_state_independence;
/// use pak_num::Rational;
///
/// // Figure 1: ψ = ¬does(α) is NOT independent of α.
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
/// let g0 = b.initial(SimpleState::zeroed(1), Rational::one())?;
/// let (i, alpha) = (AgentId(0), ActionId(0));
/// b.child(g0, SimpleState::zeroed(1), Rational::from_ratio(1, 2), &[(i, alpha)])?;
/// b.child(g0, SimpleState::zeroed(1), Rational::from_ratio(1, 2), &[(i, ActionId(1))])?;
/// let pps = b.build()?;
///
/// let psi = NotFact(DoesFact::new(i, alpha));
/// let report = check_local_state_independence(&pps, &psi, i, alpha);
/// assert!(!report.independent);
/// # Ok::<(), PpsError>(())
/// ```
pub fn check_local_state_independence<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    fact: &dyn Fact<G, P>,
    agent: AgentId,
    action: ActionId,
) -> IndependenceReport<P> {
    let mut cells_checked = 0;
    for (cell_id, _) in pps.agent_cells(agent) {
        cells_checked += 1;
        let l = pps.cell_runs(cell_id);
        let phi_at_l = pps.fact_at_cell(fact, cell_id);
        let alpha_at_l = pps.action_at_cell(action, cell_id);
        let both_at_l = phi_at_l.intersection(&alpha_at_l);
        let ml = pps.measure(l);
        // µ(ℓ) > 0 always holds in a pps.
        let p_phi = pps.measure(&phi_at_l).div(&ml);
        let p_alpha = pps.measure(&alpha_at_l).div(&ml);
        let p_both = pps.measure(&both_at_l).div(&ml);
        let lhs = p_phi.mul(&p_alpha);
        if !lhs.approx_eq(&p_both) {
            return IndependenceReport {
                independent: false,
                violation: Some((cell_id, lhs, p_both)),
                cells_checked,
            };
        }
    }
    IndependenceReport {
        independent: true,
        violation: None,
        cells_checked,
    }
}

/// Convenience: `true` iff `fact` is local-state independent of `action`.
pub fn is_local_state_independent<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    fact: &dyn Fact<G, P>,
    agent: AgentId,
    action: ActionId,
) -> bool {
    check_local_state_independence(pps, fact, agent, action).independent
}

/// The two sufficient conditions of Lemma 4.3, as checked on a concrete
/// system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lemma43Report {
    /// Condition (a): the action is deterministic for the agent.
    pub action_deterministic: bool,
    /// Condition (b): the fact is past-based.
    pub fact_past_based: bool,
}

impl Lemma43Report {
    /// Whether Lemma 4.3 applies (either sufficient condition holds), which
    /// guarantees local-state independence.
    #[must_use]
    pub fn guarantees_independence(&self) -> bool {
        self.action_deterministic || self.fact_past_based
    }
}

/// Evaluates both sufficient conditions of Lemma 4.3.
pub fn check_lemma43<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    fact: &dyn Fact<G, P>,
    agent: AgentId,
    action: ActionId,
) -> Lemma43Report {
    Lemma43Report {
        action_deterministic: pps.is_deterministic_action(agent, action),
        fact_past_based: pps.is_past_based(fact),
    }
}

/// Checks the conjunction fact `[ϕ ∧ does_i(α)]` used in the definition —
/// exposed for tests and diagnostics.
#[must_use]
pub fn conjunction_with_action<G: GlobalState, P: Probability>(
    fact: impl Fact<G, P>,
    agent: AgentId,
    action: ActionId,
) -> AndFact<impl Fact<G, P>, DoesFact> {
    AndFact(fact, DoesFact::new(agent, action))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::{NotFact, StateFact};
    use crate::pps::PpsBuilder;
    use crate::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn st(env: u64, locals: &[u64]) -> SimpleState {
        SimpleState::new(env, locals.to_vec())
    }

    fn figure1() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        b.child(g0, st(0, &[1]), r(1, 2), &[(AgentId(0), ActionId(0))])
            .unwrap();
        b.child(g0, st(0, &[2]), r(1, 2), &[(AgentId(0), ActionId(1))])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1_psi_violates_lsi() {
        let pps = figure1();
        let psi = NotFact(DoesFact::new(AgentId(0), ActionId(0)));
        let report = check_local_state_independence(&pps, &psi, AgentId(0), ActionId(0));
        assert!(!report.independent);
        let (_, lhs, rhs) = report.violation.unwrap();
        // At the mixed time-0 cell: µ(ψ@ℓ|ℓ) = ½, µ(α@ℓ|ℓ) = ½ ⇒ lhs = ¼;
        // but ψ ∧ α is contradictory there ⇒ rhs = 0.
        assert_eq!(lhs, r(1, 4));
        assert_eq!(rhs, Rational::zero());
    }

    #[test]
    fn figure1_phi_does_also_violates_lsi() {
        let pps = figure1();
        let phi = DoesFact::new(AgentId(0), ActionId(0));
        assert!(!is_local_state_independent(
            &pps,
            &phi,
            AgentId(0),
            ActionId(0)
        ));
    }

    #[test]
    fn past_based_fact_is_lsi_under_mixing() {
        // Lemma 4.3(b): a state fact is independent of a mixed action.
        let pps = figure1();
        let phi = StateFact::<SimpleState>::new("⊤-state", |_| true);
        assert!(is_local_state_independent(
            &pps,
            &phi,
            AgentId(0),
            ActionId(0)
        ));
        let lemma = check_lemma43(&pps, &phi, AgentId(0), ActionId(0));
        assert!(lemma.fact_past_based);
        assert!(!lemma.action_deterministic);
        assert!(lemma.guarantees_independence());
    }

    #[test]
    fn deterministic_action_is_lsi_even_for_future_fact() {
        // Lemma 4.3(a): α deterministic ⇒ independence for any ϕ, even a
        // future-dependent one.
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        let alpha = ActionId(0);
        let mid = b
            .child(g0, st(0, &[0]), Rational::one(), &[(AgentId(0), alpha)])
            .unwrap();
        // After α, the environment branches (hidden from the agent).
        b.child(mid, st(1, &[0]), r(1, 2), &[]).unwrap();
        b.child(mid, st(2, &[0]), r(1, 2), &[]).unwrap();
        let pps = b.build().unwrap();

        // "env will be 1 at the end of this run" — future-dependent.
        let future =
            crate::fact::FnFact::new("env_final=1", |pps: &Pps<SimpleState, Rational>, pt| {
                let last = pps.run_len(pt.run) as u32 - 1;
                pps.state_at(crate::ids::Point {
                    run: pt.run,
                    time: last,
                })
                .is_some_and(|g| g.env == 1)
            });
        assert!(!pps.is_past_based(&future));
        assert!(pps.is_deterministic_action(AgentId(0), alpha));
        assert!(is_local_state_independent(&pps, &future, AgentId(0), alpha));
        let lemma = check_lemma43(&pps, &future, AgentId(0), alpha);
        assert!(lemma.action_deterministic && !lemma.fact_past_based);
    }

    #[test]
    fn mixed_action_with_future_fact_can_still_be_lsi_by_luck() {
        // LSI can hold without either Lemma 4.3 condition: conditions are
        // sufficient, not necessary. Example: ϕ = ⊤ with a mixed action.
        let pps = figure1();
        let top = crate::fact::TrueFact;
        assert!(is_local_state_independent(
            &pps,
            &top,
            AgentId(0),
            ActionId(0)
        ));
        let lemma = check_lemma43(&pps, &top, AgentId(0), ActionId(0));
        assert!(!lemma.action_deterministic);
        assert!(lemma.fact_past_based); // ⊤ is trivially past-based
    }

    #[test]
    fn report_counts_cells() {
        let pps = figure1();
        let top = crate::fact::TrueFact;
        let rep = check_local_state_independence(&pps, &top, AgentId(0), ActionId(0));
        // Agent 0 has 3 cells: merged t=0, and two t=1 singletons.
        assert_eq!(rep.cells_checked, 3);
    }

    #[test]
    fn conjunction_helper_labels() {
        let f = StateFact::<SimpleState>::new("x", |_| true);
        let c = conjunction_with_action::<SimpleState, Rational>(f, AgentId(0), ActionId(1));
        assert!(Fact::<SimpleState, Rational>::label(&c).contains("∧"));
    }
}
