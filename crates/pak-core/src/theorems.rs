//! The paper's theorems as checkable functions.
//!
//! Each function takes a concrete system together with an `(agent, action,
//! fact)` triple, evaluates the relevant premises and conclusions *exactly*
//! (when instantiated at `P = Rational`), and returns a structured report.
//! The reports double as reproduction artefacts: the benchmark harness
//! prints them as paper-vs-measured rows.
//!
//! | Paper statement | Function |
//! |-----------------|----------|
//! | Theorem 4.2 (sufficiency of meeting the threshold) | [`check_sufficiency`] |
//! | Lemma 5.1 (necessity of sometimes meeting it)      | [`check_necessity`] |
//! | Theorem 6.2 (expectation theorem)                  | [`check_expectation`] |
//! | Theorem 7.1 (PAK tradeoff)                         | [`check_pak`] |
//! | Corollary 7.2 (PAK with δ = ε)                     | [`check_pak_corollary`] |
//! | Lemma F.1 (KoP limit, p = 1)                       | [`check_kop_limit`] |
//!
//! Theorem 5.2 is an *existence* statement ("there is a system where the
//! threshold is met with arbitrarily small probability"); its witness
//! construction `Tˆ(p, ε)` lives in `pak-systems::threshold`, and its claims
//! are verified through [`crate::belief::ActionAnalysis`].

use crate::belief::ActionAnalysis;
use crate::error::AnalysisError;
use crate::fact::Fact;
use crate::ids::{ActionId, AgentId, Point};
use crate::independence::{check_local_state_independence, IndependenceReport};
use crate::pps::Pps;
use crate::prob::Probability;
use crate::state::GlobalState;

/// Report of a Theorem 4.2 check: if `β_i(ϕ) ≥ p` whenever `i` performs
/// `α`, and `ϕ` is local-state independent of `α`, then `µ(ϕ@α | α) ≥ p`.
#[derive(Debug, Clone)]
pub struct SufficiencyReport<P> {
    /// Whether the independence premise holds.
    pub independent: bool,
    /// The minimum belief at any performance point (the largest `p` for
    /// which the belief premise holds).
    pub min_belief: P,
    /// `µ(ϕ@α | α)`.
    pub constraint_probability: P,
    /// The theorem's conclusion for the given threshold: either the premise
    /// failed (vacuously true) or the constraint probability meets it.
    pub holds_at: P,
    /// Whether the theorem's implication holds at `holds_at`.
    pub implication_holds: bool,
}

/// Checks Theorem 4.2 at threshold `p`.
///
/// # Errors
///
/// Returns [`AnalysisError::ImproperAction`] if the action is not proper.
pub fn check_sufficiency<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    action: ActionId,
    fact: &dyn Fact<G, P>,
    p: &P,
) -> Result<SufficiencyReport<P>, AnalysisError> {
    let analysis = ActionAnalysis::new(pps, agent, action, fact)?;
    let independent = check_local_state_independence(pps, fact, agent, action).independent;
    let min_belief = analysis
        .min_belief_when_acting()
        .expect("proper actions are performed at least once");
    let constraint_probability = analysis.constraint_probability();
    let premise = independent && min_belief.at_least(p);
    let implication_holds = !premise || constraint_probability.at_least(p);
    Ok(SufficiencyReport {
        independent,
        min_belief,
        constraint_probability,
        holds_at: p.clone(),
        implication_holds,
    })
}

/// Report of a Lemma 5.1 check: if `µ(ϕ@α | α) ≥ p` (with independence),
/// then some performance point has `β_i(ϕ) ≥ p`.
#[derive(Debug, Clone)]
pub struct NecessityReport<P> {
    /// Whether the independence premise holds.
    pub independent: bool,
    /// `µ(ϕ@α | α)`.
    pub constraint_probability: P,
    /// The maximum belief at any performance point.
    pub max_belief: P,
    /// A performance point witnessing `β_i(ϕ) ≥ p`, if one exists.
    pub witness: Option<Point>,
    /// Whether the lemma's implication holds at the given threshold.
    pub implication_holds: bool,
}

/// Checks Lemma 5.1 at threshold `p`.
///
/// # Errors
///
/// Returns [`AnalysisError::ImproperAction`] if the action is not proper.
pub fn check_necessity<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    action: ActionId,
    fact: &dyn Fact<G, P>,
    p: &P,
) -> Result<NecessityReport<P>, AnalysisError> {
    let analysis = ActionAnalysis::new(pps, agent, action, fact)?;
    let independent = check_local_state_independence(pps, fact, agent, action).independent;
    let constraint_probability = analysis.constraint_probability();
    let max_belief = analysis
        .max_belief_when_acting()
        .expect("proper actions are performed at least once");
    let witness = analysis
        .runs()
        .iter()
        .find(|rb| rb.belief.at_least(p))
        .map(|rb| rb.point);
    let premise = independent && constraint_probability.at_least(p);
    let implication_holds = !premise || witness.is_some();
    Ok(NecessityReport {
        independent,
        constraint_probability,
        max_belief,
        witness,
        implication_holds,
    })
}

/// Report of a Theorem 6.2 check — the paper's main theorem:
/// `µ(ϕ@α | α) = E[β_i(ϕ)@α | α]` under local-state independence.
#[derive(Debug, Clone)]
pub struct ExpectationReport<P> {
    /// The independence check, with any violating local state.
    pub independence: IndependenceReport<P>,
    /// The left-hand side `µ(ϕ@α | α)`.
    pub lhs: P,
    /// The right-hand side `E[β_i(ϕ)@α | α]`.
    pub rhs: P,
    /// Whether the equality holds (exact for `Rational`).
    pub equal: bool,
}

impl<P: Probability> ExpectationReport<P> {
    /// Whether the theorem's implication holds: either the premise fails or
    /// the equality does hold.
    #[must_use]
    pub fn implication_holds(&self) -> bool {
        !self.independence.independent || self.equal
    }
}

/// Checks Theorem 6.2 (the expectation theorem).
///
/// # Errors
///
/// Returns [`AnalysisError::ImproperAction`] if the action is not proper.
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
/// use pak_core::theorems::check_expectation;
/// use pak_num::Rational;
///
/// // A deterministic action: independence is guaranteed (Lemma 4.3a), so
/// // the expectation theorem must hold exactly.
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
/// let g0 = b.initial(SimpleState::zeroed(1), Rational::one())?;
/// let mid = b.child(g0, SimpleState::zeroed(1), Rational::one(), &[(AgentId(0), ActionId(0))])?;
/// b.child(mid, SimpleState::new(1, vec![0]), Rational::from_ratio(1, 3), &[])?;
/// b.child(mid, SimpleState::new(2, vec![0]), Rational::from_ratio(2, 3), &[])?;
/// let pps = b.build()?;
///
/// let phi = StateFact::<SimpleState>::new("env=1 eventually", |g| g.env == 1);
/// let report = check_expectation(&pps, AgentId(0), ActionId(0), &phi).unwrap();
/// assert!(report.independence.independent);
/// assert!(report.equal);
/// # Ok::<(), PpsError>(())
/// ```
pub fn check_expectation<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    action: ActionId,
    fact: &dyn Fact<G, P>,
) -> Result<ExpectationReport<P>, AnalysisError> {
    let analysis = ActionAnalysis::new(pps, agent, action, fact)?;
    let independence = check_local_state_independence(pps, fact, agent, action);
    let lhs = analysis.constraint_probability();
    let rhs = analysis.expected_belief();
    let equal = lhs.approx_eq(&rhs);
    Ok(ExpectationReport {
        independence,
        lhs,
        rhs,
        equal,
    })
}

/// Report of a Theorem 7.1 / Corollary 7.2 check: if
/// `µ(ϕ@α | α) ≥ 1 − δε`, then `µ(β_i(ϕ)@α ≥ 1 − ε | α) ≥ 1 − δ`.
#[derive(Debug, Clone)]
pub struct PakReport<P> {
    /// Whether the independence premise holds.
    pub independent: bool,
    /// `µ(ϕ@α | α)`.
    pub constraint_probability: P,
    /// The premise threshold `1 − δε`.
    pub premise_threshold: P,
    /// Whether the premise `µ(ϕ@α | α) ≥ 1 − δε` holds.
    pub premise_holds: bool,
    /// `µ(β_i(ϕ)@α ≥ 1 − ε | α)`.
    pub strong_belief_measure: P,
    /// The conclusion threshold `1 − δ`.
    pub conclusion_threshold: P,
    /// Whether the implication holds.
    pub implication_holds: bool,
}

/// Checks Theorem 7.1 for parameters `δ` (probability slack) and `ε`
/// (belief slack).
///
/// # Errors
///
/// Returns [`AnalysisError::ImproperAction`] if the action is not proper.
pub fn check_pak<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    action: ActionId,
    fact: &dyn Fact<G, P>,
    delta: &P,
    eps: &P,
) -> Result<PakReport<P>, AnalysisError> {
    let analysis = ActionAnalysis::new(pps, agent, action, fact)?;
    let independent = check_local_state_independence(pps, fact, agent, action).independent;
    let constraint_probability = analysis.constraint_probability();
    let premise_threshold = delta.mul(eps).one_minus();
    let premise_holds = independent && constraint_probability.at_least(&premise_threshold);
    let strong_belief_measure = analysis.threshold_measure(&eps.one_minus());
    let conclusion_threshold = delta.one_minus();
    let implication_holds = !premise_holds || strong_belief_measure.at_least(&conclusion_threshold);
    Ok(PakReport {
        independent,
        constraint_probability,
        premise_threshold,
        premise_holds,
        strong_belief_measure,
        conclusion_threshold,
        implication_holds,
    })
}

/// Checks Corollary 7.2 — Theorem 7.1 with `δ = ε`: if
/// `µ(ϕ@α | α) ≥ 1 − ε²` then `µ(β ≥ 1 − ε | α) ≥ 1 − ε`
/// ("probably approximately knowing").
///
/// # Errors
///
/// Returns [`AnalysisError::ImproperAction`] if the action is not proper.
pub fn check_pak_corollary<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    action: ActionId,
    fact: &dyn Fact<G, P>,
    eps: &P,
) -> Result<PakReport<P>, AnalysisError> {
    check_pak(pps, agent, action, fact, eps, eps)
}

/// Report of a Lemma F.1 check (the Knowledge-of-Preconditions limit):
/// if `µ(ϕ@α | α) = 1` then the agent believes `ϕ` with probability 1 at
/// every performance point.
#[derive(Debug, Clone)]
pub struct KopLimitReport<P> {
    /// Whether the independence premise holds.
    pub independent: bool,
    /// `µ(ϕ@α | α)`.
    pub constraint_probability: P,
    /// `µ(β_i(ϕ)@α = 1 | α)`.
    pub certainty_measure: P,
    /// Whether the implication holds.
    pub implication_holds: bool,
}

/// Checks Lemma F.1.
///
/// # Errors
///
/// Returns [`AnalysisError::ImproperAction`] if the action is not proper.
pub fn check_kop_limit<G: GlobalState, P: Probability>(
    pps: &Pps<G, P>,
    agent: AgentId,
    action: ActionId,
    fact: &dyn Fact<G, P>,
) -> Result<KopLimitReport<P>, AnalysisError> {
    let analysis = ActionAnalysis::new(pps, agent, action, fact)?;
    let independent = check_local_state_independence(pps, fact, agent, action).independent;
    let constraint_probability = analysis.constraint_probability();
    let certainty_measure = analysis.threshold_measure(&P::one());
    let premise = independent && constraint_probability.is_one();
    let implication_holds = !premise || certainty_measure.is_one();
    Ok(KopLimitReport {
        independent,
        constraint_probability,
        certainty_measure,
        implication_holds,
    })
}

/// The PAK frontier transform of Corollary 7.2's closing remark: to satisfy
/// a constraint with threshold `p`, the condition must be believed with
/// degree ≥ `p′` with probability ≥ `p′`, where `p′ = 1 − √(1 − p)`.
///
/// Exact square roots are not generally rational, so the frontier is
/// computed in `f64`.
///
/// # Examples
///
/// ```
/// use pak_core::theorems::pak_frontier;
/// assert!((pak_frontier(0.99) - 0.9).abs() < 1e-12);
/// assert_eq!(pak_frontier(1.0), 1.0);
/// ```
#[must_use]
pub fn pak_frontier(p: f64) -> f64 {
    1.0 - (1.0 - p).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::{DoesFact, NotFact, StateFact};
    use crate::pps::PpsBuilder;
    use crate::state::SimpleState;
    use pak_num::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn st(env: u64, locals: &[u64]) -> SimpleState {
        SimpleState::new(env, locals.to_vec())
    }

    fn figure1() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        b.child(g0, st(0, &[1]), r(1, 2), &[(AgentId(0), ActionId(0))])
            .unwrap();
        b.child(g0, st(0, &[2]), r(1, 2), &[(AgentId(0), ActionId(1))])
            .unwrap();
        b.build().unwrap()
    }

    /// Tˆ(p, ε) from Figure 2 (duplicated small helper; the full
    /// parameterised constructor lives in pak-systems).
    fn theorem52(p: Rational, eps: Rational) -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::new(2);
        let s1 = b.initial(st(0, &[0, 1]), p.clone()).unwrap();
        let s0 = b.initial(st(0, &[0, 0]), p.one_minus()).unwrap();
        let alpha = ActionId(0);
        let i = AgentId(0);
        let eps_over_p = &eps / &p;
        let t0 = b.child(s0, st(0, &[1, 0]), Rational::one(), &[]).unwrap();
        let t1m = b
            .child(s1, st(0, &[1, 1]), eps_over_p.one_minus(), &[])
            .unwrap();
        let t1m2 = b.child(s1, st(0, &[2, 1]), eps_over_p, &[]).unwrap();
        b.child(t0, st(0, &[1, 0]), Rational::one(), &[(i, alpha)])
            .unwrap();
        b.child(t1m, st(0, &[1, 1]), Rational::one(), &[(i, alpha)])
            .unwrap();
        b.child(t1m2, st(0, &[2, 1]), Rational::one(), &[(i, alpha)])
            .unwrap();
        b.build().unwrap()
    }

    fn bit_fact() -> StateFact<SimpleState> {
        StateFact::new("bit=1", |g: &SimpleState| g.locals[1] == 1)
    }

    #[test]
    fn expectation_theorem_on_theorem52_family() {
        for (p, e) in [
            (r(3, 4), r(1, 4)),
            (r(9, 10), r(1, 100)),
            (r(1, 2), r(1, 3)),
        ] {
            let pps = theorem52(p.clone(), e);
            let rep = check_expectation(&pps, AgentId(0), ActionId(0), &bit_fact()).unwrap();
            assert!(rep.independence.independent);
            assert!(rep.equal, "lhs={} rhs={}", rep.lhs, rep.rhs);
            assert_eq!(rep.lhs, p);
            assert!(rep.implication_holds());
        }
    }

    #[test]
    fn expectation_fails_without_independence() {
        // Figure 1 with ϕ = does(α): premise fails, equality fails, but the
        // *implication* still holds (vacuously).
        let pps = figure1();
        let phi = DoesFact::new(AgentId(0), ActionId(0));
        let rep = check_expectation(&pps, AgentId(0), ActionId(0), &phi).unwrap();
        assert!(!rep.independence.independent);
        assert!(!rep.equal);
        assert_eq!(rep.lhs, Rational::one());
        assert_eq!(rep.rhs, r(1, 2));
        assert!(rep.implication_holds());
    }

    #[test]
    fn sufficiency_counterexample_is_vacuous() {
        // Figure 1, ψ = ¬does(α), p = ½: belief premise holds but
        // independence fails, so the implication is vacuously true; and
        // indeed µ(ψ@α|α) = 0 < ½ shows the independence premise matters.
        let pps = figure1();
        let psi = NotFact(DoesFact::new(AgentId(0), ActionId(0)));
        let rep = check_sufficiency(&pps, AgentId(0), ActionId(0), &psi, &r(1, 2)).unwrap();
        assert!(!rep.independent);
        assert_eq!(rep.min_belief, r(1, 2));
        assert_eq!(rep.constraint_probability, Rational::zero());
        assert!(rep.implication_holds);
    }

    #[test]
    fn sufficiency_holds_with_independence() {
        let pps = theorem52(r(3, 4), r(1, 4));
        let rep = check_sufficiency(
            &pps,
            AgentId(0),
            ActionId(0),
            &bit_fact(),
            &r(2, 3), // the merged-state belief is exactly 2/3
        )
        .unwrap();
        assert!(rep.independent);
        assert_eq!(rep.min_belief, r(2, 3));
        // min belief ≥ 2/3 and independence ⇒ µ ≥ 2/3; indeed µ = 3/4.
        assert!(rep.implication_holds);
        assert_eq!(rep.constraint_probability, r(3, 4));
    }

    #[test]
    fn necessity_witness_exists() {
        let pps = theorem52(r(3, 4), r(1, 4));
        let rep = check_necessity(&pps, AgentId(0), ActionId(0), &bit_fact(), &r(3, 4)).unwrap();
        assert!(rep.independent);
        assert!(rep.implication_holds);
        // The witness is the m′ run, where belief = 1.
        assert!(rep.witness.is_some());
        assert_eq!(rep.max_belief, Rational::one());
    }

    #[test]
    fn theorem52_threshold_met_rarely() {
        // The Theorem 5.2 *statement*: µ(ϕ@α|α) ≥ p yet µ(β ≥ p|α) = ε.
        let (p, e) = (r(1, 2), r(1, 100));
        let pps = theorem52(p.clone(), e.clone());
        let a = ActionAnalysis::new(&pps, AgentId(0), ActionId(0), &bit_fact()).unwrap();
        assert_eq!(a.constraint_probability(), p);
        assert_eq!(a.threshold_measure(&p), e);
    }

    #[test]
    fn pak_theorem_on_theorem52() {
        // p = 1 − δε with δ = ε = ½ gives threshold 3/4 = constraint prob.
        let pps = theorem52(r(3, 4), r(1, 8));
        let rep = check_pak(
            &pps,
            AgentId(0),
            ActionId(0),
            &bit_fact(),
            &r(1, 2),
            &r(1, 2),
        )
        .unwrap();
        assert!(rep.premise_holds);
        assert!(rep.implication_holds);
        // Strong-belief measure: β ≥ ½ everywhere here, so measure is 1.
        assert_eq!(rep.strong_belief_measure, Rational::one());
    }

    #[test]
    fn pak_corollary_eps_zero_is_kop() {
        // ε = 0: µ(ϕ@α|α) ≥ 1 ⇒ belief 1 a.s.
        let pps = {
            // A system where ϕ always holds at the action point.
            let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
            let g0 = b.initial(st(1, &[0]), Rational::one()).unwrap();
            b.child(
                g0,
                st(1, &[0]),
                Rational::one(),
                &[(AgentId(0), ActionId(0))],
            )
            .unwrap();
            b.build().unwrap()
        };
        let phi = StateFact::<SimpleState>::new("env=1", |g| g.env == 1);
        let rep = check_kop_limit(&pps, AgentId(0), ActionId(0), &phi).unwrap();
        assert!(rep.independent);
        assert!(rep.constraint_probability.is_one());
        assert!(rep.certainty_measure.is_one());
        assert!(rep.implication_holds);
    }

    #[test]
    fn pak_frontier_values() {
        assert!((pak_frontier(0.99) - 0.9).abs() < 1e-12);
        assert!((pak_frontier(0.75) - 0.5).abs() < 1e-12);
        assert_eq!(pak_frontier(0.0), 0.0);
        assert_eq!(pak_frontier(1.0), 1.0);
    }

    #[test]
    fn pak_premise_fails_gracefully() {
        // Constraint prob = ½ < 1 − δε for small δ, ε: premise fails,
        // implication vacuous.
        let pps = theorem52(r(1, 2), r(1, 4));
        let rep = check_pak(
            &pps,
            AgentId(0),
            ActionId(0),
            &bit_fact(),
            &r(1, 10),
            &r(1, 10),
        )
        .unwrap();
        assert!(!rep.premise_holds);
        assert!(rep.implication_holds);
    }
}
