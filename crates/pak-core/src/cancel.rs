//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! requester and the code doing the work. The worker polls
//! [`CancelToken::is_cancelled`] at safe boundaries (level commits in the
//! unfolder, subformula boundaries in the evaluator) and unwinds through
//! its normal error path when the token trips. Cancellation is therefore
//! *cooperative*: nothing is interrupted mid-mutation, and every
//! consumer documents the state it guarantees after a cancelled call.
//!
//! Tokens trip in two ways: explicitly via [`CancelToken::cancel`], or
//! implicitly once a wall-clock deadline set at construction passes.
//! Both are sticky — a tripped token never untrips.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation token with an optional wall-clock deadline.
///
/// Clones share state: cancelling any clone cancels them all. The
/// default token has no deadline and never trips unless
/// [`CancelToken::cancel`] is called.
///
/// ```
/// use pak_core::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// let clone = token.clone();
/// clone.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; trips only via [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that trips automatically once `budget` has elapsed from
    /// now (and can still be tripped earlier via
    /// [`CancelToken::cancel`]).
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Trips the token. Idempotent; all clones observe the trip.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    ///
    /// Cost: one atomic load, plus one clock read when a deadline was
    /// set. Cheap enough for per-node polling in the unfolder.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch the deadline so later polls skip the clock read.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The absolute deadline, if one was set at construction.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_never_trips() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_is_shared_and_sticky() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let t = CancelToken::with_deadline(Duration::from_secs(0));
        assert!(t.is_cancelled());
    }

    #[test]
    fn long_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
    }
}
