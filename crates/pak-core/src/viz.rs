//! Graphviz (DOT) rendering of purely probabilistic systems.
//!
//! The paper communicates its constructions as tree figures (Figures 1 and
//! 2); this module renders any [`Pps`] in the same style so reproduced
//! systems can be inspected visually:
//!
//! ```bash
//! cargo run --example firing_squad > /dev/null   # (examples print tables)
//! # or programmatically: std::fs::write("fs.dot", to_dot(&pps, &options))
//! dot -Tsvg fs.dot > fs.svg
//! ```
//!
//! Nodes show the global state (optionally per-agent locals); edges show
//! transition probabilities and any actions performed.

use std::fmt::Write as _;

use crate::ids::NodeId;
use crate::pps::Pps;
use crate::prob::Probability;
use crate::state::GlobalState;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name (DOT identifier).
    pub name: String,
    /// Include the `Debug` form of each global state in node labels.
    pub show_states: bool,
    /// Mark leaves (run endpoints) with a double border.
    pub mark_leaves: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "pps".to_string(),
            show_states: true,
            mark_leaves: true,
        }
    }
}

/// Renders the system as a DOT digraph.
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
/// use pak_core::viz::{to_dot, DotOptions};
///
/// let mut b = PpsBuilder::<SimpleState, f64>::new(1);
/// let g0 = b.initial(SimpleState::zeroed(1), 1.0)?;
/// b.child(g0, SimpleState::zeroed(1), 0.5, &[(AgentId(0), ActionId(0))])?;
/// b.child(g0, SimpleState::zeroed(1), 0.5, &[])?;
/// let pps = b.build()?;
///
/// let dot = to_dot(&pps, &DotOptions::default());
/// assert!(dot.starts_with("digraph pps {"));
/// assert!(dot.contains("λ"));
/// assert!(dot.contains("0.5"));
/// # Ok::<(), PpsError>(())
/// ```
#[must_use]
pub fn to_dot<G: GlobalState, P: Probability>(pps: &Pps<G, P>, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", options.name);
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");

    // Root.
    let _ = writeln!(out, "  n0 [label=\"λ\", shape=point, width=0.15];");

    // Nodes: walk the structure breadth-first from the root.
    let mut stack = vec![NodeId::ROOT];
    let mut seen = vec![false; pps.num_nodes()];
    seen[0] = true;
    while let Some(node) = stack.pop() {
        for (child, prob) in pps.children(node) {
            if seen[child.index()] {
                continue;
            }
            seen[child.index()] = true;
            let is_leaf = pps.children(child).next().is_none();
            let label = if options.show_states {
                let t = pps.node_time(child);
                format!(
                    "t={}\\n{}",
                    t,
                    escape(&format!("{:?}", pps.node_state(child)))
                )
            } else {
                format!("t={}", pps.node_time(child))
            };
            let shape = if is_leaf && options.mark_leaves {
                "doublecircle"
            } else {
                "ellipse"
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\", shape={}];",
                child.0, label, shape
            );

            // Edge with probability and actions.
            let mut edge_label = format!("{:.4}", prob.to_f64());
            let t = pps.node_time(child);
            if t > 0 || pps.parent(child) != NodeId::ROOT {
                // Actions recorded on the edge into `child` are those
                // performed at the parent's time.
                let acts = actions_into(pps, child);
                if !acts.is_empty() {
                    let _ = write!(edge_label, "\\n{acts}");
                }
            }
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\", fontsize=9];",
                node.0, child.0, edge_label
            );
            stack.push(child);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// The actions recorded on the edge into a node, as a display string.
fn actions_into<G: GlobalState, P: Probability>(pps: &Pps<G, P>, child: NodeId) -> String {
    // Find any run through `child`; actions into the node are identical for
    // all such runs (they label the edge).
    let runs = pps.runs_through(child);
    let Some(run) = runs.iter().next() else {
        return String::new();
    };
    let t = pps.node_time(child);
    if t == 0 {
        return String::new();
    }
    let pt = crate::ids::Point { run, time: t - 1 };
    pps.actions_at(pt)
        .iter()
        .map(|&(a, act)| format!("{}:{}", a.0, escape(&pps.action_name(act))))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Escapes a string for inclusion in a DOT label.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ActionId, AgentId};
    use crate::pps::PpsBuilder;
    use crate::state::SimpleState;
    use pak_num::Rational;

    fn small_pps() -> Pps<SimpleState, Rational> {
        let mut b = PpsBuilder::<SimpleState, Rational>::new(1);
        let g0 = b.initial(SimpleState::zeroed(1), Rational::one()).unwrap();
        b.child(
            g0,
            SimpleState::new(1, vec![1]),
            Rational::from_ratio(1, 2),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        b.child(
            g0,
            SimpleState::new(2, vec![2]),
            Rational::from_ratio(1, 2),
            &[],
        )
        .unwrap();
        let mut pps = b.build().unwrap();
        pps.set_action_name(ActionId(0), "α");
        pps
    }

    #[test]
    fn dot_structure() {
        let pps = small_pps();
        let dot = to_dot(&pps, &DotOptions::default());
        assert!(dot.starts_with("digraph pps {"));
        assert!(dot.trim_end().ends_with('}'));
        // Root + 3 state nodes; 3 edges.
        assert_eq!(dot.matches("->").count(), 3);
        assert!(dot.contains('λ'));
        assert!(dot.contains("0.5000"));
        assert!(dot.contains("0:α"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn options_control_labels() {
        let pps = small_pps();
        let bare = to_dot(
            &pps,
            &DotOptions {
                name: "g".into(),
                show_states: false,
                mark_leaves: false,
            },
        );
        assert!(bare.starts_with("digraph g {"));
        assert!(!bare.contains("SimpleState"));
        assert!(!bare.contains("doublecircle"));
        let full = to_dot(&pps, &DotOptions::default());
        assert!(full.contains("env"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn every_non_root_node_rendered() {
        let pps = small_pps();
        let dot = to_dot(&pps, &DotOptions::default());
        for i in 1..pps.num_nodes() {
            assert!(dot.contains(&format!("n{i} [")), "node {i} missing");
        }
    }
}
