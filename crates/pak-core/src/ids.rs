//! Identifier newtypes used throughout the workspace.
//!
//! Following C-NEWTYPE, agents, actions, tree nodes, runs, and local-state
//! cells each get a distinct index type so they cannot be confused at
//! compile time.

use core::fmt;

/// Identifies an agent `i ∈ Ags = {0, 1, …, n−1}`.
///
/// The environment (scheduler) is *not* an [`AgentId`]; environment moves are
/// folded into transition probabilities when a protocol is unfolded.
///
/// # Examples
///
/// ```
/// use pak_core::ids::AgentId;
/// let alice = AgentId(0);
/// let bob = AgentId(1);
/// assert_ne!(alice, bob);
/// assert_eq!(alice.to_string(), "agent#0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub u32);

impl AgentId {
    /// The index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

/// Identifies a local action `α ∈ Act_i`.
///
/// Action identifiers are plain indices; a [`crate::pps::Pps`] carries an
/// optional name table for diagnostics. Per the paper we assume the sets
/// `Act_i` are disjoint, so an `ActionId` alone identifies the acting agent
/// in well-formed systems; the library nevertheless always pairs actions
/// with an [`AgentId`] for robustness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

impl ActionId {
    /// The index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "action#{}", self.0)
    }
}

/// Index of a node in the pps tree (the root `λ` is always node `0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node `λ`.
    pub const ROOT: NodeId = NodeId(0);

    /// The index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Index of a run `r ∈ R_T` (a root-child-to-leaf path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u32);

impl RunId {
    /// The index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

/// Handle to an interned global state in a
/// [`StatePool`](crate::intern::StatePool).
///
/// Many tree nodes of an unfolded system share one global state (merging
/// and environment branching both revisit states), so the pps machinery
/// stores each distinct state once and passes these copyable ids around
/// instead of cloning states. Two ids from the *same* pool are equal iff
/// the states they denote are equal; ids from different pools are not
/// comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state#{}", self.0)
    }
}

/// Handle to an interned agent-local state in a
/// [`LocalPool`](crate::intern::LocalPool).
///
/// The pps build pass projects each *distinct* global state onto each
/// agent's local data exactly once and interns the projection; tree nodes
/// are then bucketed into information-set cells by comparing these copyable
/// ids instead of cloning and hashing a full `G::Local` per node. Two ids
/// from the *same* pool are equal iff the locals they denote are equal;
/// ids from different pools (e.g. different agents) are not comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

impl LocalId {
    /// The index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "local#{}", self.0)
    }
}

/// Index of a local-state equivalence cell (an information set): the set of
/// points an agent cannot distinguish because its local state is identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The index as a `usize`, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// A time `t ≥ 0` within a run. `r(t)` is the `t+1`-st global state of a run;
/// in the tree, nodes at depth `t + 1` (root has depth `0`) hold time `t`.
pub type Time = u32;

/// A point `(r, t)`: time `t` in run `r`. Facts are evaluated at points.
///
/// # Examples
///
/// ```
/// use pak_core::ids::{Point, RunId};
/// let pt = Point { run: RunId(3), time: 2 };
/// assert_eq!(pt.to_string(), "(run#3, t=2)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// The run component `r`.
    pub run: RunId,
    /// The time component `t`.
    pub time: Time,
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, t={})", self.run, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_and_hashable() {
        let mut set = HashSet::new();
        set.insert(AgentId(1));
        set.insert(AgentId(1));
        assert_eq!(set.len(), 1);
        assert_eq!(AgentId(7).index(), 7);
        assert_eq!(NodeId::ROOT, NodeId(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AgentId(2).to_string(), "agent#2");
        assert_eq!(ActionId(5).to_string(), "action#5");
        assert_eq!(NodeId(1).to_string(), "node#1");
        assert_eq!(RunId(9).to_string(), "run#9");
        assert_eq!(CellId(4).to_string(), "cell#4");
    }

    #[test]
    fn points_order_lexicographically() {
        let a = Point {
            run: RunId(0),
            time: 5,
        };
        let b = Point {
            run: RunId(1),
            time: 0,
        };
        assert!(a < b);
    }
}
