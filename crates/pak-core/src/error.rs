//! Error types for pps construction and analysis.

use core::fmt;

use crate::ids::{ActionId, AgentId, NodeId, StateId};

/// Error produced when constructing or validating a purely probabilistic
/// system.
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
///
/// // A builder with no initial states cannot produce a pps.
/// let b = PpsBuilder::<SimpleState, f64>::new(1);
/// assert!(matches!(b.build(), Err(PpsError::NoInitialStates)));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PpsError {
    /// The tree has no initial global states (no children of the root `λ`).
    NoInitialStates,
    /// The outgoing probabilities of a node do not sum to one.
    BadDistribution {
        /// The offending node.
        node: NodeId,
        /// The actual sum, for diagnostics (lossy for exact types).
        sum: f64,
    },
    /// An edge probability is zero or negative; the paper requires
    /// `π : E → (0, 1]`.
    NonPositiveProbability {
        /// The node the edge leads into.
        node: NodeId,
    },
    /// An edge probability exceeds one.
    ProbabilityAboveOne {
        /// The node the edge leads into.
        node: NodeId,
    },
    /// A state refers to an agent outside `0..n_agents`.
    AgentOutOfRange {
        /// The offending agent.
        agent: AgentId,
        /// The number of agents the system was declared with.
        n_agents: u32,
    },
    /// A parent handle passed to the builder does not exist.
    UnknownNode {
        /// The unknown handle.
        node: NodeId,
    },
    /// An interned-state handle passed to the builder is out of range for
    /// the builder's pool (see
    /// [`PpsBuilder::intern`](crate::pps::PpsBuilder::intern)).
    UnknownState {
        /// The out-of-range handle.
        state: StateId,
    },
    /// An action was attached to an initial state's incoming edge; initial
    /// states are chosen by the prior, not produced by actions.
    ActionOnInitialEdge {
        /// The initial node.
        node: NodeId,
    },
    /// The same agent performs two actions on one edge; a protocol step
    /// selects exactly one action per agent per round.
    DuplicateAgentAction {
        /// The node whose incoming edge is malformed.
        node: NodeId,
        /// The agent with duplicate actions.
        agent: AgentId,
    },
}

impl fmt::Display for PpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpsError::NoInitialStates => {
                write!(f, "pps has no initial global states")
            }
            PpsError::BadDistribution { node, sum } => {
                write!(
                    f,
                    "outgoing probabilities of {node} sum to {sum}, expected 1"
                )
            }
            PpsError::NonPositiveProbability { node } => {
                write!(f, "edge into {node} has non-positive probability")
            }
            PpsError::ProbabilityAboveOne { node } => {
                write!(f, "edge into {node} has probability above one")
            }
            PpsError::AgentOutOfRange { agent, n_agents } => {
                write!(f, "{agent} out of range for a system of {n_agents} agents")
            }
            PpsError::UnknownNode { node } => {
                write!(f, "unknown node handle {node}")
            }
            PpsError::UnknownState { state } => {
                write!(f, "unknown interned-state handle {state}")
            }
            PpsError::ActionOnInitialEdge { node } => {
                write!(
                    f,
                    "initial state {node} cannot have actions on its incoming edge"
                )
            }
            PpsError::DuplicateAgentAction { node, agent } => {
                write!(f, "edge into {node} records two actions for {agent}")
            }
        }
    }
}

impl std::error::Error for PpsError {}

/// Error produced by analyses whose preconditions fail.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The action is not *proper* for the agent: it is either never
    /// performed in the system, or performed more than once in some run
    /// (§3.1). Use [`crate::pps::Pps::tag_occurrences`] to convert any
    /// action into proper ones.
    ImproperAction {
        /// The acting agent.
        agent: AgentId,
        /// The offending action.
        action: ActionId,
        /// `true` if the action is never performed at all.
        never_performed: bool,
    },
    /// The event being conditioned on has measure zero.
    ConditioningOnNull,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::ImproperAction {
                agent,
                action,
                never_performed,
            } => {
                if *never_performed {
                    write!(f, "{action} is never performed by {agent} in the system")
                } else {
                    write!(
                        f,
                        "{action} is performed more than once in a run by {agent}"
                    )
                }
            }
            AnalysisError::ConditioningOnNull => {
                write!(f, "cannot condition on an event of measure zero")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PpsError::BadDistribution {
            node: NodeId(3),
            sum: 0.9,
        };
        assert!(e.to_string().contains("node#3"));
        assert!(e.to_string().contains("0.9"));
        let e = PpsError::AgentOutOfRange {
            agent: AgentId(5),
            n_agents: 2,
        };
        assert!(e.to_string().contains("agent#5"));
        let e = AnalysisError::ImproperAction {
            agent: AgentId(0),
            action: ActionId(1),
            never_performed: true,
        };
        assert!(e.to_string().contains("never performed"));
        let e = AnalysisError::ImproperAction {
            agent: AgentId(0),
            action: ActionId(1),
            never_performed: false,
        };
        assert!(e.to_string().contains("more than once"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(PpsError::NoInitialStates);
        takes_err(AnalysisError::ConditioningOnNull);
    }
}
