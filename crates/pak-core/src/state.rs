//! Global and local states.
//!
//! A *global state* is a tuple `g = (ℓ_e, ℓ_1, …, ℓ_n)` assigning a local
//! state to every agent and to the environment (§2.1). The library is
//! generic over the concrete representation through [`GlobalState`]; a
//! ready-made [`SimpleState`] covers most modelling needs.
//!
//! **Synchrony is enforced by construction**: the paper requires every local
//! state to contain the current time (`time_i`). Rather than trusting user
//! state types to include it, the library always pairs an agent's local data
//! with the tree depth when forming local-state identity (see
//! [`LocalState`]), so two points at different times are never confused.
//!
//! **States are stored interned**: a [`Pps`](crate::pps::Pps) keeps each
//! distinct global state once in a [`StatePool`](crate::intern::StatePool)
//! and its nodes carry copyable [`StateId`](crate::ids::StateId)s, which is
//! what the `Eq + Hash` supertraits of [`GlobalState`] feed (both the
//! unfolder's successor merge and the pool's deduplication).

use core::fmt;
use core::hash::Hash;

use crate::ids::{AgentId, Time};

/// A global state of a distributed system.
///
/// Implementors supply the projection to each agent's local data. The
/// library combines that projection with the current time to obtain the
/// paper's synchronous local state.
///
/// The `Eq + Hash` bounds carry the unfolder's *merge contract*: during
/// bounded-horizon unfolding, successor states that compare equal (under
/// the same joint actions) are merged into a single tree node with their
/// probabilities added. Equal states must therefore hash equal (the usual
/// `Hash`/`Eq` coherence rule); a coarser or finer equality only changes
/// the size of the unfolded tree, never any measure, local state, or
/// action event of the resulting system.
///
/// # Examples
///
/// ```
/// use pak_core::state::{GlobalState, SimpleState};
/// use pak_core::ids::AgentId;
///
/// let g = SimpleState::new(0, vec![7, 9]);
/// assert_eq!(g.local(AgentId(0)), 7);
/// assert_eq!(g.local(AgentId(1)), 9);
/// ```
/// States must additionally be `Send + Sync`: the build pass constructs
/// each agent's information-set cells on its own thread, sharing the
/// interned [`StatePool`](crate::intern::StatePool) read-only across
/// workers and sending the finished cells back. Every state type is plain
/// data, so the bounds are satisfied automatically.
pub trait GlobalState: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static {
    /// The agent-local component of the state (without the time, which the
    /// library adds).
    type Local: Clone + Eq + Hash + fmt::Debug + Send + Sync;

    /// Projects the state onto agent `agent`'s local data.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `agent` is out of range for the system.
    fn local(&self, agent: AgentId) -> Self::Local;
}

/// An agent's full (synchronous) local state: the pair of the current time
/// and the agent-local data.
///
/// Equality of `LocalState` values is exactly the paper's "same local state"
/// relation: because the time is a component, a local state can occur at
/// most once per run, which is what makes the `ϕ@ℓ` notation well defined
/// (§3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocalState<L> {
    /// The agent whose local state this is.
    pub agent: AgentId,
    /// The current time (always known to the agent in a synchronous system).
    pub time: Time,
    /// The agent-local data.
    pub data: L,
}

impl<L: fmt::Debug> fmt::Display for LocalState<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{} @t={}: {:?}⟩", self.agent, self.time, self.data)
    }
}

/// A straightforward global state: one `u64` of local data per agent plus an
/// environment component.
///
/// This is the workhorse state type for hand-built systems and for the
/// random-system generator. The `env` component is *not* visible to any
/// agent (it models the environment's private state, e.g. which messages
/// were lost); only `locals[i]` is projected into agent `i`'s local state.
///
/// # Examples
///
/// ```
/// use pak_core::state::SimpleState;
///
/// // Two agents; environment records "message lost" as env = 1.
/// let g = SimpleState::new(1, vec![0, 42]);
/// assert_eq!(g.env, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimpleState {
    /// The environment's local state (invisible to agents).
    pub env: u64,
    /// Per-agent local data, indexed by [`AgentId`].
    pub locals: Vec<u64>,
}

impl SimpleState {
    /// Creates a state from an environment component and per-agent locals.
    #[must_use]
    pub fn new(env: u64, locals: Vec<u64>) -> Self {
        SimpleState { env, locals }
    }

    /// A state in which every component (environment and all locals) is zero.
    #[must_use]
    pub fn zeroed(n_agents: usize) -> Self {
        SimpleState {
            env: 0,
            locals: vec![0; n_agents],
        }
    }

    /// Returns a copy with agent `agent`'s local data replaced.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    #[must_use]
    pub fn with_local(mut self, agent: AgentId, value: u64) -> Self {
        self.locals[agent.index()] = value;
        self
    }

    /// Returns a copy with the environment component replaced.
    #[must_use]
    pub fn with_env(mut self, env: u64) -> Self {
        self.env = env;
        self
    }
}

impl GlobalState for SimpleState {
    type Local = u64;

    fn local(&self, agent: AgentId) -> u64 {
        self.locals[agent.index()]
    }
}

impl fmt::Display for SimpleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(env={}, locals={:?})", self.env, self.locals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_state_projection() {
        let g = SimpleState::new(3, vec![10, 20, 30]);
        assert_eq!(g.local(AgentId(0)), 10);
        assert_eq!(g.local(AgentId(2)), 30);
    }

    #[test]
    fn with_local_and_env_builders() {
        let g = SimpleState::zeroed(2).with_local(AgentId(1), 5).with_env(9);
        assert_eq!(g.local(AgentId(1)), 5);
        assert_eq!(g.env, 9);
        assert_eq!(g.local(AgentId(0)), 0);
    }

    #[test]
    fn local_state_identity_includes_time() {
        let a = LocalState {
            agent: AgentId(0),
            time: 1,
            data: 7u64,
        };
        let b = LocalState {
            agent: AgentId(0),
            time: 2,
            data: 7u64,
        };
        assert_ne!(
            a, b,
            "same data at different times must be distinct local states"
        );
    }

    #[test]
    fn local_state_identity_includes_agent() {
        let a = LocalState {
            agent: AgentId(0),
            time: 1,
            data: 7u64,
        };
        let b = LocalState {
            agent: AgentId(1),
            time: 1,
            data: 7u64,
        };
        assert_ne!(a, b);
    }

    #[test]
    fn display_forms() {
        let g = SimpleState::new(0, vec![1]);
        assert!(g.to_string().contains("env=0"));
        let l = LocalState {
            agent: AgentId(0),
            time: 3,
            data: 1u64,
        };
        assert!(l.to_string().contains("t=3"));
    }

    #[test]
    fn env_not_part_of_local_projection() {
        let g1 = SimpleState::new(0, vec![5]);
        let g2 = SimpleState::new(99, vec![5]);
        assert_eq!(g1.local(AgentId(0)), g2.local(AgentId(0)));
    }
}
