//! Seeded random-system generation.
//!
//! Property tests and benchmarks need streams of structurally diverse purely
//! probabilistic systems. [`PpsGenerator`] produces them deterministically
//! from a seed using an embedded SplitMix64 generator (no external RNG
//! dependency, so the core crate stays lean and generation is reproducible
//! across platforms).
//!
//! Generated systems exercise:
//!
//! * mixed actions (the same local state choosing different actions),
//! * hidden environment branching (agents' locals coarser than the state),
//! * unbalanced trees (runs of different lengths) when requested,
//! * multi-agent local-state structure.

use crate::ids::{ActionId, AgentId, NodeId};
use crate::pps::{Pps, PpsBuilder};
use crate::prob::Probability;
use crate::state::SimpleState;

/// A deterministic SplitMix64 pseudo-random generator.
///
/// Used for reproducible system generation; **not** suitable for
/// cryptographic purposes.
///
/// # Examples
///
/// ```
/// use pak_core::generator::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (slight bias is acceptable
        // for test-case generation).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// A coin flip with probability `num/den` of `true`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        // Take the top 53 bits: exactly the precision of an f64 mantissa.
        #[allow(clippy::cast_precision_loss)]
        {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Configuration for random system generation.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of agents (≥ 1).
    pub n_agents: u32,
    /// Number of initial states (≥ 1).
    pub initial_states: u32,
    /// Tree depth: every run has exactly this many transitions unless
    /// `unbalanced` is set.
    pub depth: u32,
    /// Maximum branching factor per node (≥ 1).
    pub max_branching: u32,
    /// Number of distinct action ids used per agent.
    pub actions_per_agent: u32,
    /// Number of distinct local-data values per agent (coarseness of the
    /// agents' observations; smaller = more merging of information sets).
    pub local_values: u64,
    /// If set, subtrees may terminate early, producing runs of different
    /// lengths.
    pub unbalanced: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_agents: 2,
            initial_states: 2,
            depth: 3,
            max_branching: 3,
            actions_per_agent: 2,
            local_values: 3,
            unbalanced: false,
        }
    }
}

/// Deterministic generator of random purely probabilistic systems over
/// [`SimpleState`].
///
/// # Examples
///
/// ```
/// use pak_core::generator::{GeneratorConfig, PpsGenerator};
/// use pak_num::Rational;
///
/// let mut g = PpsGenerator::new(7, GeneratorConfig::default());
/// let pps = g.generate::<Rational>();
/// assert!(pps.num_runs() >= 1);
/// // Same seed, same system:
/// let mut g2 = PpsGenerator::new(7, GeneratorConfig::default());
/// assert_eq!(pps.num_runs(), g2.generate::<Rational>().num_runs());
/// ```
#[derive(Debug, Clone)]
pub struct PpsGenerator {
    rng: SplitMix64,
    config: GeneratorConfig,
}

impl PpsGenerator {
    /// Creates a generator with the given seed and configuration.
    #[must_use]
    pub fn new(seed: u64, config: GeneratorConfig) -> Self {
        PpsGenerator {
            rng: SplitMix64::new(seed),
            config,
        }
    }

    /// Generates the next random system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero agents, zero depth
    /// with zero initial states, …).
    pub fn generate<P: Probability>(&mut self) -> Pps<SimpleState, P> {
        let cfg = self.config.clone();
        assert!(cfg.n_agents >= 1 && cfg.initial_states >= 1 && cfg.max_branching >= 1);
        let mut b = PpsBuilder::<SimpleState, P>::new(cfg.n_agents);

        let init_probs = self.random_distribution(cfg.initial_states);
        let mut frontier: Vec<NodeId> = Vec::new();
        for p in init_probs {
            let state = self.random_state();
            let id = b.initial(state, p).expect("generated prior is valid");
            frontier.push(id);
        }

        for level in 0..cfg.depth {
            let mut next = Vec::new();
            for node in frontier {
                if cfg.unbalanced && level > 0 && self.rng.chance(1, 4) {
                    continue; // terminate this subtree early
                }
                let branching = self.rng.range(1, u64::from(cfg.max_branching)) as u32;
                let probs = self.random_distribution(branching);
                // Choose each agent's action for this step once per *edge*
                // (mixed steps arise when branching > 1 picks different
                // actions on sibling edges).
                for p in probs {
                    let state = self.random_state();
                    let mut actions = Vec::new();
                    for a in 0..cfg.n_agents {
                        if self.rng.chance(2, 3) {
                            let act = self.rng.below(u64::from(cfg.actions_per_agent)) as u32;
                            actions.push((AgentId(a), ActionId(a * cfg.actions_per_agent + act)));
                        }
                    }
                    let child = b
                        .child(node, state, p, &actions)
                        .expect("generated transition is valid");
                    next.push(child);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }

        b.build().expect("generated distributions sum to one")
    }

    /// A random strictly-positive distribution over `n` outcomes, with small
    /// integer weights so rational arithmetic stays fast.
    fn random_distribution<P: Probability>(&mut self, n: u32) -> Vec<P> {
        let weights: Vec<u64> = (0..n).map(|_| self.rng.range(1, 8)).collect();
        let total: u64 = weights.iter().sum();
        weights
            .into_iter()
            .map(|w| P::from_ratio(w, total))
            .collect()
    }

    fn random_state(&mut self) -> SimpleState {
        let cfg = &self.config;
        let locals = (0..cfg.n_agents)
            .map(|_| self.rng.below(cfg.local_values.max(1)))
            .collect();
        SimpleState {
            env: self.rng.below(8),
            locals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::{Facts, StateFact};
    use pak_num::Rational;

    #[test]
    fn splitmix_deterministic_and_spread() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        // Different seeds give different streams.
        let mut c = SplitMix64::new(2);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn generated_systems_are_valid_probability_spaces() {
        for seed in 0..20 {
            let mut g = PpsGenerator::new(seed, GeneratorConfig::default());
            let pps = g.generate::<Rational>();
            // Total measure is exactly one.
            assert!(pps.measure(&pps.all_runs()).is_one(), "seed {seed}");
            // Every run has positive probability.
            for run in pps.run_ids() {
                assert!(pps.run_probability(run).to_f64() > 0.0);
            }
        }
    }

    #[test]
    fn generated_unbalanced_systems_vary_run_length() {
        let cfg = GeneratorConfig {
            depth: 4,
            unbalanced: true,
            ..GeneratorConfig::default()
        };
        let mut any_variation = false;
        for seed in 0..20 {
            let mut g = PpsGenerator::new(seed, cfg.clone());
            let pps = g.generate::<Rational>();
            let lens: Vec<usize> = pps.run_ids().map(|r| pps.run_len(r)).collect();
            if lens.iter().any(|&l| l != lens[0]) {
                any_variation = true;
            }
            assert!(pps.measure(&pps.all_runs()).is_one());
        }
        assert!(any_variation, "no unbalanced tree generated in 20 seeds");
    }

    #[test]
    fn state_facts_on_generated_systems_are_past_based() {
        let mut g = PpsGenerator::new(3, GeneratorConfig::default());
        let pps = g.generate::<Rational>();
        let f = StateFact::<SimpleState>::new("env even", |s| s.env % 2 == 0);
        assert!(pps.is_past_based(&f));
    }

    #[test]
    fn f64_generation_matches_rational_shape() {
        let cfg = GeneratorConfig::default();
        let mut g1 = PpsGenerator::new(11, cfg.clone());
        let mut g2 = PpsGenerator::new(11, cfg);
        let exact = g1.generate::<Rational>();
        let approx = g2.generate::<f64>();
        assert_eq!(exact.num_runs(), approx.num_runs());
        assert_eq!(exact.num_nodes(), approx.num_nodes());
        for run in exact.run_ids() {
            let e = exact.run_probability(run).to_f64();
            let a = *approx.run_probability(run);
            assert!((e - a).abs() < 1e-12);
        }
    }
}
