//! Purely probabilistic systems (pps).
//!
//! A pps (§2.1 of the paper) is a finite labelled directed tree
//! `T = (V, E, π)` with `π : E → (0, 1]` such that the outgoing edge
//! probabilities of every internal node sum to one. All nodes other than the
//! root `λ` correspond to global states; the root's sole purpose is to
//! define the prior distribution over initial global states. Every path
//! from a child of the root to a leaf is a *run*, and the product of edge
//! probabilities along a run defines the prior measure `µ_T` over runs.
//!
//! [`Pps`] is the immutable, validated, fully indexed form: construction
//! goes through [`PpsBuilder`], which checks the probabilistic and
//! structural invariants and precomputes
//!
//! * the run table (paths, probabilities),
//! * per-node run intervals (runs through a node are contiguous in DFS
//!   order),
//! * local-state cells (information sets) for every agent at every time.
//!
//! # Interned states
//!
//! Many tree nodes share one global state (successor merging and
//! environment branching both revisit states), so nodes do not store
//! states by value: each distinct state lives once in a
//! [`StatePool`] owned by the system, and nodes carry
//! copyable [`StateId`]s. The by-value builder API
//! ([`PpsBuilder::initial`], [`PpsBuilder::child`]) interns transparently;
//! hot paths such as the protocol unfolder intern once via
//! [`PpsBuilder::intern`] and pass ids through
//! [`PpsBuilder::initial_interned`] / [`PpsBuilder::child_interned`],
//! avoiding every per-node state clone.
//!
//! # The build pass
//!
//! [`PpsBuilder::build`] applies the same scaling discipline to
//! validation and indexing: distribution sums are validated once per
//! distinct memoized expansion when the unfolder marks replays
//! ([`PpsBuilder::mark_children_shared`]); runs live in one flat node
//! arena ([`Pps::nodes_of`] borrows a slice, no per-run allocation);
//! information-set cells are keyed by per-agent interned
//! [`LocalId`]s (no `G::Local` clone or hash per
//! node) with run-sets filled a word at a time from each node's
//! contiguous run interval; and the per-agent cell passes run on separate
//! threads when [`BuildOptions`] (or the machine) says so — always
//! producing bit-identical output.

use std::collections::{HashMap, HashSet};

use crate::error::PpsError;
use crate::event::RunSet;
use crate::hash::FxBuildHasher;
use crate::ids::{ActionId, AgentId, CellId, LocalId, NodeId, Point, RunId, StateId, Time};
use crate::intern::{LocalPool, StatePool};
use crate::prob::Probability;
use crate::state::{GlobalState, LocalState};

/// The nodes of a pps tree in struct-of-arrays layout — the exact
/// representation the builder accumulates, moved into the [`Pps`]
/// unchanged (the build pass never converts or copies nodes). Each build
/// pass touches only the columns it needs (counting sort reads 4-byte
/// parents, validation reads edge probabilities, …), so the passes stream
/// tight arrays instead of striding over wide node structs. Children and
/// run intervals are not stored here: they live in flat arenas of the
/// [`Pps`].
#[derive(Debug, Clone)]
pub(crate) struct NodeTable<P> {
    /// Parent node per node; the root is its own parent.
    parents: Vec<NodeId>,
    /// The interned global state; `None` only for the root `λ`.
    states: Vec<Option<StateId>>,
    /// Depth in the tree: root `0`, initial states `1`. The time of a
    /// non-root node is `depth − 1`.
    depths: Vec<u32>,
    /// Probability of the edge from the parent (`1` for the root), as an
    /// id into the `probs` pool. Replayed expansion children *share*
    /// their template's entry — no per-node clone — which also gives the
    /// build pass a cheap notion of edge identity: run-prefix products
    /// are memoized per distinct `(prefix, edge id)` pair, so exact
    /// multiplication runs once per distinct product instead of once per
    /// node (see `from_parts`).
    edge_prob_ids: Vec<u32>,
    /// The edge-probability pool behind `edge_prob_ids` (append-only;
    /// deduplication comes from replays sharing ids, not from value
    /// hashing — `P` is not required to be `Hash`).
    probs: Vec<P>,
    /// Actions performed on the transition from the parent into each node
    /// (at most one per agent; empty for initial states), as half-open
    /// ranges into the shared `action_data` arena. Replayed expansion
    /// children *share* one range — no per-node allocation or copy.
    action_ranges: Vec<(u32, u32)>,
    /// The actions arena behind `action_ranges`.
    action_data: Vec<(AgentId, ActionId)>,
}

impl<P: Probability> NodeTable<P> {
    /// A table holding only the phantom root `λ`.
    fn new_root() -> Self {
        NodeTable {
            parents: vec![NodeId::ROOT],
            states: vec![None],
            depths: vec![0],
            edge_prob_ids: vec![0],
            probs: vec![P::one()],
            action_ranges: vec![(0, 0)],
            action_data: Vec::new(),
        }
    }

    /// The number of nodes, including the root.
    fn len(&self) -> usize {
        self.parents.len()
    }

    /// The action labels on the edge into `node`.
    fn actions_of(&self, node: usize) -> &[(AgentId, ActionId)] {
        let (lo, hi) = self.action_ranges[node];
        &self.action_data[lo as usize..hi as usize]
    }

    /// The probability of the edge into `node`.
    fn edge_prob(&self, node: usize) -> &P {
        &self.probs[self.edge_prob_ids[node] as usize]
    }

    /// Appends a node with a fresh edge probability and edge actions
    /// (both copied into their pools), returning its id.
    fn push(
        &mut self,
        parent: NodeId,
        state: StateId,
        depth: u32,
        edge_prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> NodeId {
        let lo = self.action_data.len() as u32;
        self.action_data.extend_from_slice(actions);
        let range = (lo, self.action_data.len() as u32);
        let prob_id = self.probs.len() as u32;
        self.probs.push(edge_prob);
        self.push_shared(parent, state, depth, prob_id, range)
    }

    /// Appends a node referencing existing pool entries (replayed
    /// expansions share their representative's probability and actions —
    /// zero copies, zero clones).
    fn push_shared(
        &mut self,
        parent: NodeId,
        state: StateId,
        depth: u32,
        prob_id: u32,
        action_range: (u32, u32),
    ) -> NodeId {
        let id = NodeId(self.parents.len() as u32);
        self.parents.push(parent);
        self.states.push(Some(state));
        self.depths.push(depth);
        self.edge_prob_ids.push(prob_id);
        self.action_ranges.push(action_range);
        id
    }

    /// Bulk-appends `count` children of `parent` replaying the contiguous
    /// node range starting at `first_template`: each column segment is
    /// copied wholesale (`extend_from_within` — one memcpy-style extend
    /// per column instead of `count` interleaved pushes), with states,
    /// probability ids, and action ranges shared from the templates.
    /// Returns the id of the first appended node; the rest follow
    /// consecutively, exactly as `count` individual pushes would have.
    fn replay_range(&mut self, parent: NodeId, first_template: usize, count: usize) -> NodeId {
        let id = NodeId(self.parents.len() as u32);
        let depth = self.depths[parent.index()] + 1;
        let range = first_template..first_template + count;
        self.parents.resize(self.parents.len() + count, parent);
        self.states.extend_from_within(range.clone());
        self.depths.resize(self.depths.len() + count, depth);
        self.edge_prob_ids.extend_from_within(range.clone());
        self.action_ranges.extend_from_within(range);
        id
    }

    /// Drops every node with id `>= len` and unwinds the probability and
    /// action arenas to the given watermarks — the rollback hook for an
    /// aborted horizon extension ([`PpsExtender::abort_level`]). The
    /// watermarks must have been recorded before the appends being undone.
    fn truncate(&mut self, len: usize, probs_len: usize, actions_len: usize) {
        self.parents.truncate(len);
        self.states.truncate(len);
        self.depths.truncate(len);
        self.edge_prob_ids.truncate(len);
        self.action_ranges.truncate(len);
        self.probs.truncate(probs_len);
        self.action_data.truncate(actions_len);
    }
}

/// Gathers children into a flat arena by counting sort over a parent
/// column: one pass counts each parent's arity, a prefix sum turns the
/// counts into offsets, and a second in-order pass fills the slots —
/// preserving insertion order with two allocations total instead of one
/// `Vec` per node. Shared by the build pass and the incremental
/// horizon-extension repair ([`PpsExtender`]), which must reproduce the
/// arena bit for bit.
fn build_child_arena(parents: &[NodeId]) -> (Vec<NodeId>, Vec<u32>) {
    let mut child_offsets: Vec<u32> = vec![0; parents.len() + 1];
    for &parent in parents.iter().skip(1) {
        child_offsets[parent.index() + 1] += 1;
    }
    for i in 1..child_offsets.len() {
        child_offsets[i] += child_offsets[i - 1];
    }
    let mut child_nodes: Vec<NodeId> = vec![NodeId::ROOT; parents.len().saturating_sub(1)];
    let mut cursor: Vec<u32> = child_offsets[..child_offsets.len() - 1].to_vec();
    for (i, &parent) in parents.iter().enumerate().skip(1) {
        let slot = &mut cursor[parent.index()];
        child_nodes[*slot as usize] = NodeId(i as u32);
        *slot += 1;
    }
    (child_nodes, child_offsets)
}

/// A local-state equivalence cell: all the points agent `agent` cannot
/// distinguish because its (synchronous) local state is the same.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell<L> {
    /// The agent whose information set this is.
    pub agent: AgentId,
    /// The common time of all points in the cell.
    pub time: Time,
    /// The common local data.
    pub data: L,
    /// The tree nodes realising this local state.
    pub nodes: Vec<NodeId>,
    /// The event `ℓ`: runs in which this local state occurs.
    pub runs: RunSet,
}

/// A validated purely probabilistic system.
///
/// # Examples
///
/// Building the two-run system of the paper's Figure 1 (one agent, a mixed
/// action step choosing `α` or `α′` with probability ½ each):
///
/// ```
/// use pak_core::prelude::*;
///
/// let mut b = PpsBuilder::<SimpleState, f64>::new(1);
/// let g0 = b.initial(SimpleState::zeroed(1), 1.0)?;
/// let alpha = ActionId(0);
/// let alpha_prime = ActionId(1);
/// b.child(g0, SimpleState::zeroed(1), 0.5, &[(AgentId(0), alpha)])?;
/// b.child(g0, SimpleState::zeroed(1), 0.5, &[(AgentId(0), alpha_prime)])?;
/// let pps = b.build()?;
///
/// assert_eq!(pps.num_runs(), 2);
/// assert!(pps.is_proper(AgentId(0), alpha));
/// # Ok::<(), PpsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pps<G: GlobalState, P: Probability> {
    n_agents: u32,
    /// Each distinct global state, stored once; nodes refer into it by id.
    pool: StatePool<G>,
    nodes: NodeTable<P>,
    /// Half-open interval of run indices whose paths pass through each
    /// node (runs through a node are contiguous in DFS order).
    run_ranges: Vec<(u32, u32)>,
    /// Flat children arena: node `n`'s children, in insertion order,
    /// occupy `child_offsets[n] .. child_offsets[n + 1]`.
    child_nodes: Vec<NodeId>,
    /// `num_nodes() + 1` offsets into [`Pps::child_nodes`].
    child_offsets: Vec<u32>,
    /// Flat run arena: the node paths of all runs, concatenated in run
    /// order. Run `r` occupies `run_offsets[r] .. run_offsets[r + 1]` —
    /// one shared allocation instead of a `Vec<NodeId>` per run.
    run_nodes: Vec<NodeId>,
    /// `num_runs() + 1` offsets into [`Pps::run_nodes`].
    run_offsets: Vec<u32>,
    /// Prior probability `µ_T(r)` per run: product of edge probabilities
    /// from the root to the leaf.
    run_probs: Vec<P>,
    /// `cell_of[agent][node − 1]` is the cell of the (non-root) node.
    cell_of: Vec<Vec<CellId>>,
    cells: Vec<Cell<G::Local>>,
    /// Optional human-readable action names for diagnostics.
    action_names: HashMap<ActionId, String>,
}

/// Options for [`PpsBuilder::build_with`]: how the validation/indexing
/// pass executes. The produced [`Pps`] is bit-identical under every
/// option combination — options trade wall-clock for resources only.
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Whether to construct the per-agent information-set cells on one
    /// thread per agent (`Some(true)`), strictly sequentially
    /// (`Some(false)`), or to decide from the tree (`None`: threaded when
    /// there are at least two agents and enough nodes —
    /// [`PARALLEL_CELLS_MIN_NODES`] — for the per-agent
    /// work to amortize the thread spawns; small trees pay more for two
    /// `thread::scope` spawns than their whole cell pass costs). On a
    /// machine with a single core ([`available_cores`]) every setting —
    /// including `Some(true)` — builds sequentially: threads cannot
    /// overlap there, so the spawns would be pure overhead. Agents'
    /// cell sets are mutually independent and each agent's pass is
    /// deterministic, so the threaded path is guaranteed to produce the
    /// same cells, ids, and run-sets as the sequential one.
    pub parallel_cells: Option<bool>,
}

impl<G: GlobalState, P: Probability> Pps<G, P> {
    // ------------------------------------------------------------------
    // Structure access
    // ------------------------------------------------------------------

    /// The number of agents in the system.
    #[must_use]
    pub fn num_agents(&self) -> u32 {
        self.n_agents
    }

    /// Iterator over all agents of the system.
    pub fn agents(&self) -> impl Iterator<Item = AgentId> {
        (0..self.n_agents).map(AgentId)
    }

    /// The number of tree nodes, including the root `λ`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of runs `|R_T|`.
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.run_probs.len()
    }

    /// Iterator over all runs.
    pub fn run_ids(&self) -> impl Iterator<Item = RunId> {
        (0..self.run_probs.len() as u32).map(RunId)
    }

    /// The nodes of run `run` in time order: `nodes_of(run)[t]` realises
    /// the point `(run, t)`. Runs live in one shared arena, so this is a
    /// slice borrow, never an allocation.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn nodes_of(&self, run: RunId) -> &[NodeId] {
        let lo = self.run_offsets[run.index()] as usize;
        let hi = self.run_offsets[run.index() + 1] as usize;
        &self.run_nodes[lo..hi]
    }

    /// The length (number of global states) of run `run`.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn run_len(&self, run: RunId) -> usize {
        self.nodes_of(run).len()
    }

    /// The maximum time occurring in any run.
    #[must_use]
    pub fn horizon(&self) -> Time {
        self.run_offsets
            .windows(2)
            .map(|w| w[1] - w[0] - 1)
            .max()
            .unwrap_or(0)
    }

    /// The node realising point `(r, t)`, or `None` if run `r` has ended
    /// before time `t`.
    #[must_use]
    pub fn node_at(&self, run: RunId, time: Time) -> Option<NodeId> {
        self.nodes_of(run).get(time as usize).copied()
    }

    /// The global state at a point.
    ///
    /// Returns `None` if the run has ended before `point.time`.
    #[must_use]
    pub fn state_at(&self, point: Point) -> Option<&G> {
        let node = self.node_at(point.run, point.time)?;
        self.nodes.states[node.index()].map(|id| &self.pool[id])
    }

    /// Whether `point` is a *live* point of the system: its run exists and
    /// has not ended before `point.time`.
    ///
    /// The set of live points is exactly [`Pps::points`]; formula
    /// evaluation (`pak-logic` / `pak-engine`) is defined at live points
    /// and nowhere else. Unlike [`Pps::state_at`], this accepts arbitrary
    /// run ids without panicking, so callers can probe points they did not
    /// obtain from this system.
    #[must_use]
    pub fn is_live(&self, point: Point) -> bool {
        point.run.index() < self.num_runs() && (point.time as usize) < self.run_len(point.run)
    }

    /// The runs still alive at `time` — those of length `> time` — as an
    /// event. Equivalently, the runs `r` for which `(r, time)` is a live
    /// point.
    #[must_use]
    pub fn live_runs_at(&self, time: Time) -> RunSet {
        RunSet::from_predicate(self.num_runs(), |r| (time as usize) < self.run_len(r))
    }

    /// The global state carried by a (non-root) node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or out of range.
    #[must_use]
    pub fn node_state(&self, node: NodeId) -> &G {
        &self.pool[self.node_state_id(node)]
    }

    /// The interned id of the global state carried by a (non-root) node.
    ///
    /// Equal ids denote equal states, so comparing two nodes' states costs
    /// one integer comparison. Resolve ids through [`Pps::state_pool`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or out of range.
    #[must_use]
    pub fn node_state_id(&self, node: NodeId) -> StateId {
        self.nodes.states[node.index()].expect("root node has no state")
    }

    /// The pool of distinct global states occurring in the system.
    #[must_use]
    pub fn state_pool(&self) -> &StatePool<G> {
        &self.pool
    }

    /// The number of *distinct* global states in the system — at most the
    /// number of non-root nodes, and usually far fewer (interning shares
    /// repeated states across nodes).
    #[must_use]
    pub fn num_distinct_states(&self) -> usize {
        self.pool.len()
    }

    /// An estimate of this system's resident size in bytes: the sum of
    /// the arena, pool, and cell allocations by `size_of` of their
    /// element types, plus the struct itself.
    ///
    /// This is a *lower bound*, not an exact accounting: heap data owned
    /// by `G`, `G::Local`, or `P` elements (e.g. a `Rational`'s limb
    /// vector) is counted at `size_of` only, and allocator slack is
    /// ignored. It is cheap (no traversal of element contents), stable
    /// for a given tree, and monotone in tree size — which is all the
    /// cache's memory-budget eviction needs.
    #[must_use]
    pub fn memory_footprint(&self) -> usize {
        use std::mem::size_of;
        let nodes = &self.nodes;
        let mut bytes = size_of::<Self>();
        bytes += nodes.parents.len() * size_of::<NodeId>();
        bytes += nodes.states.len() * size_of::<Option<StateId>>();
        bytes += nodes.depths.len() * size_of::<u32>();
        bytes += nodes.edge_prob_ids.len() * size_of::<u32>();
        bytes += nodes.probs.len() * size_of::<P>();
        bytes += nodes.action_ranges.len() * size_of::<(u32, u32)>();
        bytes += nodes.action_data.len() * size_of::<(AgentId, ActionId)>();
        bytes += self.run_ranges.len() * size_of::<(u32, u32)>();
        bytes += self.child_nodes.len() * size_of::<NodeId>();
        bytes += self.child_offsets.len() * size_of::<u32>();
        bytes += self.run_nodes.len() * size_of::<NodeId>();
        bytes += self.run_offsets.len() * size_of::<u32>();
        bytes += self.run_probs.len() * size_of::<P>();
        bytes += self.pool.len() * size_of::<G>();
        for per_agent in &self.cell_of {
            bytes += per_agent.len() * size_of::<CellId>();
        }
        for cell in &self.cells {
            bytes += size_of::<Cell<G::Local>>();
            bytes += cell.nodes.len() * size_of::<NodeId>();
            bytes += cell.runs.memory_bytes();
        }
        bytes
    }

    /// The time of a non-root node (its depth minus one).
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root.
    #[must_use]
    pub fn node_time(&self, node: NodeId) -> Time {
        let d = self.nodes.depths[node.index()];
        assert!(d > 0, "the root has no time");
        d - 1
    }

    /// The children of a node, with their edge probabilities.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = (NodeId, &P)> {
        let lo = self.child_offsets[node.index()] as usize;
        let hi = self.child_offsets[node.index() + 1] as usize;
        self.child_nodes[lo..hi]
            .iter()
            .map(move |&c| (c, self.nodes.edge_prob(c.index())))
    }

    /// The parent of a node (the root is its own parent).
    #[must_use]
    pub fn parent(&self, node: NodeId) -> NodeId {
        self.nodes.parents[node.index()]
    }

    /// The initial global states (children of the root) with their prior
    /// probabilities.
    pub fn initial_states(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.children(NodeId::ROOT)
    }

    /// All points `Pts(T)` of the system, in (run, time) order.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.run_ids()
            .flat_map(move |run| (0..self.run_len(run) as u32).map(move |time| Point { run, time }))
    }

    /// The runs whose paths pass through `node` (a contiguous interval in
    /// DFS order), as an event.
    #[must_use]
    pub fn runs_through(&self, node: NodeId) -> RunSet {
        let (lo, hi) = self.run_ranges[node.index()];
        RunSet::from_predicate(self.num_runs(), |r| (lo..hi).contains(&r.0))
    }

    /// Registers a human-readable name for an action (diagnostics only).
    pub fn set_action_name(&mut self, action: ActionId, name: impl Into<String>) {
        self.action_names.insert(action, name.into());
    }

    /// The registered name of an action, or a generic `action#k` fallback.
    #[must_use]
    pub fn action_name(&self, action: ActionId) -> String {
        self.action_names
            .get(&action)
            .cloned()
            .unwrap_or_else(|| action.to_string())
    }

    // ------------------------------------------------------------------
    // Measure
    // ------------------------------------------------------------------

    /// The prior probability `µ_T(r)` of a single run.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn run_probability(&self, run: RunId) -> &P {
        &self.run_probs[run.index()]
    }

    /// The measure `µ_T(Q)` of an event, accumulated in place.
    #[must_use]
    pub fn measure(&self, event: &RunSet) -> P {
        // Seed the sum from the first run instead of adding into zero.
        let mut acc: Option<P> = None;
        for r in event.iter() {
            let p = &self.run_probs[r.index()];
            match &mut acc {
                Some(m) => m.add_assign(p),
                None => acc = Some(p.clone()),
            }
        }
        acc.unwrap_or_else(P::zero)
    }

    /// The conditional measure `µ_T(A | B)`.
    ///
    /// Returns `None` when `µ_T(B) = 0`. Note that in a pps every edge has
    /// strictly positive probability, so `µ_T(B) = 0` iff `B = ∅`. The
    /// intersection measure is accumulated directly from the two bitsets;
    /// no intermediate event is materialised.
    #[must_use]
    pub fn conditional(&self, a: &RunSet, b: &RunSet) -> Option<P> {
        // Count runs alongside the sums: when the intersection is empty
        // or covers all of `b` the answer is exactly 0 or 1 and neither
        // sum nor quotient is needed — singleton cells (the common case
        // in small trees) never touch the arithmetic at all.
        let mut mb: Option<P> = None;
        let mut nb = 0usize;
        for r in b.iter() {
            nb += 1;
            let p = &self.run_probs[r.index()];
            match &mut mb {
                Some(m) => m.add_assign(p),
                None => mb = Some(p.clone()),
            }
        }
        let mb = match mb {
            Some(m) if !m.is_zero() => m,
            _ => return None,
        };
        let mut mab: Option<P> = None;
        let mut nab = 0usize;
        for r in a.iter_and(b) {
            nab += 1;
            let p = &self.run_probs[r.index()];
            match &mut mab {
                Some(m) => m.add_assign(p),
                None => mab = Some(p.clone()),
            }
        }
        match mab {
            None => Some(P::zero()),
            // a ∩ b = b: both sums range over the same runs in the same
            // ascending order, so they are identical values; µ(A|B) = 1.
            Some(_) if nab == nb => Some(P::one()),
            Some(mab) => Some(mab.div(&mb)),
        }
    }

    /// The full event `R_T`.
    #[must_use]
    pub fn all_runs(&self) -> RunSet {
        RunSet::full(self.num_runs())
    }

    /// The empty event `∅`.
    #[must_use]
    pub fn no_runs(&self) -> RunSet {
        RunSet::empty(self.num_runs())
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// Returns `true` if `does_i(α)` holds at `point`: agent `agent`
    /// performs `action` at that point (§2.3 — the transition out of the
    /// point's node along `point.run` is labelled with `(agent, action)`).
    #[must_use]
    pub fn does(&self, agent: AgentId, action: ActionId, point: Point) -> bool {
        match self.node_at(point.run, point.time + 1) {
            None => false,
            Some(next) => self.edge_performs(next, agent, action),
        }
    }

    /// All actions performed by `agent` at `point` (at most one in systems
    /// produced by protocol unfolding; the data model allows several only
    /// across *different* agents).
    #[must_use]
    pub fn actions_at(&self, point: Point) -> &[(AgentId, ActionId)] {
        match self.node_at(point.run, point.time + 1) {
            None => &[],
            Some(next) => self.nodes.actions_of(next.index()),
        }
    }

    /// Whether the edge *into* `node` is labelled with `(agent, action)`.
    fn edge_performs(&self, node: NodeId, agent: AgentId, action: ActionId) -> bool {
        self.nodes
            .actions_of(node.index())
            .iter()
            .any(|&(a, act)| a == agent && act == action)
    }

    /// The times at which `agent` performs `action` in `run`.
    #[must_use]
    pub fn performance_times(&self, agent: AgentId, action: ActionId, run: RunId) -> Vec<Time> {
        // Performing at time t labels the edge into the node at t + 1, so
        // walking the run's node slice from index 1 visits each candidate
        // edge exactly once.
        self.nodes_of(run)
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &nid)| self.edge_performs(nid, agent, action))
            .map(|(t1, _)| t1 as Time - 1)
            .collect()
    }

    /// The event `R_α`: runs in which `agent` performs `action` at least
    /// once.
    #[must_use]
    pub fn action_event(&self, agent: AgentId, action: ActionId) -> RunSet {
        RunSet::from_predicate(self.num_runs(), |run| {
            self.nodes_of(run)
                .iter()
                .skip(1)
                .any(|&nid| self.edge_performs(nid, agent, action))
        })
    }

    /// The number of times `agent` performs `action` in `run`, without
    /// materialising the time list.
    pub(crate) fn performance_count(&self, agent: AgentId, action: ActionId, run: RunId) -> usize {
        self.nodes_of(run)
            .iter()
            .skip(1)
            .filter(|&&nid| self.edge_performs(nid, agent, action))
            .count()
    }

    /// Returns `true` if `action` is a *proper* action for `agent` (§3.1):
    /// performed at least once in the system and at most once per run.
    #[must_use]
    pub fn is_proper(&self, agent: AgentId, action: ActionId) -> bool {
        let mut performed = false;
        for run in self.run_ids() {
            match self.performance_count(agent, action, run) {
                0 => {}
                1 => performed = true,
                _ => return false,
            }
        }
        performed
    }

    /// For a proper action, the unique point of `run` at which `agent`
    /// performs `action`, if any.
    #[must_use]
    pub fn action_point(&self, agent: AgentId, action: ActionId, run: RunId) -> Option<Point> {
        self.nodes_of(run)
            .iter()
            .enumerate()
            .skip(1)
            .find(|&(_, &nid)| self.edge_performs(nid, agent, action))
            .map(|(t1, _)| Point {
                run,
                time: t1 as Time - 1,
            })
    }

    /// Rewrites the system so that every occurrence of `action` by `agent`
    /// is replaced by a distinct, fresh action tagged with its occurrence
    /// index (first occurrence, second occurrence, …), returning the new
    /// system together with the fresh action ids in occurrence order.
    ///
    /// This implements the paper's remark (§3.1) that tagging occurrences
    /// converts any action into proper ones, so restricting the theory to
    /// proper actions loses no generality.
    #[must_use]
    pub fn tag_occurrences(&self, agent: AgentId, action: ActionId) -> (Self, Vec<ActionId>) {
        let mut fresh_base = self
            .nodes
            .action_data
            .iter()
            .map(|&(_, a)| a.0)
            .max()
            .map_or(0, |m| m + 1);
        let mut out = self.clone();
        let mut max_occurrence = 0usize;
        // Walk each run, rewriting the k-th occurrence along that run.
        // Because runs share prefixes, a node's label is rewritten once; the
        // occurrence index of a node is well defined (it only depends on the
        // path from the root).
        let mut node_occurrence: HashMap<NodeId, usize> = HashMap::new();
        for run in self.run_ids() {
            let mut seen = 0usize;
            for t in 0..self.run_len(run) as u32 {
                let pt = Point { run, time: t };
                if self.does(agent, action, pt) {
                    let next = self.node_at(run, t + 1).expect("does implies next node");
                    node_occurrence.insert(next, seen);
                    max_occurrence = max_occurrence.max(seen);
                    seen += 1;
                }
            }
        }
        let fresh: Vec<ActionId> = (0..=max_occurrence)
            .map(|k| {
                let id = ActionId(fresh_base);
                fresh_base += 1;
                out.action_names
                    .insert(id, format!("{}[occ {}]", self.action_name(action), k));
                id
            })
            .collect();
        // Nodes from replayed expansions share one actions range, but
        // distinct occurrences need distinct labels: rewrite by appending
        // a fresh private range per relabelled node (copy-on-write).
        for (node, occ) in node_occurrence {
            let rewritten: Vec<(AgentId, ActionId)> = out
                .nodes
                .actions_of(node.index())
                .iter()
                .map(|&(a, act)| {
                    if a == agent && act == action {
                        (a, fresh[occ])
                    } else {
                        (a, act)
                    }
                })
                .collect();
            let lo = out.nodes.action_data.len() as u32;
            out.nodes.action_data.extend_from_slice(&rewritten);
            out.nodes.action_ranges[node.index()] = (lo, out.nodes.action_data.len() as u32);
        }
        (out, fresh)
    }

    // ------------------------------------------------------------------
    // Local states and information sets
    // ------------------------------------------------------------------

    /// The number of local-state cells (over all agents and times).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Iterator over all cells.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell<G::Local>)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// The cells belonging to a particular agent.
    pub fn agent_cells(&self, agent: AgentId) -> impl Iterator<Item = (CellId, &Cell<G::Local>)> {
        self.cells().filter(move |(_, c)| c.agent == agent)
    }

    /// Access a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn cell(&self, cell: CellId) -> &Cell<G::Local> {
        &self.cells[cell.index()]
    }

    /// The event `ℓ` of a cell, borrowed from the index (the allocation-free
    /// sibling of [`crate::fact::Facts::cell_event`], for hot paths that
    /// only read the run-set).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn cell_runs(&self, cell: CellId) -> &RunSet {
        &self.cells[cell.index()].runs
    }

    /// The cell (information set) of agent `agent` at `point`.
    ///
    /// Returns `None` if the run has ended before `point.time`.
    #[must_use]
    pub fn cell_at(&self, agent: AgentId, point: Point) -> Option<CellId> {
        let node = self.node_at(point.run, point.time)?;
        Some(self.cell_of[agent.index()][node.index() - 1])
    }

    /// The full (synchronous) local state of `agent` at `point`.
    ///
    /// Returns `None` if the run has ended before `point.time`.
    #[must_use]
    pub fn local_state(&self, agent: AgentId, point: Point) -> Option<LocalState<G::Local>> {
        let state = self.state_at(point)?;
        Some(LocalState {
            agent,
            time: point.time,
            data: state.local(agent),
        })
    }

    /// The points of a cell: for each run in which the local state occurs,
    /// the unique point of that run realising it.
    pub fn cell_points<'a>(&'a self, cell: &'a Cell<G::Local>) -> impl Iterator<Item = Point> + 'a {
        cell.runs.iter().map(move |run| Point {
            run,
            time: cell.time,
        })
    }

    /// Two points are indistinguishable to `agent` iff they lie in the same
    /// cell. This is the accessibility relation of the knowledge modality
    /// `K_agent`.
    #[must_use]
    pub fn indistinguishable(&self, agent: AgentId, a: Point, b: Point) -> bool {
        match (self.cell_at(agent, a), self.cell_at(agent, b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }

    /// The set of local states `L_i[α]` at which `agent` ever performs
    /// `action`, as cell ids.
    #[must_use]
    pub fn action_cells(&self, agent: AgentId, action: ActionId) -> Vec<CellId> {
        let mut out: Vec<CellId> = Vec::new();
        for run in self.run_ids() {
            for t in self.performance_times(agent, action, run) {
                let cell = self
                    .cell_at(agent, Point { run, time: t })
                    .expect("performance point exists");
                if !out.contains(&cell) {
                    out.push(cell);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Construction internals
    // ------------------------------------------------------------------

    /// Internal: builds the validated system from raw builder parts.
    ///
    /// `expansion_of[n]`, when set, marks node `n`'s children as a replay
    /// of the memoized unfolder expansion keyed `(state, time)` (see
    /// [`PpsBuilder::mark_children_shared`]): the outgoing distribution is
    /// validated once per distinct key instead of once per node. Unmarked
    /// nodes — every node of a hand-built tree — take the per-node
    /// exact-sum path.
    pub(crate) fn from_parts(
        n_agents: u32,
        pool: StatePool<G>,
        raw_nodes: NodeTable<P>,
        action_names: HashMap<ActionId, String>,
        expansion_of: &[Option<(StateId, Time)>],
        options: &BuildOptions,
    ) -> Result<Self, PpsError> {
        // The builder's nodes are adopted as-is (no conversion pass);
        // children are gathered into the flat arena by counting sort
        // (see `build_child_arena`).
        let nodes = raw_nodes;
        let (child_nodes, child_offsets) = build_child_arena(&nodes.parents);
        let children_of = |i: usize| -> &[NodeId] {
            &child_nodes[child_offsets[i] as usize..child_offsets[i + 1] as usize]
        };
        if children_of(0).is_empty() {
            return Err(PpsError::NoInitialStates);
        }
        let max_depth = nodes.depths.iter().copied().max().unwrap_or(0) as usize;

        // Validate distributions: every internal node's children sum to one.
        // (Per-edge positivity and the ≤ 1 bound are enforced at insertion
        // time by the builder.) Nodes marked as replays of a memoized
        // expansion carry clones of the same successor probabilities, so
        // the exact sum is computed once per distinct `(state, time)` key —
        // O(distinct expansions), not O(nodes) — with the representative's
        // child count remembered as a guard: a marked node whose arity
        // disagrees with its representative fell out of the contract and is
        // validated individually. The memo (a [`KeyIndex`] over
        // `state × time`) is only allocated when marks exist at all —
        // hand-built trees skip it entirely.
        let mut validated = expansion_of
            .iter()
            .any(Option::is_some)
            .then(|| KeyIndex::new(pool.len(), max_depth));
        for i in 0..nodes.len() {
            let children = children_of(i);
            if children.is_empty() {
                continue;
            }
            if let (Some(validated), Some(Some((state, time)))) =
                (validated.as_mut(), expansion_of.get(i).copied())
            {
                // Out-of-range keys (foreign state id, bogus time) simply
                // miss the memo and validate per-node.
                if state.index() < pool.len() && (time as usize) < max_depth {
                    let arity = validated.get(state.index(), time as usize);
                    if arity == children.len() as u32 {
                        continue;
                    }
                    if arity == INDEX_NONE {
                        validated.set(state.index(), time as usize, children.len() as u32);
                    }
                }
            }
            // A single (deterministic) child must carry probability one
            // exactly; only branching nodes need the accumulator loop.
            if let [c] = children {
                if !nodes.edge_prob(c.index()).is_one() {
                    return Err(PpsError::BadDistribution {
                        node: NodeId(i as u32),
                        sum: nodes.edge_prob(c.index()).to_f64(),
                    });
                }
                continue;
            }
            let mut sum = P::zero();
            for &c in children {
                sum.add_assign(nodes.edge_prob(c.index()));
            }
            if !sum.is_one() {
                return Err(PpsError::BadDistribution {
                    node: NodeId(i as u32),
                    sum: sum.to_f64(),
                });
            }
        }

        // Enumerate runs by iterative DFS (children in insertion order)
        // straight into the flat arena: paths of all runs share one
        // `run_nodes` allocation delimited by offsets. One shared
        // path/product buffer is kept in sync by truncating to each
        // popped node's depth — a path is materialised exactly once per
        // run, when its leaf is reached.
        //
        // (A prefix-product memo keyed by `(parent product, edge id)` was
        // tried here and measured *slower*: on the replay-heavy scaling
        // workloads ~99% of prefix products are distinct — replays share
        // edges, but the parent products above them differ — so the probe
        // per node bought nothing. The edge-probability pool still pays
        // elsewhere: replayed nodes share entries instead of cloning.)
        let mut run_nodes: Vec<NodeId> = Vec::new();
        let mut run_offsets: Vec<u32> = vec![0];
        let mut run_probs: Vec<P> = Vec::new();
        // Run ranges — the contiguous interval of runs through each node —
        // fall out of the same DFS for free: a node's interval opens when
        // it enters the shared path (`lo` = runs emitted so far) and
        // closes when it leaves it (`hi` = runs emitted by then), so no
        // separate pass over the run arena is needed.
        let mut run_ranges: Vec<(u32, u32)> = vec![(u32::MAX, 0); nodes.len()];
        {
            let mut stack: Vec<NodeId> = children_of(0).iter().rev().copied().collect();
            // path[d] is the node at depth d + 1; probs[d] the product of
            // edge probabilities from the root down to path[d].
            let mut path: Vec<NodeId> = Vec::new();
            let mut probs: Vec<P> = Vec::new();
            while let Some(node) = stack.pop() {
                let d = (nodes.depths[node.index()] - 1) as usize;
                let edge_prob = nodes.edge_prob(node.index());
                for &done in &path[d..] {
                    run_ranges[done.index()].1 = run_probs.len() as u32;
                }
                path.truncate(d);
                probs.truncate(d);
                run_ranges[node.index()].0 = run_probs.len() as u32;
                // Probability-one edges (deterministic transitions) and
                // depth-0 nodes copy instead of multiplying: `1 · p` and
                // `p · 1` are exact identities for every `P`, and both
                // operands are already in canonical form.
                let p = if d == 0 {
                    edge_prob.clone()
                } else if edge_prob.is_one() {
                    probs[d - 1].clone()
                } else {
                    probs[d - 1].mul(edge_prob)
                };
                path.push(node);
                let children = children_of(node.index());
                if children.is_empty() {
                    // A leaf's product is consumed directly — never pushed
                    // onto the shared stack, so no clone.
                    run_nodes.extend_from_slice(&path);
                    run_offsets.push(run_nodes.len() as u32);
                    run_probs.push(p);
                } else {
                    probs.push(p);
                    // Push children in reverse so they pop in insertion order.
                    for &c in children.iter().rev() {
                        stack.push(c);
                    }
                }
            }
            // The last path's nodes close at the final run count.
            for &done in &path {
                run_ranges[done.index()].1 = run_probs.len() as u32;
            }
        }
        let n_runs = run_probs.len();
        run_ranges[0] = (0, n_runs as u32);

        // Build local-state cells, one independent deterministic pass per
        // agent (threaded or not — bit-identical either way). Workers read
        // the node table's state/depth columns and the run intervals
        // directly; no `P` crosses a thread boundary.
        let parallel = available_cores() > 1
            && options
                .parallel_cells
                .unwrap_or(n_agents > 1 && nodes.len() >= PARALLEL_CELLS_MIN_NODES);
        let per_agent: Vec<AgentCells<G::Local>> = if parallel && n_agents > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_agents)
                    .map(|a| {
                        let (pool, states, depths, run_ranges) =
                            (&pool, &nodes.states, &nodes.depths, &run_ranges);
                        scope.spawn(move || {
                            build_agent_cells(
                                AgentId(a),
                                pool,
                                states,
                                depths,
                                run_ranges,
                                n_runs,
                                max_depth,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("cell construction worker panicked"))
                    .collect()
            })
        } else {
            (0..n_agents)
                .map(|a| {
                    build_agent_cells(
                        AgentId(a),
                        &pool,
                        &nodes.states,
                        &nodes.depths,
                        &run_ranges,
                        n_runs,
                        max_depth,
                    )
                })
                .collect()
        };
        // Merge in agent order, offsetting each agent's dense local cell
        // ids by the cells already emitted: exactly the ids the old
        // single-threaded interleaved loop assigned.
        let mut cells: Vec<Cell<G::Local>> = Vec::new();
        let mut cell_of: Vec<Vec<CellId>> = Vec::with_capacity(n_agents as usize);
        for mut agent_cells in per_agent {
            let offset = cells.len() as u32;
            cells.extend(agent_cells.cells);
            // Remap the agent-local dense ids in place — no reallocation.
            for c in &mut agent_cells.cell_of {
                c.0 += offset;
            }
            cell_of.push(agent_cells.cell_of);
        }

        Ok(Pps {
            n_agents,
            pool,
            nodes,
            run_ranges,
            child_nodes,
            child_offsets,
            run_nodes,
            run_offsets,
            run_probs,
            cell_of,
            cells,
            action_names,
        })
    }
}

/// Node count below which the default build (`BuildOptions::parallel_cells
/// = None`) keeps the cell passes sequential: spawning one scoped thread
/// per agent costs tens of microseconds, which a small tree's whole cell
/// pass undercuts (measured: a ~35 µs loss per build on an 800-node tree).
/// Forcing `Some(true)` threads at every tree size, but never on a
/// single-core machine (see [`BuildOptions::parallel_cells`]) — the
/// differential harness uses the force to prove bit-identity at every
/// size where threads exist at all.
pub const PARALLEL_CELLS_MIN_NODES: usize = 1 << 15;

/// Capacity cap, in table cells, below which a `rows × cols` key space
/// gets a flat dense table; above it, a hash map. Deep chain-like models
/// can make `distinct states × horizon` quadratic in tree size even
/// though only O(nodes) keys are ever touched, so the dense fast path
/// must not be unconditional.
const DENSE_INDEX_LIMIT: usize = 1 << 20;

/// Sentinel for "no value" in a [`KeyIndex`].
const INDEX_NONE: u32 = u32::MAX;

/// A `(row, col) → u32` map over a key space whose bounds are known up
/// front: a flat table when the space is small (the common case — two
/// array reads per probe, no hashing), a hash map when materialising the
/// space would dwarf the tree.
enum KeyIndex {
    Dense { table: Vec<u32>, cols: usize },
    Sparse(HashMap<(u32, u32), u32, FxBuildHasher>),
}

impl KeyIndex {
    fn new(rows: usize, cols: usize) -> Self {
        if rows.saturating_mul(cols) <= DENSE_INDEX_LIMIT {
            KeyIndex::Dense {
                table: vec![INDEX_NONE; rows * cols],
                cols,
            }
        } else {
            KeyIndex::Sparse(HashMap::default())
        }
    }

    fn get(&self, row: usize, col: usize) -> u32 {
        match self {
            KeyIndex::Dense { table, cols } => table[row * cols + col],
            KeyIndex::Sparse(map) => map
                .get(&(row as u32, col as u32))
                .copied()
                .unwrap_or(INDEX_NONE),
        }
    }

    fn set(&mut self, row: usize, col: usize, value: u32) {
        match self {
            KeyIndex::Dense { table, cols } => table[row * *cols + col] = value,
            KeyIndex::Sparse(map) => {
                map.insert((row as u32, col as u32), value);
            }
        }
    }
}

/// The machine's core count, probed once per process. A `static` inside
/// the generic `from_parts` would be duplicated per monomorphization and
/// re-probe `available_parallelism` (a tens-of-µs cgroup re-read on
/// Linux) once per `(G, P)` pair — this free function carries the single
/// process-wide cache. Public so every auto-threading heuristic in the
/// workspace (the build pass here, parallel subtree unfolding in
/// `pak-protocol`) consults the same probe.
#[must_use]
pub fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// One agent's finished information sets: cells with agent-local dense ids
/// `0..` and the node → cell map (indexed by `node − 1`).
struct AgentCells<L> {
    cells: Vec<Cell<L>>,
    cell_of: Vec<CellId>,
}

/// Builds agent `agent`'s information-set cells in one pass over the
/// (non-root) nodes.
///
/// Cost scales with *distinct* states, not nodes: each distinct global
/// state is projected onto the agent's local data once and interned into a
/// [`LocalPool`], so the per-node work is three array reads of a copyable
/// `(time, LocalId)` key — no `G::Local` clone or hash per node, and no
/// hash probe either: the key space is dense (`time × LocalId`), so the
/// cell index is a flat table. Cell run-sets are filled from the node's
/// contiguous run interval one word at a time ([`RunSet::insert_range`]).
fn build_agent_cells<G: GlobalState>(
    agent: AgentId,
    pool: &StatePool<G>,
    states: &[Option<StateId>],
    depths: &[u32],
    run_ranges: &[(u32, u32)],
    n_runs: usize,
    max_depth: usize,
) -> AgentCells<G::Local> {
    let mut locals: LocalPool<G::Local> = LocalPool::default();
    let local_of: Vec<LocalId> = pool
        .iter()
        .map(|(_, state)| locals.intern(state.local(agent)))
        .collect();
    let n_locals = locals.len();
    let mut cells: Vec<Cell<G::Local>> = Vec::new();
    let mut cell_of: Vec<CellId> = vec![CellId(INDEX_NONE); states.len() - 1];
    // `(time, local) → cell` index; node times are `0..max_depth`.
    let mut index = KeyIndex::new(max_depth, n_locals);
    for i in 1..states.len() {
        let sid = states[i].expect("non-root node has state");
        let time = depths[i] - 1;
        let local = local_of[sid.index()];
        let mut slot = index.get(time as usize, local.index());
        if slot == INDEX_NONE {
            slot = cells.len() as u32;
            index.set(time as usize, local.index(), slot);
            cells.push(Cell {
                agent,
                time,
                data: locals[local].clone(),
                nodes: Vec::new(),
                runs: RunSet::empty(n_runs),
            });
        }
        let cell_id = CellId(slot);
        let cell = &mut cells[cell_id.index()];
        cell.nodes.push(NodeId(i as u32));
        let (lo, hi) = run_ranges[i];
        cell.runs.insert_range(lo as usize..hi as usize);
        cell_of[i - 1] = cell_id;
    }
    AgentCells { cells, cell_of }
}

/// Incremental constructor for a [`Pps`].
///
/// Nodes are added top-down: first initial states via
/// [`PpsBuilder::initial`], then transitions via [`PpsBuilder::child`].
/// [`PpsBuilder::build`] validates every invariant (distributions summing to
/// one, strictly positive probabilities, action well-formedness) and returns
/// the indexed system.
///
/// # Examples
///
/// ```
/// use pak_core::prelude::*;
/// use pak_num::Rational;
///
/// let mut b = PpsBuilder::<SimpleState, Rational>::new(2);
/// let s0 = b.initial(SimpleState::zeroed(2), Rational::from_ratio(1, 2))?;
/// let s1 = b.initial(
///     SimpleState::zeroed(2).with_local(AgentId(0), 1),
///     Rational::from_ratio(1, 2),
/// )?;
/// // Each initial state is also a leaf here: a depth-0 ("flat") system.
/// let pps = b.build()?;
/// assert_eq!(pps.num_runs(), 2);
/// # let _ = s0; let _ = s1;
/// # Ok::<(), PpsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PpsBuilder<G: GlobalState, P: Probability> {
    n_agents: u32,
    pool: StatePool<G>,
    nodes: NodeTable<P>,
    /// Parallel to `nodes`: [`PpsBuilder::mark_children_shared`] marks.
    expansion_of: Vec<Option<(StateId, Time)>>,
    action_names: HashMap<ActionId, String>,
}

impl<G: GlobalState, P: Probability> PpsBuilder<G, P> {
    /// Creates a builder for a system of `n_agents` agents.
    #[must_use]
    pub fn new(n_agents: u32) -> Self {
        PpsBuilder {
            n_agents,
            pool: StatePool::new(),
            nodes: NodeTable::new_root(),
            expansion_of: vec![None],
            action_names: HashMap::new(),
        }
    }

    /// Interns a global state, returning the id of the stored copy. Equal
    /// states always return the same id, so callers that revisit states
    /// (the unfolder's frontier, successor merging) can compare and store
    /// ids instead of cloning states.
    pub fn intern(&mut self, state: G) -> StateId {
        self.pool.intern(state)
    }

    /// Resolves an id handed out by [`PpsBuilder::intern`].
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this builder.
    #[must_use]
    pub fn state(&self, id: StateId) -> &G {
        &self.pool[id]
    }

    /// Adds an initial global state with prior probability `prob`.
    ///
    /// # Errors
    ///
    /// Returns [`PpsError::NonPositiveProbability`] if `prob ≤ 0`, or
    /// [`PpsError::AgentOutOfRange`] if the state has too few locals.
    pub fn initial(&mut self, state: G, prob: P) -> Result<NodeId, PpsError> {
        let sid = self.pool.intern(state);
        self.push_node(NodeId::ROOT, sid, prob, &[])
    }

    /// Adds an initial global state by interned id (see
    /// [`PpsBuilder::intern`]): the allocation-free variant of
    /// [`PpsBuilder::initial`].
    ///
    /// # Errors
    ///
    /// As [`PpsBuilder::initial`], plus [`PpsError::UnknownState`] if
    /// `state` is out of range for this builder's pool. Ids are plain
    /// indices, so an *in-range* id minted by a different builder cannot
    /// be detected — it resolves to whatever state this builder stores at
    /// that index. Never pass ids across builders.
    pub fn initial_interned(&mut self, state: StateId, prob: P) -> Result<NodeId, PpsError> {
        if self.pool.get(state).is_none() {
            return Err(PpsError::UnknownState { state });
        }
        self.push_node(NodeId::ROOT, state, prob, &[])
    }

    /// Adds a successor of `parent` reached with probability `prob`, with
    /// the given joint actions performed on the transition.
    ///
    /// # Errors
    ///
    /// Returns an error if `parent` is unknown, `prob ≤ 0`, the same agent
    /// appears twice in `actions`, or an agent is out of range.
    pub fn child(
        &mut self,
        parent: NodeId,
        state: G,
        prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> Result<NodeId, PpsError> {
        if parent.index() >= self.nodes.len() {
            return Err(PpsError::UnknownNode { node: parent });
        }
        let sid = self.pool.intern(state);
        self.push_node(parent, sid, prob, actions)
    }

    /// Adds a successor by interned id (see [`PpsBuilder::intern`]): the
    /// allocation-free variant of [`PpsBuilder::child`].
    ///
    /// # Errors
    ///
    /// As [`PpsBuilder::child`], plus [`PpsError::UnknownState`] if
    /// `state` is out of range for this builder's pool (in-range ids from
    /// a different builder cannot be detected — see
    /// [`PpsBuilder::initial_interned`]).
    pub fn child_interned(
        &mut self,
        parent: NodeId,
        state: StateId,
        prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> Result<NodeId, PpsError> {
        if parent.index() >= self.nodes.len() {
            return Err(PpsError::UnknownNode { node: parent });
        }
        if self.pool.get(state).is_none() {
            return Err(PpsError::UnknownState { state });
        }
        self.push_node(parent, state, prob, actions)
    }

    /// Registers a human-readable name for an action.
    pub fn action_name(&mut self, action: ActionId, name: impl Into<String>) -> &mut Self {
        self.action_names.insert(action, name.into());
        self
    }

    /// Adds a successor of `parent` that *replays* the previously inserted
    /// node `template`: same interned state, same edge probability, same
    /// action labels (shared by reference into the actions arena — no
    /// copy). Returns the new node's id.
    ///
    /// This is the fast path for the unfolder's memoized expansions: every
    /// per-edge invariant (positive probability, ≤ 1, action
    /// well-formedness) was checked when `template` was first inserted
    /// through [`PpsBuilder::child_interned`], so the replay skips
    /// re-checking and re-copying. Combine with
    /// [`PpsBuilder::mark_children_shared`] to also skip the per-node
    /// distribution sum at build time.
    ///
    /// # Panics
    ///
    /// Panics if `template` is the root or not a node of this builder, or
    /// if `parent` is not a node of this builder.
    pub fn child_replayed(&mut self, parent: NodeId, template: NodeId) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "unknown parent {parent}");
        let state = self.nodes.states[template.index()].expect("template must not be the root");
        let prob_id = self.nodes.edge_prob_ids[template.index()];
        let action_range = self.nodes.action_ranges[template.index()];
        let depth = self.nodes.depths[parent.index()] + 1;
        let id = self
            .nodes
            .push_shared(parent, state, depth, prob_id, action_range);
        self.expansion_of.push(None);
        id
    }

    /// Bulk sibling of [`PpsBuilder::child_replayed`]: appends `count`
    /// successors of `parent` replaying the *contiguous* run of template
    /// nodes starting at `first_template` (the shape every memoized
    /// unfolder expansion has — its children were inserted back to back).
    /// Column segments are copied wholesale instead of one interleaved
    /// push per child, and states, edge probabilities, and action labels
    /// are shared from the templates by id — no clones, no re-validation.
    ///
    /// Returns the id of the first appended child; the remaining
    /// `count − 1` follow consecutively, with ids, order, and contents
    /// identical to `count` individual [`PpsBuilder::child_replayed`]
    /// calls on `first_template`, `first_template + 1`, ….
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this builder, the template
    /// range is out of bounds, or it touches the root.
    pub fn children_replayed(
        &mut self,
        parent: NodeId,
        first_template: NodeId,
        count: usize,
    ) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "unknown parent {parent}");
        assert!(
            first_template != NodeId::ROOT || count == 0,
            "templates must not include the root"
        );
        assert!(
            first_template.index() + count <= self.nodes.len(),
            "template range out of bounds"
        );
        let id = self
            .nodes
            .replay_range(parent, first_template.index(), count);
        self.expansion_of
            .resize(self.expansion_of.len() + count, None);
        id
    }

    /// Grafts the trees of `shards.len()` worker builders under the
    /// matching `grafts` nodes, consuming the shards: each shard must hold
    /// exactly one initial node (plus the phantom root), whose state
    /// equals its graft's, and each graft must be an initial (depth-1)
    /// node of this builder; every *descendant* of a shard's initial node
    /// is appended, re-parented so the shard's initial node becomes its
    /// graft.
    ///
    /// This is the stitching half of parallel subtree unfolding: each
    /// worker unfolds one depth-1 subtree into a private shard (own
    /// [`StatePool`], own node table), and the shards are interleaved back
    /// *level by level* — for each depth, every shard's nodes of that
    /// depth in shard order — which is exactly the order the sequential
    /// level-order pass would have emitted them. Everything is remapped
    /// deterministically:
    ///
    /// * shard states are re-interned **lazily, in merged emission
    ///   order** — a shard state enters this builder's pool the first
    ///   time a merged node carries it — so state ids come out exactly as
    ///   the sequential pass would have assigned them;
    /// * node ids are assigned in merged emission order, with parents
    ///   inside a shard following along and parents at a shard's initial
    ///   node becoming its graft;
    /// * [`PpsBuilder::mark_children_shared`] marks transfer with their
    ///   state ids remapped, including each shard initial node's mark,
    ///   which lands on its graft.
    ///
    /// Edge probabilities and action labels move without copies or
    /// re-validation (each shard's arenas are appended wholesale and its
    /// nodes re-point into them by base offset); arena *layout* is not
    /// part of the bit-identity contract — only node-level values are —
    /// so wholesale appends are safe even though the sequential pass
    /// interleaves its arenas differently. The distribution-sum
    /// invariants are checked as usual by [`PpsBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if the lengths of `grafts` and `shards` differ, agent counts
    /// differ, a graft is not an initial node of this builder, a shard
    /// does not hold exactly one initial node, a shard's initial state
    /// differs from its graft's, or a shard's nodes are not in level
    /// order (non-decreasing depth — true of every unfolder shard).
    pub fn absorb_subtrees(&mut self, grafts: &[NodeId], shards: Vec<PpsBuilder<G, P>>) {
        assert_eq!(
            grafts.len(),
            shards.len(),
            "absorb_subtrees: one graft per shard"
        );
        let mut parts: Vec<ShardCursor<G>> = Vec::with_capacity(shards.len());
        for (&graft, shard) in grafts.iter().zip(shards) {
            assert_eq!(
                self.n_agents, shard.n_agents,
                "absorb_subtrees: agent counts differ"
            );
            assert!(
                graft != NodeId::ROOT && graft.index() < self.nodes.len(),
                "absorb_subtrees: unknown graft node {graft}"
            );
            assert_eq!(
                self.nodes.depths[graft.index()],
                1,
                "absorb_subtrees: graft {graft} is not an initial node"
            );
            assert!(
                shard.nodes.len() >= 2 && shard.nodes.parents[1] == NodeId::ROOT,
                "absorb_subtrees: shard must hold exactly one initial node"
            );
            assert!(
                shard.nodes.parents[2..].iter().all(|&p| p != NodeId::ROOT),
                "absorb_subtrees: shard must hold exactly one initial node"
            );
            let shard_initial_sid = shard.nodes.states[1].expect("initial node has a state");
            let graft_sid = self.nodes.states[graft.index()].expect("graft is not the root");

            let base_prob = self.nodes.probs.len() as u32;
            let base_action = self.nodes.action_data.len() as u32;
            let NodeTable {
                parents,
                states,
                depths,
                edge_prob_ids,
                probs,
                action_ranges,
                action_data,
            } = shard.nodes;
            // Arenas move wholesale (values, not clones); shard ids
            // re-point into them by base offset. Shared-id structure —
            // replayed nodes pointing at one entry — survives the move.
            self.nodes.probs.extend(probs);
            self.nodes.action_data.extend(action_data);
            // States leave the shard pool by value but enter this
            // builder's pool lazily, on each id's first use in merged
            // emission order (the sequential interning order).
            let state_vals: Vec<Option<G>> = shard.pool.into_states().map(Some).collect();
            let mut part = ShardCursor {
                parents,
                states,
                depths,
                edge_prob_ids,
                action_ranges,
                marks: shard.expansion_of,
                state_vals,
                state_remap: vec![INDEX_NONE; 0],
                node_remap: vec![0; 0],
                base_prob,
                base_action,
                cursor: 2,
            };
            part.state_remap = vec![INDEX_NONE; part.state_vals.len()];
            part.node_remap = vec![0; part.parents.len()];
            assert_eq!(
                part.state_vals[shard_initial_sid.index()].as_ref(),
                Some(&self.pool[graft_sid]),
                "absorb_subtrees: shard initial state differs from the graft node's"
            );
            // The shard's initial state already lives in this builder's
            // pool as the graft's state — pre-seed the remap so lazy
            // interning never re-adds it.
            part.state_remap[shard_initial_sid.index()] = graft_sid.0;
            part.node_remap[1] = graft.0;
            if let Some((sid, time)) = part.marks[1] {
                self.expansion_of[graft.index()] =
                    Some((part.remap_state(sid, &mut self.pool), time));
            }
            parts.push(part);
        }

        // Interleave: for each depth, each shard's contiguous segment of
        // that depth, in shard order. Per-shard depth columns are
        // non-decreasing (level-order shards), so a cursor per shard
        // walks each segment exactly once; the loop ends at the first
        // depth where no shard emits (levels are contiguous per shard,
        // so nothing can remain beyond it).
        let mut depth = 2u32;
        loop {
            let mut emitted = false;
            for part in &mut parts {
                while part.cursor < part.parents.len() && part.depths[part.cursor] == depth {
                    let j = part.cursor;
                    part.cursor += 1;
                    emitted = true;
                    let parent = NodeId(part.node_remap[part.parents[j].index()]);
                    let sid_local = part.states[j].expect("non-root node has a state");
                    let sid = part.remap_state(sid_local, &mut self.pool);
                    let (lo, hi) = part.action_ranges[j];
                    let id = self.nodes.push_shared(
                        parent,
                        sid,
                        depth,
                        part.base_prob + part.edge_prob_ids[j],
                        (lo + part.base_action, hi + part.base_action),
                    );
                    part.node_remap[j] = id.0;
                    let mark = part.marks[j];
                    self.expansion_of
                        .push(mark.map(|(s, t)| (part.remap_state(s, &mut self.pool), t)));
                }
            }
            if !emitted {
                break;
            }
            depth += 1;
        }
        for part in &parts {
            assert_eq!(
                part.cursor,
                part.parents.len(),
                "absorb_subtrees: shard nodes must be in level order"
            );
        }
    }

    /// Declares that the children of `node` replay a memoized expansion
    /// identified by `(state, time)` — the protocol unfolder calls this
    /// after emitting a node's successors from its `(state, time)` memo.
    ///
    /// [`PpsBuilder::build`] then validates the outgoing distribution of
    /// *one* node per distinct key and reuses the verdict for the rest,
    /// making validation O(distinct expansions) instead of O(nodes).
    ///
    /// # Contract
    ///
    /// Marking asserts that every node marked with the same key carries
    /// clones of one identical `(probability, …)` successor list — true by
    /// construction for the unfolder's memo replays — and that no child is
    /// added to a marked node outside that list. Marks are an optimisation
    /// hint only: hand-built trees never mark and always take the per-node
    /// exact-sum path, and a marked node whose child count disagrees with
    /// its key's representative is demoted to per-node validation.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this builder.
    pub fn mark_children_shared(&mut self, node: NodeId, state: StateId, time: Time) {
        self.expansion_of[node.index()] = Some((state, time));
    }

    fn push_node(
        &mut self,
        parent: NodeId,
        state: StateId,
        prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> Result<NodeId, PpsError> {
        let id = NodeId(self.nodes.len() as u32);
        if !prob.at_least(&P::zero()) || prob.is_zero() {
            return Err(PpsError::NonPositiveProbability { node: id });
        }
        if !P::one().at_least(&prob) {
            return Err(PpsError::ProbabilityAboveOne { node: id });
        }
        for (idx, &(agent, _)) in actions.iter().enumerate() {
            if agent.0 >= self.n_agents {
                return Err(PpsError::AgentOutOfRange {
                    agent,
                    n_agents: self.n_agents,
                });
            }
            if actions[..idx].iter().any(|&(a, _)| a == agent) {
                return Err(PpsError::DuplicateAgentAction { node: id, agent });
            }
        }
        if parent == NodeId::ROOT && !actions.is_empty() {
            return Err(PpsError::ActionOnInitialEdge { node: id });
        }
        let depth = self.nodes.depths[parent.index()] + 1;
        self.nodes.push(parent, state, depth, prob, actions);
        self.expansion_of.push(None);
        Ok(id)
    }

    /// Validates the tree and produces the indexed [`Pps`] with default
    /// [`BuildOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`PpsError::NoInitialStates`] for an empty tree, or
    /// [`PpsError::BadDistribution`] if any internal node's outgoing
    /// probabilities do not sum to one.
    pub fn build(self) -> Result<Pps<G, P>, PpsError> {
        self.build_with(&BuildOptions::default())
    }

    /// Validates the tree and produces the indexed [`Pps`], with explicit
    /// control over how the build pass executes (see [`BuildOptions`]).
    /// The result is bit-identical under every option combination.
    ///
    /// # Errors
    ///
    /// As [`PpsBuilder::build`].
    pub fn build_with(self, options: &BuildOptions) -> Result<Pps<G, P>, PpsError> {
        Pps::from_parts(
            self.n_agents,
            self.pool,
            self.nodes,
            self.action_names,
            &self.expansion_of,
            options,
        )
    }
}

/// One shard's in-flight state during [`PpsBuilder::absorb_subtrees`]:
/// its node columns, its lazily consumed state values, and the id remaps
/// built up as merged nodes are emitted.
struct ShardCursor<G> {
    parents: Vec<NodeId>,
    states: Vec<Option<StateId>>,
    depths: Vec<u32>,
    edge_prob_ids: Vec<u32>,
    action_ranges: Vec<(u32, u32)>,
    marks: Vec<Option<(StateId, Time)>>,
    /// Shard states by value, taken out on first use.
    state_vals: Vec<Option<G>>,
    /// Shard state id → merged state id; `INDEX_NONE` = not yet interned.
    state_remap: Vec<u32>,
    /// Shard node id → merged node id (filled as nodes are emitted).
    node_remap: Vec<u32>,
    base_prob: u32,
    base_action: u32,
    /// Next shard node to emit (0 is the root, 1 the initial node).
    cursor: usize,
}

impl<G: GlobalState> ShardCursor<G> {
    /// The merged id of a shard state, interning its value on first use —
    /// merged emission order *is* the sequential interning order.
    fn remap_state(&mut self, local: StateId, pool: &mut StatePool<G>) -> StateId {
        let slot = &mut self.state_remap[local.index()];
        if *slot == INDEX_NONE {
            let state = self.state_vals[local.index()]
                .take()
                .expect("each shard state is interned exactly once");
            *slot = pool.intern(state).0;
        }
        StateId(*slot)
    }
}

impl<G: GlobalState, P: Probability> Default for PpsBuilder<G, P> {
    fn default() -> Self {
        PpsBuilder {
            n_agents: 1,
            pool: StatePool::new(),
            nodes: NodeTable::new_root(),
            expansion_of: vec![None],
            action_names: HashMap::new(),
        }
    }
}

/// Append-only growth of a finished [`Pps`], one frontier level at a
/// time — the chassis of incremental horizon extension
/// (`Unfolder::extend_horizon` in `pak-protocol`).
///
/// A finished system is immutable; the extender owns one and re-opens it
/// for strictly append-shaped edits through a level protocol:
/// [`PpsExtender::begin_level`] opens a level, [`PpsExtender::append_child`]
/// / [`PpsExtender::append_children_replayed`] add children under leaves of
/// the current maximal depth (each parent's children in one contiguous
/// block), and [`PpsExtender::commit_level`] validates the new
/// distributions and *incrementally repairs* every derived index:
///
/// * the child arena is rebuilt by the same counting sort the build pass
///   uses (the parent column is its only input);
/// * runs are re-rooted at the old leaves — an unextended run's path and
///   probability move over verbatim, an extended run becomes one run per
///   appended child with the old probability (the from-scratch prefix
///   product at that leaf) multiplied by the new edge, so every
///   probability is produced by the exact operand sequence the full DFS
///   would have used;
/// * per-node run intervals are renumbered through the old-run → new-run
///   map (intervals stay contiguous), and each new leaf gets its unit
///   interval;
/// * information-set cells are extended with the new `time × local` rows
///   only — all new nodes share one fresh time, so they can never join an
///   old cell — spliced per agent behind that agent's existing cells, and
///   every old cell's run-set is refilled from its members' renumbered
///   intervals (canonical bitsets, so the widened sets are bit-identical
///   to freshly built ones). The per-agent [`LocalPool`]s are retained
///   across levels, so local ids keep their first-appearance order.
///
/// The result after each commit is **bit-identical** to what a
/// from-scratch build of the grown tree would produce — same pool ids,
/// node order, run arena, probabilities, and cells — provided the grown
/// tree appends level by level (the order the level-order unfolder
/// emits). The differential harness enforces this contract.
///
/// [`PpsExtender::abort_level`] (or a failed commit) unwinds the open
/// level completely; the retained system stays valid and queryable.
#[derive(Debug, Clone)]
pub struct PpsExtender<G: GlobalState, P: Probability> {
    pps: Pps<G, P>,
    /// Per-agent local pools, kept alive across levels so new local
    /// states intern in the same first-appearance order the original
    /// cell pass established.
    locals: Vec<LocalPool<G::Local>>,
    /// `local_of[agent][sid]`, extended lazily as the state pool grows.
    local_of: Vec<Vec<LocalId>>,
    /// How many cells each agent currently owns (cells are grouped by
    /// agent), for splicing new cells behind each agent's block.
    agent_cell_counts: Vec<usize>,
    /// Depth of the current leaf frontier — the maximal depth in the
    /// table; extended parents must sit exactly there.
    frontier_depth: u32,
    level: Option<LevelState>,
}

/// One extended parent's appended child block, in extension order:
/// `(parent, first child, count, expansion mark)`.
type LevelEntry = (NodeId, u32, u32, Option<(StateId, Time)>);

/// Bookkeeping for one open extension level.
#[derive(Debug, Clone)]
struct LevelState {
    /// Rollback watermarks, recorded at `begin_level`.
    old_nodes: usize,
    old_probs: usize,
    old_actions: usize,
    old_pool: usize,
    /// Appended children per extended parent; see [`LevelEntry`].
    entries: Vec<LevelEntry>,
    /// Whether every parent so far arrived in strictly increasing id
    /// order — the order the level-order unfolder extends in. While this
    /// holds, a new parent greater than the last one provably has no
    /// earlier block, so the contiguity check is a single comparison and
    /// `closed` stays empty; it also certifies the shape the incremental
    /// child-arena append relies on.
    in_order: bool,
    /// Parents whose child block has ended — appending to one again
    /// would break the contiguity the run repair relies on. Populated
    /// lazily, only once a parent arrives out of order.
    closed: HashSet<u32, FxBuildHasher>,
}

impl<G: GlobalState, P: Probability> PpsExtender<G, P> {
    /// Wraps a finished system for incremental growth. The per-agent
    /// local pools are re-derived from the state pool in id order —
    /// exactly the interning order the original cell pass used.
    #[must_use]
    pub fn new(pps: Pps<G, P>) -> Self {
        let n_agents = pps.n_agents as usize;
        let mut locals = Vec::with_capacity(n_agents);
        let mut local_of = Vec::with_capacity(n_agents);
        for a in 0..pps.n_agents {
            let agent = AgentId(a);
            let mut pool: LocalPool<G::Local> = LocalPool::default();
            let of: Vec<LocalId> = pps
                .pool
                .iter()
                .map(|(_, state)| pool.intern(state.local(agent)))
                .collect();
            locals.push(pool);
            local_of.push(of);
        }
        let mut agent_cell_counts = vec![0usize; n_agents];
        for cell in &pps.cells {
            agent_cell_counts[cell.agent.index()] += 1;
        }
        let frontier_depth = pps.nodes.depths.iter().copied().max().unwrap_or(0);
        PpsExtender {
            pps,
            locals,
            local_of,
            agent_cell_counts,
            frontier_depth,
            level: None,
        }
    }

    /// The wrapped system (always valid — an open level's appends become
    /// visible only after [`PpsExtender::commit_level`]; use between
    /// levels to query the tree grown so far).
    #[must_use]
    pub fn pps(&self) -> &Pps<G, P> {
        &self.pps
    }

    /// Unwraps the system, dropping the extension state.
    ///
    /// # Panics
    ///
    /// Panics if a level is open.
    #[must_use]
    pub fn into_pps(self) -> Pps<G, P> {
        assert!(self.level.is_none(), "into_pps: a level is still open");
        self.pps
    }

    /// The depth of the current leaf frontier (node time plus one);
    /// children appended in the next level land at this depth plus one.
    #[must_use]
    pub fn frontier_depth(&self) -> u32 {
        self.frontier_depth
    }

    /// Opens an extension level: records the rollback watermarks and
    /// admits [`PpsExtender::append_child`] /
    /// [`PpsExtender::append_children_replayed`] calls until
    /// [`PpsExtender::commit_level`] or [`PpsExtender::abort_level`].
    ///
    /// # Panics
    ///
    /// Panics if a level is already open.
    pub fn begin_level(&mut self) {
        assert!(self.level.is_none(), "begin_level: a level is already open");
        self.level = Some(LevelState {
            old_nodes: self.pps.nodes.len(),
            old_probs: self.pps.nodes.probs.len(),
            old_actions: self.pps.nodes.action_data.len(),
            old_pool: self.pps.pool.len(),
            entries: Vec::new(),
            in_order: true,
            closed: HashSet::default(),
        });
    }

    /// Interns a global state into the retained pool (rolled back if the
    /// level aborts), returning its id — the extension sibling of
    /// [`PpsBuilder::intern`].
    ///
    /// # Panics
    ///
    /// Panics if no level is open (interned states outside a level could
    /// not be rolled back, and an unused pool entry would break the
    /// bit-identity contract).
    pub fn intern(&mut self, state: G) -> StateId {
        assert!(self.level.is_some(), "intern outside an open level");
        self.pps.pool.intern(state)
    }

    /// Resolves an id handed out by [`PpsExtender::intern`] or carried by
    /// a node of the wrapped system.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn state(&self, id: StateId) -> &G {
        &self.pps.pool[id]
    }

    /// Appends a child of frontier leaf `parent` — the extension sibling
    /// of [`PpsBuilder::child_interned`], with the same per-edge
    /// validation. All of a parent's children must be appended in one
    /// contiguous block.
    ///
    /// # Errors
    ///
    /// As [`PpsBuilder::child_interned`]: unknown state, non-positive or
    /// above-one probability, out-of-range agent, duplicate agent action.
    ///
    /// # Panics
    ///
    /// Panics if no level is open, `parent` is not a pre-level node, is
    /// the root, is not at the frontier depth, already had children
    /// before the level, or was already extended earlier in this level.
    pub fn append_child(
        &mut self,
        parent: NodeId,
        state: StateId,
        prob: P,
        actions: &[(AgentId, ActionId)],
    ) -> Result<NodeId, PpsError> {
        let id = NodeId(self.pps.nodes.len() as u32);
        if self.pps.pool.get(state).is_none() {
            return Err(PpsError::UnknownState { state });
        }
        if !prob.at_least(&P::zero()) || prob.is_zero() {
            return Err(PpsError::NonPositiveProbability { node: id });
        }
        if !P::one().at_least(&prob) {
            return Err(PpsError::ProbabilityAboveOne { node: id });
        }
        for (idx, &(agent, _)) in actions.iter().enumerate() {
            if agent.0 >= self.pps.n_agents {
                return Err(PpsError::AgentOutOfRange {
                    agent,
                    n_agents: self.pps.n_agents,
                });
            }
            if actions[..idx].iter().any(|&(a, _)| a == agent) {
                return Err(PpsError::DuplicateAgentAction { node: id, agent });
            }
        }
        self.note_extension(parent, 1);
        let depth = self.frontier_depth + 1;
        self.pps.nodes.push(parent, state, depth, prob, actions);
        Ok(id)
    }

    /// Bulk-appends `count` children of frontier leaf `parent` replaying
    /// the contiguous template range starting at `first_template` — the
    /// extension sibling of [`PpsBuilder::children_replayed`]. Returns
    /// the id of the first appended child.
    ///
    /// # Panics
    ///
    /// As [`PpsExtender::append_child`] for `parent`, plus if the
    /// template range is empty, out of bounds, or touches the root.
    pub fn append_children_replayed(
        &mut self,
        parent: NodeId,
        first_template: NodeId,
        count: usize,
    ) -> NodeId {
        assert!(count > 0, "append_children_replayed: empty template range");
        assert!(
            first_template != NodeId::ROOT,
            "templates must not include the root"
        );
        assert!(
            first_template.index() + count <= self.pps.nodes.len(),
            "template range out of bounds"
        );
        self.note_extension(parent, count as u32);
        self.pps
            .nodes
            .replay_range(parent, first_template.index(), count)
    }

    /// Declares that the children just appended under `node` replay the
    /// memoized expansion keyed `(state, time)` — the extension sibling
    /// of [`PpsBuilder::mark_children_shared`], with the same contract:
    /// [`PpsExtender::commit_level`] validates the outgoing distribution
    /// of one node per distinct key and reuses the verdict for the rest.
    ///
    /// # Panics
    ///
    /// Panics if no level is open or `node` is not the most recently
    /// extended parent.
    pub fn mark_level_children_shared(&mut self, node: NodeId, state: StateId, time: Time) {
        let level = self
            .level
            .as_mut()
            .expect("mark_level_children_shared outside an open level");
        let entry = level
            .entries
            .last_mut()
            .expect("mark_level_children_shared before any children");
        assert_eq!(
            entry.0, node,
            "mark_level_children_shared: mark must follow the node's children"
        );
        entry.3 = Some((state, time));
    }

    /// Validates `parent` as an extendable frontier leaf and records
    /// `count` children appended under it (contiguity bookkeeping).
    fn note_extension(&mut self, parent: NodeId, count: u32) {
        let level = self
            .level
            .as_mut()
            .expect("appending children outside an open level");
        assert!(
            parent != NodeId::ROOT,
            "cannot extend the root — initial states are fixed at build time"
        );
        assert!(
            parent.index() < level.old_nodes,
            "extended parent {parent} was appended in this level"
        );
        assert_eq!(
            self.pps.nodes.depths[parent.index()],
            self.frontier_depth,
            "extended parent {parent} is not on the leaf frontier"
        );
        assert_eq!(
            self.pps.child_offsets[parent.index()],
            self.pps.child_offsets[parent.index() + 1],
            "extended parent {parent} already has children"
        );
        let first = self.pps.nodes.len() as u32;
        match level.entries.last_mut() {
            Some(entry) if entry.0 == parent => entry.2 += count,
            _ => {
                match level.entries.last() {
                    Some(&(prev, ..)) if level.in_order && parent.0 > prev.0 => {
                        // Strictly increasing: `parent` cannot have an
                        // earlier block, no bookkeeping needed.
                    }
                    Some(&(prev, ..)) => {
                        if level.in_order {
                            // First out-of-order parent: materialise the
                            // closed set the fast path skipped.
                            level.in_order = false;
                            level.closed.extend(level.entries.iter().map(|e| e.0 .0));
                        } else {
                            level.closed.insert(prev.0);
                        }
                        assert!(
                            !level.closed.contains(&parent.0),
                            "parent {parent} extended non-contiguously"
                        );
                    }
                    None => {}
                }
                level.entries.push((parent, first, count, None));
            }
        }
    }

    /// Discards the open level: appended nodes, their arena entries, and
    /// states interned during the level are all unwound, restoring the
    /// system exactly as it was at [`PpsExtender::begin_level`].
    ///
    /// # Panics
    ///
    /// Panics if no level is open.
    pub fn abort_level(&mut self) {
        let level = self.level.take().expect("abort_level: no level open");
        self.pps
            .nodes
            .truncate(level.old_nodes, level.old_probs, level.old_actions);
        self.pps.pool.truncate(level.old_pool);
    }

    /// Validates the open level and repairs every derived index (see the
    /// type docs for what is appended vs repaired). On success the
    /// wrapped system is the grown tree, bit-identical to a from-scratch
    /// build; on error the level is aborted and the system is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`PpsError::BadDistribution`] if an extended parent's new
    /// outgoing probabilities do not sum to one.
    ///
    /// # Panics
    ///
    /// Panics if no level is open.
    pub fn commit_level(&mut self) -> Result<(), PpsError> {
        // ---- Validation: distribution sums, memoized by mark key (the
        // same one-check-per-distinct-expansion discipline as the build
        // pass). Nothing is mutated before validation passes.
        let mut bad: Option<(NodeId, f64)> = None;
        {
            let level = self.level.as_ref().expect("commit_level: no level open");
            if level.entries.is_empty() {
                // An empty level is a no-op; abort to unwind any states
                // interned without a node.
                self.abort_level();
                return Ok(());
            }
            let mut seen: HashMap<(StateId, Time), u32, FxBuildHasher> = HashMap::default();
            for &(parent, first, count, mark) in &level.entries {
                if let Some(key) = mark {
                    match seen.get(&key) {
                        Some(&arity) if arity == count => continue,
                        Some(_) => {}
                        None => {
                            seen.insert(key, count);
                        }
                    }
                }
                // Same single-child specialisation as the build pass: a
                // deterministic edge must be exactly one, no sum needed.
                if count == 1 {
                    let p = self.pps.nodes.edge_prob(first as usize);
                    if !p.is_one() {
                        bad = Some((parent, p.to_f64()));
                        break;
                    }
                    continue;
                }
                let mut sum = P::zero();
                for child in first..first + count {
                    sum.add_assign(self.pps.nodes.edge_prob(child as usize));
                }
                if !sum.is_one() {
                    bad = Some((parent, sum.to_f64()));
                    break;
                }
            }
        }
        if let Some((node, sum)) = bad {
            self.abort_level();
            return Err(PpsError::BadDistribution { node, sum });
        }
        let level = self.level.take().expect("commit_level: no level open");
        let old_nodes = level.old_nodes;
        let n_new = self.pps.nodes.len() - old_nodes;
        // All new nodes share one fresh time — the key fact behind both
        // the run repair (only extended leaves' runs change) and the cell
        // repair (no new node can join an old cell).
        let new_time = self.frontier_depth;

        // ---- Child arena. Under level-order growth — parents strictly
        // increasing, and nothing but childless frontier leaves from the
        // first extended parent onwards — the old arena is a strict
        // prefix of the new one: the appended children are already
        // grouped by parent in id order (each parent's block is
        // contiguous, parents arrive ascending), which is exactly where
        // the counting sort would place them. So the new entries append,
        // offsets up to the first extended parent stand, and the rest
        // shift by the running count of appended children. Any other
        // shape (hand-driven out-of-order appends) falls back to the
        // full counting-sort rebuild the build pass uses.
        let p0 = level.entries[0].0.index();
        let old_arena = self.pps.child_nodes.len();
        if level.in_order && self.pps.child_offsets[p0] as usize == old_arena {
            self.pps.child_nodes.reserve(n_new);
            for &(_, first, count, _) in &level.entries {
                self.pps
                    .child_nodes
                    .extend((first..first + count).map(NodeId));
            }
            let mut add = 0u32;
            let mut e = 0usize;
            for i in p0 + 1..=old_nodes {
                while e < level.entries.len() && level.entries[e].0.index() < i {
                    add += level.entries[e].2;
                    e += 1;
                }
                self.pps.child_offsets[i] = old_arena as u32 + add;
            }
            let total = (old_arena + n_new) as u32;
            self.pps.child_offsets.resize(old_nodes + n_new + 1, total);
        } else {
            let (child_nodes, child_offsets) = build_child_arena(&self.pps.nodes.parents);
            self.pps.child_nodes = child_nodes;
            self.pps.child_offsets = child_offsets;
        }

        // ---- Run repair: walk the old runs in order; each maps to
        // itself (leaf unextended — path and probability move verbatim)
        // or to one new run per appended child, in child-insertion order
        // — exactly the sequence the from-scratch DFS would emit, since
        // run order depends only on structure and per-parent insertion
        // order.
        let old_run_offsets = std::mem::take(&mut self.pps.run_offsets);
        let old_run_nodes = std::mem::take(&mut self.pps.run_nodes);
        let old_run_probs = std::mem::take(&mut self.pps.run_probs);
        let n_old_runs = old_run_probs.len();
        let mut run_nodes: Vec<NodeId> = Vec::with_capacity(old_run_nodes.len() + 2 * n_new);
        let mut run_offsets: Vec<u32> = Vec::with_capacity(n_old_runs + n_new + 1);
        run_offsets.push(0);
        let mut run_probs: Vec<P> = Vec::with_capacity(n_old_runs + n_new);
        // `run_map[r]` is the new index of the first run replacing old
        // run `r`; the sentinel `run_map[n_old_runs]` is the final count,
        // so an old interval `(lo, hi)` renumbers to
        // `(run_map[lo], run_map[hi])`.
        let mut run_map: Vec<u32> = Vec::with_capacity(n_old_runs + 1);
        // Unit run interval per new node, filled as its run is emitted.
        let mut new_ranges: Vec<(u32, u32)> = vec![(0, 0); n_new];
        for (r, prob) in old_run_probs.into_iter().enumerate() {
            run_map.push(run_probs.len() as u32);
            let lo = old_run_offsets[r] as usize;
            let hi = old_run_offsets[r + 1] as usize;
            let path = &old_run_nodes[lo..hi];
            let leaf = path[path.len() - 1];
            let clo = self.pps.child_offsets[leaf.index()] as usize;
            let chi = self.pps.child_offsets[leaf.index() + 1] as usize;
            if clo == chi {
                run_nodes.extend_from_slice(path);
                run_offsets.push(run_nodes.len() as u32);
                run_probs.push(prob);
            } else {
                for &child in &self.pps.child_nodes[clo..chi] {
                    let slot = &mut new_ranges[child.index() - old_nodes];
                    slot.0 = run_probs.len() as u32;
                    slot.1 = slot.0 + 1;
                    run_nodes.extend_from_slice(path);
                    run_nodes.push(child);
                    run_offsets.push(run_nodes.len() as u32);
                    let edge = self.pps.nodes.edge_prob(child.index());
                    // The old run probability *is* the from-scratch
                    // prefix product at the leaf, so extending it
                    // multiplies in the same operand the full DFS would
                    // — bit-identical, including the `p · 1` copy fast
                    // path.
                    run_probs.push(if edge.is_one() {
                        prob.clone()
                    } else {
                        prob.mul(edge)
                    });
                }
            }
        }
        run_map.push(run_probs.len() as u32);
        let n_runs = run_probs.len();
        for range in &mut self.pps.run_ranges {
            range.0 = run_map[range.0 as usize];
            range.1 = run_map[range.1 as usize];
        }
        self.pps.run_ranges.extend(new_ranges);
        self.pps.run_nodes = run_nodes;
        self.pps.run_offsets = run_offsets;
        self.pps.run_probs = run_probs;

        // ---- Cell repair. New local states intern behind the retained
        // pools in pool-id order (the order the original pass used), then
        // each agent gains cells for the fresh `(new_time, local)` keys
        // only, spliced behind its existing block; every old cell's
        // run-set is refilled from its members' renumbered intervals.
        let mut cells = std::mem::take(&mut self.pps.cells);
        for cell in &mut cells {
            cell.runs.reset(n_runs);
            // Members are in node-id order, so their (renumbered) run
            // intervals are sorted and frequently abut — coalesce before
            // filling to cut the per-member word-op overhead.
            let (mut lo, mut hi) = (0u32, 0u32);
            for &member in &cell.nodes {
                let (mlo, mhi) = self.pps.run_ranges[member.index()];
                if mlo == hi {
                    hi = mhi;
                } else {
                    cell.runs.insert_range(lo as usize..hi as usize);
                    (lo, hi) = (mlo, mhi);
                }
            }
            cell.runs.insert_range(lo as usize..hi as usize);
        }
        let n_agents = self.pps.n_agents as usize;
        // Hoisted out of the per-agent pass: state ids of the appended
        // nodes, in node order.
        let new_sids: Vec<StateId> = self.pps.nodes.states[old_nodes..]
            .iter()
            .map(|s| s.expect("non-root node has a state"))
            .collect();
        let mut new_agent_cells: Vec<AgentCells<G::Local>> = Vec::with_capacity(n_agents);
        for (a, (agent_pool, of)) in self
            .locals
            .iter_mut()
            .zip(self.local_of.iter_mut())
            .enumerate()
        {
            let agent = AgentId(a as u32);
            for (_, state) in self.pps.pool.iter().skip(of.len()) {
                of.push(agent_pool.intern(state.local(agent)));
            }
            let mut agent_cells: Vec<Cell<G::Local>> = Vec::new();
            let mut cell_of: Vec<CellId> = Vec::with_capacity(n_new);
            let mut slot_of: Vec<u32> = vec![INDEX_NONE; agent_pool.len()];
            for (k, &sid) in new_sids.iter().enumerate() {
                let i = old_nodes + k;
                let local = of[sid.index()];
                let mut slot = slot_of[local.index()];
                if slot == INDEX_NONE {
                    slot = agent_cells.len() as u32;
                    slot_of[local.index()] = slot;
                    agent_cells.push(Cell {
                        agent,
                        time: new_time,
                        data: agent_pool[local].clone(),
                        nodes: Vec::new(),
                        runs: RunSet::empty(n_runs),
                    });
                }
                let cell = &mut agent_cells[slot as usize];
                cell.nodes.push(NodeId(i as u32));
                // Every appended node is a leaf on exactly one run.
                let (lo, _) = self.pps.run_ranges[i];
                cell.runs.insert(RunId(lo));
                cell_of.push(CellId(slot));
            }
            new_agent_cells.push(AgentCells {
                cells: agent_cells,
                cell_of,
            });
        }
        // Splice: per agent, old cells then new cells — the id order a
        // from-scratch merge would emit, because the fresh keys appear
        // after all of an agent's old keys in first-occurrence order.
        let mut delta: Vec<u32> = Vec::with_capacity(n_agents); // Σ new counts of agents before a
        let mut new_first: Vec<u32> = Vec::with_capacity(n_agents); // merged id of a's first new cell
        {
            let mut acc_old = 0u32;
            let mut acc_new = 0u32;
            for (a, agent_new) in new_agent_cells.iter().enumerate() {
                delta.push(acc_new);
                new_first.push(acc_old + acc_new + self.agent_cell_counts[a] as u32);
                acc_old += self.agent_cell_counts[a] as u32;
                acc_new += agent_new.cells.len() as u32;
            }
        }
        for (a, column) in self.pps.cell_of.iter_mut().enumerate() {
            // `delta[0]` is always zero (no agent precedes agent 0), and
            // later agents' deltas are zero whenever earlier agents
            // gained no cells — skip the no-op renumber walk.
            if delta[a] != 0 {
                for cell in column.iter_mut() {
                    cell.0 += delta[a];
                }
            }
            column.extend(
                new_agent_cells[a]
                    .cell_of
                    .iter()
                    .map(|c| CellId(new_first[a] + c.0)),
            );
        }
        let total_new: usize = new_agent_cells.iter().map(|c| c.cells.len()).sum();
        let mut merged: Vec<Cell<G::Local>> = Vec::with_capacity(cells.len() + total_new);
        let mut old_iter = cells.into_iter();
        for (a, agent_new) in new_agent_cells.into_iter().enumerate() {
            merged.extend(old_iter.by_ref().take(self.agent_cell_counts[a]));
            self.agent_cell_counts[a] += agent_new.cells.len();
            merged.extend(agent_new.cells);
        }
        self.pps.cells = merged;
        self.frontier_depth += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SimpleState;
    use pak_num::Rational;

    type B = PpsBuilder<SimpleState, Rational>;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn st(env: u64, locals: &[u64]) -> SimpleState {
        SimpleState::new(env, locals.to_vec())
    }

    /// A two-level tree built twice: once replaying a template expansion
    /// child by child (`child_replayed`), once with the bulk column copy
    /// (`children_replayed`). The two must be indistinguishable.
    #[test]
    fn bulk_replay_equals_per_child_replay() {
        let build = |bulk: bool| -> Pps<SimpleState, Rational> {
            let mut b = B::new(1);
            let g0 = b.initial(st(0, &[0]), r(1, 2)).unwrap();
            let g1 = b.initial(st(1, &[0]), r(1, 2)).unwrap();
            // Template expansion under g0: two children.
            let t0 = b
                .child(g0, st(2, &[1]), r(1, 3), &[(AgentId(0), ActionId(0))])
                .unwrap();
            let t1 = b.child(g0, st(3, &[2]), r(2, 3), &[]).unwrap();
            // Replay it under g1.
            if bulk {
                b.children_replayed(g1, t0, 2);
            } else {
                b.child_replayed(g1, t0);
                b.child_replayed(g1, t1);
            }
            b.build().unwrap()
        };
        let per_child = build(false);
        let bulk = build(true);
        assert_eq!(per_child.num_nodes(), bulk.num_nodes());
        assert_eq!(per_child.num_runs(), bulk.num_runs());
        for n in (1..per_child.num_nodes() as u32).map(NodeId) {
            assert_eq!(per_child.parent(n), bulk.parent(n), "parent of {n}");
            assert_eq!(per_child.node_state(n), bulk.node_state(n), "state of {n}");
            assert_eq!(per_child.node_time(n), bulk.node_time(n), "time of {n}");
        }
        for run in per_child.run_ids() {
            assert_eq!(per_child.nodes_of(run), bulk.nodes_of(run));
            assert_eq!(per_child.run_probability(run), bulk.run_probability(run));
        }
        for (a, b2) in per_child.points().zip(bulk.points()) {
            assert_eq!(per_child.actions_at(a), bulk.actions_at(b2));
        }
    }

    /// The paper's Figure 1 system: one agent, one initial state, mixed
    /// action α / α′ each with probability ½.
    fn figure1() -> Pps<SimpleState, Rational> {
        let mut b = B::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        b.child(g0, st(0, &[1]), r(1, 2), &[(AgentId(0), ActionId(0))])
            .unwrap();
        b.child(g0, st(0, &[2]), r(1, 2), &[(AgentId(0), ActionId(1))])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn empty_builder_fails() {
        assert!(matches!(B::new(1).build(), Err(PpsError::NoInitialStates)));
    }

    #[test]
    fn bad_distribution_rejected() {
        let mut b = B::new(1);
        b.initial(st(0, &[0]), r(1, 2)).unwrap();
        assert!(matches!(b.build(), Err(PpsError::BadDistribution { .. })));
    }

    #[test]
    fn zero_probability_rejected() {
        let mut b = B::new(1);
        assert!(matches!(
            b.initial(st(0, &[0]), Rational::zero()),
            Err(PpsError::NonPositiveProbability { .. })
        ));
    }

    #[test]
    fn negative_probability_rejected() {
        let mut b = B::new(1);
        assert!(matches!(
            b.initial(st(0, &[0]), r(-1, 2)),
            Err(PpsError::NonPositiveProbability { .. })
        ));
    }

    #[test]
    fn above_one_probability_rejected() {
        let mut b = B::new(1);
        assert!(matches!(
            b.initial(st(0, &[0]), r(3, 2)),
            Err(PpsError::ProbabilityAboveOne { .. })
        ));
    }

    #[test]
    fn action_on_initial_edge_rejected() {
        let mut b = B::new(1);
        // Abuse push through child with ROOT parent.
        let res = b.child(
            NodeId::ROOT,
            st(0, &[0]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        );
        assert!(matches!(res, Err(PpsError::ActionOnInitialEdge { .. })));
    }

    #[test]
    fn duplicate_agent_action_rejected() {
        let mut b = B::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        let res = b.child(
            g0,
            st(0, &[1]),
            Rational::one(),
            &[(AgentId(0), ActionId(0)), (AgentId(0), ActionId(1))],
        );
        assert!(matches!(res, Err(PpsError::DuplicateAgentAction { .. })));
    }

    #[test]
    fn agent_out_of_range_rejected() {
        let mut b = B::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        let res = b.child(
            g0,
            st(0, &[1]),
            Rational::one(),
            &[(AgentId(1), ActionId(0))],
        );
        assert!(matches!(res, Err(PpsError::AgentOutOfRange { .. })));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = B::new(1);
        b.initial(st(0, &[0]), Rational::one()).unwrap();
        let res = b.child(NodeId(99), st(0, &[1]), Rational::one(), &[]);
        assert!(matches!(res, Err(PpsError::UnknownNode { .. })));
    }

    #[test]
    fn figure1_structure() {
        let pps = figure1();
        assert_eq!(pps.num_runs(), 2);
        assert_eq!(pps.num_nodes(), 4); // root + g0 + two leaves
        assert_eq!(pps.horizon(), 1);
        assert_eq!(pps.run_len(RunId(0)), 2);
    }

    #[test]
    fn figure1_measure() {
        let pps = figure1();
        assert_eq!(pps.measure(&pps.all_runs()), Rational::one());
        for run in pps.run_ids() {
            assert_eq!(pps.run_probability(run), &r(1, 2));
        }
    }

    #[test]
    fn figure1_actions() {
        let pps = figure1();
        let (i, alpha) = (AgentId(0), ActionId(0));
        assert!(pps.is_proper(i, alpha));
        let ev = pps.action_event(i, alpha);
        assert_eq!(ev.len(), 1);
        let run = ev.iter().next().unwrap();
        assert_eq!(
            pps.action_point(i, alpha, run),
            Some(Point { run, time: 0 })
        );
        // α′ is also proper; a non-existent action is not.
        assert!(pps.is_proper(i, ActionId(1)));
        assert!(!pps.is_proper(i, ActionId(7)));
    }

    #[test]
    fn figure1_cells_merge_mixed_choice() {
        let pps = figure1();
        // At time 0 the agent has a single local state covering both runs
        // (the mixed choice has not resolved yet).
        let c0 = pps
            .cell_at(
                AgentId(0),
                Point {
                    run: RunId(0),
                    time: 0,
                },
            )
            .unwrap();
        let c1 = pps
            .cell_at(
                AgentId(0),
                Point {
                    run: RunId(1),
                    time: 0,
                },
            )
            .unwrap();
        assert_eq!(c0, c1);
        assert_eq!(pps.cell(c0).runs.len(), 2);
        // At time 1 the local data differ (1 vs 2), so the cells split.
        let d0 = pps
            .cell_at(
                AgentId(0),
                Point {
                    run: RunId(0),
                    time: 1,
                },
            )
            .unwrap();
        let d1 = pps
            .cell_at(
                AgentId(0),
                Point {
                    run: RunId(1),
                    time: 1,
                },
            )
            .unwrap();
        assert_ne!(d0, d1);
    }

    #[test]
    fn indistinguishability_relation() {
        let pps = figure1();
        let a = Point {
            run: RunId(0),
            time: 0,
        };
        let b = Point {
            run: RunId(1),
            time: 0,
        };
        assert!(pps.indistinguishable(AgentId(0), a, b));
        let a1 = Point {
            run: RunId(0),
            time: 1,
        };
        let b1 = Point {
            run: RunId(1),
            time: 1,
        };
        assert!(!pps.indistinguishable(AgentId(0), a1, b1));
    }

    #[test]
    fn action_cells_of_figure1() {
        let pps = figure1();
        let cells = pps.action_cells(AgentId(0), ActionId(0));
        assert_eq!(cells.len(), 1);
        assert_eq!(pps.cell(cells[0]).time, 0);
    }

    #[test]
    fn improper_action_detected_and_tagged() {
        // One agent performing α twice along a single run.
        let mut b = B::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        let g1 = b
            .child(
                g0,
                st(0, &[1]),
                Rational::one(),
                &[(AgentId(0), ActionId(0))],
            )
            .unwrap();
        b.child(
            g1,
            st(0, &[2]),
            Rational::one(),
            &[(AgentId(0), ActionId(0))],
        )
        .unwrap();
        let pps = b.build().unwrap();
        assert!(!pps.is_proper(AgentId(0), ActionId(0)));
        let (tagged, fresh) = pps.tag_occurrences(AgentId(0), ActionId(0));
        assert_eq!(fresh.len(), 2);
        for &f in &fresh {
            assert!(tagged.is_proper(AgentId(0), f));
        }
        assert!(tagged.action_name(fresh[0]).contains("occ 0"));
    }

    /// Two runs: run 0 performs α at times 0 and 1; run 1 performs α at
    /// time 1 only (its first occurrence sits at a different time).
    fn double_alpha() -> Pps<SimpleState, Rational> {
        let alpha = (AgentId(0), ActionId(0));
        let mut b = B::new(1);
        let g0 = b.initial(st(0, &[0]), Rational::one()).unwrap();
        let a1 = b.child(g0, st(0, &[1]), r(1, 2), &[alpha]).unwrap();
        b.child(a1, st(0, &[2]), Rational::one(), &[alpha]).unwrap();
        let b1 = b.child(g0, st(0, &[3]), r(1, 2), &[]).unwrap();
        b.child(b1, st(0, &[4]), Rational::one(), &[alpha]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn performance_times_on_multi_occurrence_run() {
        let pps = double_alpha();
        let (i, alpha) = (AgentId(0), ActionId(0));
        assert_eq!(pps.performance_times(i, alpha, RunId(0)), vec![0, 1]);
        assert_eq!(pps.performance_times(i, alpha, RunId(1)), vec![1]);
        // Both runs perform α, but twice in run 0: the action is improper
        // and the α event covers everything.
        assert!(!pps.is_proper(i, alpha));
        assert_eq!(pps.action_event(i, alpha).len(), 2);
    }

    #[test]
    fn tag_occurrences_on_multi_occurrence_run() {
        let pps = double_alpha();
        let (i, alpha) = (AgentId(0), ActionId(0));
        let (tagged, fresh) = pps.tag_occurrences(i, alpha);
        assert_eq!(fresh.len(), 2);

        // The tagging is measure-preserving: same runs, same probabilities.
        assert_eq!(tagged.num_runs(), pps.num_runs());
        for run in pps.run_ids() {
            assert_eq!(tagged.run_probability(run), pps.run_probability(run));
        }
        assert!(tagged.measure(&tagged.all_runs()).is_one());

        // Occurrence k of α along each run becomes fresh[k]: run 0 has
        // occurrence 0 at time 0 and occurrence 1 at time 1; run 1 has
        // occurrence 0 at time 1.
        assert_eq!(tagged.performance_times(i, fresh[0], RunId(0)), vec![0]);
        assert_eq!(tagged.performance_times(i, fresh[1], RunId(0)), vec![1]);
        assert_eq!(tagged.performance_times(i, fresh[0], RunId(1)), vec![1]);
        assert!(tagged.performance_times(i, fresh[1], RunId(1)).is_empty());

        // Every fresh action is proper, and the original label is gone.
        for &f in &fresh {
            assert!(tagged.is_proper(i, f));
            assert!(tagged.action_name(f).contains("occ"));
        }
        assert!(tagged.action_event(i, alpha).is_empty());
    }

    #[test]
    fn runs_through_intervals() {
        let pps = figure1();
        let through_root_child = pps.runs_through(NodeId(1));
        assert_eq!(through_root_child.len(), 2);
        let through_leaf = pps.runs_through(NodeId(2));
        assert_eq!(through_leaf.len(), 1);
    }

    #[test]
    fn conditional_measure() {
        let pps = figure1();
        let a = pps.action_event(AgentId(0), ActionId(0));
        assert_eq!(pps.conditional(&a, &pps.all_runs()), Some(r(1, 2)));
        assert_eq!(pps.conditional(&a, &a), Some(Rational::one()));
        assert_eq!(pps.conditional(&pps.all_runs(), &pps.no_runs()), None);
    }

    #[test]
    fn f64_distribution_tolerance() {
        let mut b = PpsBuilder::<SimpleState, f64>::new(1);
        // 0.1 summed ten times is not exactly 1.0 in binary floating point,
        // but must pass the tolerance check.
        for k in 0..10 {
            b.initial(st(k, &[k]), 0.1).unwrap();
        }
        assert!(b.build().is_ok());
    }

    #[test]
    fn points_enumeration() {
        let pps = figure1();
        let pts: Vec<Point> = pps.points().collect();
        assert_eq!(pts.len(), 4); // two runs × two times
    }

    #[test]
    fn state_access() {
        let pps = figure1();
        let s = pps
            .state_at(Point {
                run: RunId(0),
                time: 0,
            })
            .unwrap();
        assert_eq!(s.local(AgentId(0)), 0);
        assert!(pps
            .state_at(Point {
                run: RunId(0),
                time: 9
            })
            .is_none());
        assert_eq!(pps.node_time(NodeId(1)), 0);
    }

    #[test]
    fn action_names() {
        let mut pps = figure1();
        assert_eq!(pps.action_name(ActionId(0)), "action#0");
        pps.set_action_name(ActionId(0), "fire");
        assert_eq!(pps.action_name(ActionId(0)), "fire");
    }

    #[test]
    fn key_index_dense_and_sparse_agree() {
        // Below the cell cap: dense table. Above: hash map. Both must
        // behave identically (the sweep only ever exercises the dense
        // path, so the sparse fallback is pinned here).
        let mut dense = KeyIndex::new(16, 16);
        assert!(matches!(dense, KeyIndex::Dense { .. }));
        let rows = 1 << 11;
        let mut sparse = KeyIndex::new(rows, rows); // 4M cells > the cap
        assert!(matches!(sparse, KeyIndex::Sparse(_)));
        for index in [&mut dense, &mut sparse] {
            assert_eq!(index.get(3, 5), INDEX_NONE);
            index.set(3, 5, 42);
            index.set(0, 0, 7);
            assert_eq!(index.get(3, 5), 42);
            assert_eq!(index.get(0, 0), 7);
            assert_eq!(index.get(5, 3), INDEX_NONE);
            index.set(3, 5, 43); // overwrite
            assert_eq!(index.get(3, 5), 43);
        }
        // Sparse accepts coordinates far outside any dense allocation.
        sparse.set(rows - 1, rows - 1, 9);
        assert_eq!(sparse.get(rows - 1, rows - 1), 9);
    }
}
