//! # pak-bench — the experiment harness
//!
//! One Criterion bench target per experiment of the reproduction (the
//! experiment index `e1`–`e11` is tabulated in the repository-root
//! `README.md`). Each target first prints a **paper-vs-measured** table —
//! the reproduction artefact — and then benchmarks the computation that
//! produced it.
//!
//! Run everything with `cargo bench --workspace`; a single experiment with
//! e.g. `cargo bench --bench e1_firing_squad`. Setting `PAK_BENCH_QUICK=1`
//! makes the vendored `criterion` shim take minimal samples while still
//! executing (and asserting) every bench body — CI's smoke mode. The
//! `scaling` bench additionally writes `BENCH_scaling.json`, the
//! machine-readable perf trail tracked across PRs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use criterion::Criterion;

/// A paper-vs-measured report row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Which quantity this row reports.
    pub quantity: String,
    /// The paper's value, as printed in the paper (string to preserve the
    /// paper's own rounding).
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the reproduction matches.
    pub matches: bool,
}

impl Row {
    /// Builds a row, deciding `matches` by string equality.
    #[must_use]
    pub fn exact(quantity: &str, paper: &str, measured: impl ToString) -> Self {
        let measured = measured.to_string();
        Row {
            quantity: quantity.to_string(),
            paper: paper.to_string(),
            matches: paper == measured,
            measured,
        }
    }

    /// Builds a row comparing floats at the paper's printed precision.
    #[must_use]
    pub fn approx(quantity: &str, paper: f64, measured: f64, tol: f64) -> Self {
        Row {
            quantity: quantity.to_string(),
            paper: format!("{paper}"),
            measured: format!("{measured:.6}"),
            matches: (paper - measured).abs() <= tol,
        }
    }

    /// Builds a row for a boolean claim (e.g. "theorem holds").
    #[must_use]
    pub fn claim(quantity: &str, expected: bool, observed: bool) -> Self {
        Row {
            quantity: quantity.to_string(),
            paper: expected.to_string(),
            measured: observed.to_string(),
            matches: expected == observed,
        }
    }
}

/// Prints a paper-vs-measured table and panics if any row mismatches (the
/// bench doubles as a reproduction check).
///
/// # Panics
///
/// Panics if any row fails to match.
pub fn print_report(experiment: &str, rows: &[Row]) {
    println!("\n=== {experiment} ===");
    println!("{:<52} {:>16} {:>16}  ok", "quantity", "paper", "measured");
    println!("{}", "-".repeat(92));
    let mut all_ok = true;
    for row in rows {
        println!(
            "{:<52} {:>16} {:>16}  {}",
            row.quantity,
            row.paper,
            row.measured,
            if row.matches { "✓" } else { "✗" }
        );
        all_ok &= row.matches;
    }
    println!();
    assert!(
        all_ok,
        "{experiment}: reproduction mismatch (see table above)"
    );
}

/// A Criterion instance tuned for this suite: short measurement windows so
/// the full experiment matrix completes quickly while still producing
/// stable numbers.
#[must_use]
pub fn criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(20)
        .configure_from_args()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_constructors() {
        let r = Row::exact("x", "99/100", "99/100");
        assert!(r.matches);
        let r = Row::exact("x", "99/100", "1/2");
        assert!(!r.matches);
        let r = Row::approx("y", 0.99899, 0.998991, 1e-5);
        assert!(r.matches);
        let r = Row::claim("z", true, true);
        assert!(r.matches);
    }

    #[test]
    fn print_report_accepts_matching_rows() {
        print_report("unit-test", &[Row::claim("ok", true, true)]);
    }

    #[test]
    #[should_panic(expected = "reproduction mismatch")]
    fn print_report_rejects_mismatch() {
        print_report("unit-test", &[Row::claim("bad", true, false)]);
    }
}
