//! E9 — coordinated attack (Fischer–Zuck [20], §1).
//!
//! The property the paper generalises: the coordination probability equals
//! general A's expected belief that B attacks, when A attacks — across
//! rounds and loss rates.

use criterion::{black_box, BenchmarkId, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_core::theorems::check_expectation;
use pak_num::Rational;
use pak_systems::attack::{AttackSystem, CoordinatedAttack, ATTACK_A, GENERAL_A};

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

fn report() {
    let mut rows = Vec::new();
    for rounds in [1u32, 2, 3, 4] {
        let scenario = CoordinatedAttack::new(r(1, 10), r(1, 2), rounds);
        let sys = scenario.build_pps().unwrap();
        let a = sys.analyze();
        let rep = check_expectation(
            sys.pps(),
            GENERAL_A,
            ATTACK_A,
            &AttackSystem::<Rational>::b_attacks(),
        )
        .unwrap();
        // Coordination improves with A→B (even-round) retransmissions:
        // 1 − loss^(#sends).
        let sends = rounds.div_ceil(2);
        let expected = r(1, 10).pow(sends as i32).one_minus();
        rows.push(Row::exact(
            &format!("coordination, {rounds} round(s)"),
            &expected.to_string(),
            a.constraint_probability(),
        ));
        rows.push(Row::claim(
            &format!("E[β_A(B attacks)] = coordination, {rounds} round(s)"),
            true,
            rep.equal,
        ));
    }
    print_report(
        "E9: coordinated attack — Fischer–Zuck average belief",
        &rows,
    );

    // A's belief distribution with an acknowledgement round.
    let scenario = CoordinatedAttack::new(r(1, 10), r(1, 2), 2);
    let a = scenario.build_pps().unwrap().analyze();
    println!("belief distribution with 2 rounds (ack):");
    for (belief, measure) in a.belief_distribution() {
        println!("  β = {:<8} on measure {}", belief.to_string(), measure);
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9");
    for rounds in [1u32, 3, 5, 7] {
        group.bench_with_input(
            BenchmarkId::new("unfold_analyze", rounds),
            &rounds,
            |b, &n| {
                let scenario = CoordinatedAttack::new(r(1, 10), r(1, 2), n);
                b.iter(|| black_box(scenario.build_pps().unwrap().analyze()))
            },
        );
    }
    group.finish();
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
