//! E2 — Figure 1: both counterexamples.
//!
//! §4: with `ψ = ¬does_i(α)`, the belief is ½ at every acting point yet
//! `µ(ψ@α | α) = 0` — meeting the threshold is not sufficient without
//! local-state independence.
//!
//! §6: with `ϕ = does_i(α)`, `µ(ϕ@α | α) = 1` but `E[β@α | α] = ½` — the
//! expectation equality also needs independence.

use criterion::{black_box, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_core::belief::ActionAnalysis;
use pak_core::independence::check_local_state_independence;
use pak_core::theorems::check_expectation;
use pak_num::Rational;
use pak_systems::figure1::{figure1, phi, psi, AGENT_I, ALPHA};

fn report() {
    let pps = figure1::<Rational>();
    let suff = ActionAnalysis::new(&pps, AGENT_I, ALPHA, &psi()).unwrap();
    let exp = check_expectation(&pps, AGENT_I, ALPHA, &phi()).unwrap();
    let lsi_psi = check_local_state_independence(&pps, &psi(), AGENT_I, ALPHA);

    print_report(
        "E2: Figure 1 — counterexamples without local-state independence",
        &[
            Row::exact(
                "β_i(ψ) at every α-point",
                "1/2",
                suff.min_belief_when_acting().unwrap(),
            ),
            Row::exact("µ(ψ@α | α)", "0", suff.constraint_probability()),
            Row::claim("ψ local-state independent of α", false, lsi_psi.independent),
            Row::exact("µ(ϕ@α | α) for ϕ = does(α)", "1", &exp.lhs),
            Row::exact("E[β_i(ϕ)@α | α]", "1/2", &exp.rhs),
            Row::claim("Theorem 6.2 equality (must fail here)", false, exp.equal),
            Row::claim(
                "Theorem 6.2 implication still sound",
                true,
                exp.implication_holds(),
            ),
        ],
    );
}

fn benches(c: &mut Criterion) {
    c.bench_function("e2/build_figure1", |b| {
        b.iter(|| black_box(figure1::<Rational>()))
    });
    let pps = figure1::<Rational>();
    c.bench_function("e2/lsi_check", |b| {
        b.iter(|| black_box(check_local_state_independence(&pps, &psi(), AGENT_I, ALPHA)))
    });
    c.bench_function("e2/expectation_check", |b| {
        b.iter(|| black_box(check_expectation(&pps, AGENT_I, ALPHA, &phi()).unwrap()))
    });
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
