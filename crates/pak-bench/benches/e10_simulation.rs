//! E10 — Monte-Carlo vs exact cross-validation, and simulator throughput.
//!
//! For the flagship systems, sampled estimates of `µ(ϕ@α | α)` must
//! bracket the exact value within the 99% Wilson interval at increasing
//! sample sizes; the throughput benchmarks measure trials/second.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use pak_bench::{criterion, print_report, Row};
use pak_num::Rational;
use pak_protocol::messaging::LossyMessagingModel;
use pak_sim::estimate::estimate_constraint;
use pak_sim::Simulator;
use pak_systems::firing_squad::{FiringSquad, ALICE, BOB, FIRE_A, FIRE_B};

fn report() {
    let mut rows = Vec::new();
    for n in [1_000u64, 10_000, 100_000] {
        let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
        let est = estimate_constraint::<_, Rational>(&model, n, n, ALICE, FIRE_A, |t, time| {
            t.does(ALICE, FIRE_A, time) && t.does(BOB, FIRE_B, time)
        });
        let (lo, hi) = est.proportion.wilson(2.576);
        rows.push(Row::claim(
            &format!("FS: exact 0.99 ∈ 99% CI at N = {n} ([{lo:.4}, {hi:.4}])"),
            true,
            est.proportion.contains(0.99, 2.576),
        ));
    }
    print_report("E10: Monte-Carlo cross-validation", &rows);
}

fn benches(c: &mut Criterion) {
    let model = LossyMessagingModel::new(FiringSquad::paper(), Rational::from_ratio(1, 10));
    let model64 = LossyMessagingModel::new(FiringSquad::new(0.1f64, 0.5, 2), 0.1f64);

    let mut group = c.benchmark_group("e10/throughput");
    for n in [100u64, 1_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("sample_fs_rational", n), &n, |b, &n| {
            let mut sim = Simulator::<_, Rational>::new(&model, 1);
            b.iter(|| {
                sim.sample_each(n, |t| {
                    black_box(t.len());
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("sample_fs_f64", n), &n, |b, &n| {
            let mut sim = Simulator::<_, f64>::new(&model64, 1);
            b.iter(|| {
                sim.sample_each(n, |t| {
                    black_box(t.len());
                })
            })
        });
    }
    group.finish();
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
