//! E11 — ablation: the §8 policy space and the value of each information
//! state.
//!
//! Design-by-Theorem-6.2: the success of every firing policy is predicted
//! from one base analysis (belief-weighted averages) and confirmed by
//! re-unfolding; the §8 ordering ALWAYS < REFRAIN_ON_NO < only-Yes is
//! reproduced, as is the broadcast family's closed form.

use criterion::{black_box, BenchmarkId, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_num::Rational;
use pak_systems::broadcast::Broadcast;
use pak_systems::firing_squad::{FirePolicy, FiringSquad};
use pak_systems::policy::{pareto_frontier, safest_policy, sweep_policies};

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

fn report() {
    let outcomes = sweep_policies(&FiringSquad::paper());
    let get = |p: FirePolicy| {
        outcomes
            .iter()
            .find(|o| o.policy == p)
            .unwrap()
            .success_probability
            .clone()
    };
    let only_yes = FirePolicy {
        on_yes: true,
        on_no: false,
        on_nothing: false,
    };
    let all_match = outcomes
        .iter()
        .all(pak_systems::policy::PolicyOutcome::prediction_matches);

    let bcast = Broadcast::new(3, r(1, 10), 2);
    let bcast_mu = bcast
        .build_pps()
        .unwrap()
        .analyze()
        .constraint_probability();

    print_report(
        "E11: §8 policy ablation + broadcast closed form",
        &[
            Row::claim(
                "Thm 6.2 predictions = measurements (7 policies)",
                true,
                all_match,
            ),
            Row::exact(
                "success(ALWAYS) — the paper's FS",
                "99/100",
                get(FirePolicy::ALWAYS),
            ),
            Row::exact(
                "success(REFRAIN_ON_NO) — §8",
                "990/991",
                get(FirePolicy::REFRAIN_ON_NO),
            ),
            Row::exact("success(only-Yes) — safest live policy", "1", get(only_yes)),
            Row::claim(
                "safest_policy() finds only-Yes",
                true,
                safest_policy(&outcomes).policy == only_yes,
            ),
            Row::claim(
                "Pareto frontier = {ALWAYS, REFRAIN_ON_NO, only-Yes}",
                true,
                pareto_frontier(&outcomes).len() == 3,
            ),
            Row::exact(
                "broadcast(3 agents, loss 0.1, 2 rounds) µ(all|src)",
                "9801/10000",
                &bcast_mu,
            ),
            Row::exact(
                "closed form (1 − loss²)²",
                &bcast.closed_form_all_deliver().to_string(),
                &bcast_mu,
            ),
        ],
    );
}

fn benches(c: &mut Criterion) {
    c.bench_function("e11/sweep_policies", |b| {
        let base = FiringSquad::paper();
        b.iter(|| black_box(sweep_policies(&base)))
    });
    let mut group = c.benchmark_group("e11/broadcast");
    for n in [2u32, 3, 4] {
        group.bench_with_input(BenchmarkId::new("unfold_analyze", n), &n, |b, &n| {
            let bc = Broadcast::new(n, r(1, 10), 2);
            b.iter(|| black_box(bc.build_pps().unwrap().analyze()))
        });
    }
    group.finish();
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
