//! E5 — Theorem 7.1 / Corollary 7.2: the PAK tradeoff and its frontier.
//!
//! Reproduces the paper's closing §7 computation (`µ ≥ 0.99 ⇒ believe
//! ≥ 0.9 with probability ≥ 0.9` on Example 1) and the frontier
//! `p′ = 1 − √(1 − p)`, then sweeps Corollary 7.2 exactly on `Tˆ`
//! instances whose constraint probability is exactly `1 − ε²`.

use criterion::{black_box, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_core::prob::Probability;
use pak_core::theorems::{check_pak_corollary, pak_frontier};
use pak_num::Rational;
use pak_systems::firing_squad::{FiringSquad, FsSystem, ALICE, FIRE_A};
use pak_systems::threshold::{ThresholdConstruction, AGENT_I, ALPHA};

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

fn report() {
    // §7's Example-1 instance.
    let sys = FiringSquad::paper().build_pps();
    let rep = check_pak_corollary(
        sys.pps(),
        ALICE,
        FIRE_A,
        &FsSystem::<Rational>::phi_both(),
        &r(1, 10),
    )
    .unwrap();

    let mut rows = vec![
        Row::claim(
            "Example 1: µ = 0.99 ≥ 1 − 0.1² (premise)",
            true,
            rep.premise_holds,
        ),
        Row::exact(
            "Example 1: µ(β ≥ 0.9 | fire_A)",
            "991/1000",
            &rep.strong_belief_measure,
        ),
        Row::claim(
            "Example 1: ≥ 0.9 as Corollary 7.2 demands",
            true,
            rep.strong_belief_measure.at_least(&r(9, 10)),
        ),
        Row::approx("frontier p′(0.99)", 0.9, pak_frontier(0.99), 1e-12),
        Row::approx("frontier p′(0.75)", 0.5, pak_frontier(0.75), 1e-12),
    ];

    // Corollary 7.2 exactly on Tˆ(1 − ε², ·) instances.
    for en in [2i64, 4, 10] {
        let eps = r(1, en);
        let p = (&eps * &eps).one_minus();
        let t = ThresholdConstruction::new(p.clone(), &eps * &p);
        let pps = t.build();
        let rep = check_pak_corollary(
            &pps,
            AGENT_I,
            ALPHA,
            &ThresholdConstruction::<Rational>::phi(),
            &eps,
        )
        .unwrap();
        rows.push(Row::claim(
            &format!("Cor 7.2 on Tˆ(1−ε², ε(1−ε²)), ε = 1/{en}"),
            true,
            rep.premise_holds && rep.implication_holds,
        ));
    }
    print_report("E5: Theorem 7.1 / Corollary 7.2 — the PAK bound", &rows);
}

fn benches(c: &mut Criterion) {
    let sys = FiringSquad::paper().build_pps();
    let phi = FsSystem::<Rational>::phi_both();
    c.bench_function("e5/check_pak_corollary_fs", |b| {
        b.iter(|| {
            black_box(check_pak_corollary(sys.pps(), ALICE, FIRE_A, &phi, &r(1, 10)).unwrap())
        })
    });
    c.bench_function("e5/pak_frontier_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 1..1000 {
                acc += pak_frontier(f64::from(i) / 1000.0);
            }
            black_box(acc)
        })
    });
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
    c.save_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_e5_pak_frontier.json"
    ));
}
