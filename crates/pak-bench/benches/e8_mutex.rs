//! E8 — relaxed mutual exclusion (§1 motivation).
//!
//! The guarantee `µ(empty@enter | enter)` is the Bayesian posterior of the
//! noisy sensor; the expectation theorem holds exactly; the PAK bound
//! applies at the implied ε.

use criterion::{black_box, BenchmarkId, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_core::ids::AgentId;
use pak_core::theorems::{check_expectation, check_pak_corollary};
use pak_num::Rational;
use pak_systems::mutex::{enter_action, RelaxedMutex};

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

fn report() {
    let scenario = RelaxedMutex::new(r(1, 5), r(1, 20), 2);
    let analysis = scenario.analyze(AgentId(0)).unwrap();
    let pps = scenario.build_pps();
    let exp = check_expectation(
        &pps,
        AgentId(0),
        enter_action(AgentId(0)),
        &RelaxedMutex::<Rational>::cs_empty(),
    )
    .unwrap();
    let pak = check_pak_corollary(
        &pps,
        AgentId(0),
        enter_action(AgentId(0)),
        &RelaxedMutex::<Rational>::cs_empty(),
        &r(12, 100),
    )
    .unwrap();

    print_report(
        "E8: relaxed mutual exclusion (busy 1/5, noise 1/20, 2 agents)",
        &[
            Row::exact(
                "µ(empty@enter | enter) = Bayes posterior",
                &scenario.posterior_empty_given_free().to_string(),
                analysis.constraint_probability(),
            ),
            Row::exact(
                "µ(empty@enter | enter)",
                "76/77",
                analysis.constraint_probability(),
            ),
            Row::claim("Theorem 6.2 equality", true, exp.equal),
            Row::claim(
                "entry deterministic ⇒ LSI",
                true,
                exp.independence.independent,
            ),
            Row::claim(
                "Corollary 7.2 at ε = 0.12",
                true,
                pak.premise_holds && pak.implication_holds,
            ),
        ],
    );

    // The sweep the paper's motivation implies: noisier sensors weaken the
    // achievable probabilistic-ME guarantee.
    println!("guarantee vs sensor noise (busy prior 1/5):");
    for (n, d) in [(1i64, 100i64), (1, 20), (1, 10), (1, 4)] {
        let m = RelaxedMutex::new(r(1, 5), r(n, d), 1);
        let a = m.analyze(AgentId(0)).unwrap();
        println!(
            "  noise {:>6}: µ = {:<10} ({:.5})",
            format!("{n}/{d}"),
            a.constraint_probability().to_string(),
            a.constraint_probability().to_f64()
        );
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8");
    for agents in [1u32, 2, 4, 6] {
        group.bench_with_input(
            BenchmarkId::new("build_analyze", agents),
            &agents,
            |b, &n| {
                let m = RelaxedMutex::new(r(1, 5), r(1, 20), n);
                b.iter(|| black_box(m.analyze(AgentId(0)).unwrap()))
            },
        );
    }
    group.finish();
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
