//! E3 — Theorem 5.2 / Figure 2: the threshold-met measure has no positive
//! lower bound.
//!
//! For each `(p, ε)` in the sweep, the witness `Tˆ(p, ε)` must satisfy the
//! constraint at exactly `p` while meeting the threshold only on measure
//! `ε`, with the merged-state belief at exactly `(p − ε)/(1 − ε)`.

use criterion::{black_box, BenchmarkId, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_num::Rational;
use pak_systems::threshold::ThresholdConstruction;

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

fn report() {
    let mut rows = Vec::new();
    for (p, eps) in [
        (r(3, 4), r(1, 4)),
        (r(3, 4), r(1, 100)),
        (r(3, 4), r(1, 10_000)),
        (r(99, 100), r(1, 1000)),
        (r(1, 2), r(1, 1_000_000)),
    ] {
        let t = ThresholdConstruction::new(p.clone(), eps.clone());
        let claims = t.verify();
        rows.push(Row::exact(
            &format!("µ(ϕ@α|α) in Tˆ({p}, {eps})"),
            &p.to_string(),
            &claims.constraint_probability,
        ));
        rows.push(Row::exact(
            &format!("µ(β ≥ {p} | α) in Tˆ({p}, {eps})"),
            &eps.to_string(),
            &claims.threshold_met_measure,
        ));
        rows.push(Row::exact(
            &format!("merged belief (p−ε)/(1−ε) in Tˆ({p}, {eps})"),
            &claims.expected_merged_belief.to_string(),
            &claims.merged_belief,
        ));
    }
    print_report(
        "E3: Theorem 5.2 — arbitrarily rare threshold meeting",
        &rows,
    );
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3");
    for denom in [10i64, 1000, 100_000] {
        group.bench_with_input(BenchmarkId::new("verify", denom), &denom, |b, &d| {
            let t = ThresholdConstruction::new(r(3, 4), r(1, d));
            b.iter(|| black_box(t.verify()))
        });
    }
    group.finish();
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
