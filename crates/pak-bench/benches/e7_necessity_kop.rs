//! E7 — Lemma 5.1 (necessity of sometimes meeting the threshold) and
//! Lemma F.1 (the Knowledge-of-Preconditions limit at p = 1).

use criterion::{black_box, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_core::fact::StateFact;
use pak_core::ids::Point;
use pak_core::prelude::*;
use pak_core::theorems::{check_kop_limit, check_necessity};
use pak_num::Rational;
use pak_protocol::generator::{random_pps, RandomModelConfig};
use pak_systems::firing_squad::{FiringSquad, FsSystem, ALICE, FIRE_A};

fn all_actions(pps: &Pps<SimpleState, Rational>) -> Vec<(AgentId, ActionId)> {
    let mut out = Vec::new();
    for run in pps.run_ids() {
        for t in 0..pps.run_len(run) as u32 {
            for &(a, act) in pps.actions_at(Point { run, time: t }) {
                if !out.contains(&(a, act)) {
                    out.push((a, act));
                }
            }
        }
    }
    out
}

fn report() {
    // Lemma 5.1 on Example 1: µ = 0.99, so some firing point has β ≥ 0.99
    // (the Yes-reply point, belief 1).
    let sys = FiringSquad::paper().build_pps();
    let nec = check_necessity(
        sys.pps(),
        ALICE,
        FIRE_A,
        &FsSystem::<Rational>::phi_both(),
        &Rational::from_ratio(99, 100),
    )
    .unwrap();

    // Lemma 5.1 + F.1 on random protocol systems.
    let cfg = RandomModelConfig::default();
    let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
    let (mut nec_ok, mut kop_ok, mut kop_binding, mut total) = (0usize, 0usize, 0usize, 0usize);
    for seed in 0..40 {
        let pps = random_pps::<Rational>(seed, &cfg).unwrap();
        for (agent, action) in all_actions(&pps) {
            if !pps.is_proper(agent, action) {
                continue;
            }
            total += 1;
            let a = ActionAnalysis::new(&pps, agent, action, &fact).unwrap();
            let p = a.constraint_probability();
            let rep = check_necessity(&pps, agent, action, &fact, &p).unwrap();
            if rep.implication_holds && rep.witness.is_some() {
                nec_ok += 1;
            }
            let kop = check_kop_limit(&pps, agent, action, &fact).unwrap();
            if kop.implication_holds {
                kop_ok += 1;
            }
            if kop.constraint_probability.is_one() && kop.certainty_measure.is_one() {
                kop_binding += 1;
            }
        }
    }

    print_report(
        "E7: Lemma 5.1 (necessity) + Lemma F.1 (KoP limit)",
        &[
            Row::claim(
                "Example 1: ∃ firing point with β ≥ 0.99",
                true,
                nec.witness.is_some(),
            ),
            Row::exact("Example 1: max belief when firing", "1", &nec.max_belief),
            Row::exact(
                "Lemma 5.1 witness found (random systems)",
                &total.to_string(),
                nec_ok,
            ),
            Row::exact("Lemma F.1 implication holds", &total.to_string(), kop_ok),
            Row::claim(
                "Lemma F.1 binding cases observed (µ=1 ⇒ β≡1)",
                true,
                kop_binding > 0,
            ),
        ],
    );
    println!("({total} triples; {kop_binding} had µ(ϕ@α|α) = 1 exactly)");
}

fn benches(c: &mut Criterion) {
    let sys = FiringSquad::paper().build_pps();
    let phi = FsSystem::<Rational>::phi_both();
    c.bench_function("e7/check_necessity_fs", |b| {
        let p = Rational::from_ratio(99, 100);
        b.iter(|| black_box(check_necessity(sys.pps(), ALICE, FIRE_A, &phi, &p).unwrap()))
    });
    c.bench_function("e7/check_kop_limit_fs", |b| {
        b.iter(|| black_box(check_kop_limit(sys.pps(), ALICE, FIRE_A, &phi).unwrap()))
    });
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
