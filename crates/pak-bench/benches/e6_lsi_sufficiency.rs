//! E6 — Lemma 4.3 + Theorem 4.2: sufficient conditions for local-state
//! independence, and threshold sufficiency under it.
//!
//! Checks on random protocol systems that (a) deterministic actions give
//! LSI for any fact, (b) past-based facts give LSI for any action, and
//! that with LSI the minimum acting belief lower-bounds the constraint
//! probability. Also demonstrates the reproduction finding that (b)
//! *requires* protocol consistency: on raw random trees it fails.

use criterion::{black_box, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_core::fact::{Facts, FnFact, StateFact};
use pak_core::generator::{GeneratorConfig, PpsGenerator};
use pak_core::ids::Point;
use pak_core::independence::{check_lemma43, is_local_state_independent};
use pak_core::prelude::*;
use pak_core::theorems::check_sufficiency;
use pak_num::Rational;
use pak_protocol::generator::{random_pps, RandomModelConfig};

fn all_actions(pps: &Pps<SimpleState, Rational>) -> Vec<(AgentId, ActionId)> {
    let mut out = Vec::new();
    for run in pps.run_ids() {
        for t in 0..pps.run_len(run) as u32 {
            for &(a, act) in pps.actions_at(Point { run, time: t }) {
                if !out.contains(&(a, act)) {
                    out.push((a, act));
                }
            }
        }
    }
    out
}

fn report() {
    let cfg = RandomModelConfig::default();
    let past_based = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
    let future = FnFact::new(
        "future act",
        |pps: &Pps<SimpleState, Rational>, pt: Point| {
            ((pt.time + 1)..pps.run_len(pt.run) as u32).any(|t| {
                !pps.actions_at(Point {
                    run: pt.run,
                    time: t,
                })
                .is_empty()
            })
        },
    );

    let (mut lsi_b, mut total_b) = (0usize, 0usize);
    let (mut lsi_a, mut total_a) = (0usize, 0usize);
    let (mut suff_ok, mut suff_total) = (0usize, 0usize);
    for seed in 0..40 {
        let pps = random_pps::<Rational>(seed, &cfg).unwrap();
        for (agent, action) in all_actions(&pps) {
            if !pps.is_proper(agent, action) {
                continue;
            }
            // (b) past-based ⇒ LSI.
            total_b += 1;
            if is_local_state_independent(&pps, &past_based, agent, action) {
                lsi_b += 1;
            }
            // (a) deterministic ⇒ LSI even for future facts.
            let lemma = check_lemma43(&pps, &future, agent, action);
            if lemma.action_deterministic {
                total_a += 1;
                if is_local_state_independent(&pps, &future, agent, action) {
                    lsi_a += 1;
                }
            }
            // Theorem 4.2 at p = min acting belief.
            suff_total += 1;
            let a = ActionAnalysis::new(&pps, agent, action, &past_based).unwrap();
            let p = a.min_belief_when_acting().unwrap();
            let rep = check_sufficiency(&pps, agent, action, &past_based, &p).unwrap();
            if rep.implication_holds && a.constraint_probability().at_least(&p) {
                suff_ok += 1;
            }
        }
    }

    // Reproduction finding: Lemma 4.3(b) needs protocol consistency — on
    // raw random trees a past-based fact can fail LSI.
    let mut raw_violation_found = false;
    for seed in 0..200 {
        let mut g = PpsGenerator::new(
            seed,
            GeneratorConfig {
                unbalanced: false,
                ..GeneratorConfig::default()
            },
        );
        let pps = g.generate::<Rational>();
        for (agent, action) in all_actions(&pps) {
            if pps.is_proper(agent, action)
                && !is_local_state_independent(&pps, &past_based, agent, action)
            {
                raw_violation_found = true;
            }
        }
        if raw_violation_found {
            break;
        }
    }

    print_report(
        "E6: Lemma 4.3 + Theorem 4.2 — independence and sufficiency",
        &[
            Row::exact(
                "4.3(b): past-based ⇒ LSI (protocol systems)",
                &total_b.to_string(),
                lsi_b,
            ),
            Row::exact(
                "4.3(a): deterministic ⇒ LSI (future fact)",
                &total_a.to_string(),
                lsi_a,
            ),
            Row::exact(
                "Thm 4.2 non-vacuous at p = min belief",
                &suff_total.to_string(),
                suff_ok,
            ),
            Row::claim(
                "4.3(b) can FAIL on non-protocol trees (finding)",
                true,
                raw_violation_found,
            ),
        ],
    );
}

fn benches(c: &mut Criterion) {
    let cfg = RandomModelConfig::default();
    let pps = random_pps::<Rational>(7, &cfg).unwrap();
    let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
    let (agent, action) = all_actions(&pps)
        .into_iter()
        .find(|&(a, act)| pps.is_proper(a, act))
        .expect("proper action exists");
    c.bench_function("e6/lsi_check", |b| {
        b.iter(|| black_box(is_local_state_independent(&pps, &fact, agent, action)))
    });
    c.bench_function("e6/past_based_check", |b| {
        b.iter(|| black_box(pps.is_past_based(&fact)))
    });
    c.bench_function("e6/deterministic_check", |b| {
        b.iter(|| black_box(pps.is_deterministic_action(agent, action)))
    });
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
