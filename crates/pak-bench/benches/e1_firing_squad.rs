//! E1 — Example 1: the relaxed firing squad.
//!
//! Paper claims reproduced here (all from §1, §3, §7, §8):
//!
//! * `µ(ϕ_both@fire_A | fire_A) = 0.99 ≥ 0.95`;
//! * Alice's beliefs when firing are `{1, 0, 0.99}`;
//! * the 0.95 threshold is met on measure `0.991` of firing runs;
//! * the §8 refrain-on-No refinement lifts the guarantee to `0.99899`.

use criterion::{black_box, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_num::Rational;
use pak_systems::firing_squad::{FiringSquad, FsSystem};

fn report() {
    let analysis = FiringSquad::paper().build_pps().analyze();
    let improved = FiringSquad::improved().build_pps().analyze();
    let beliefs: Vec<String> = analysis
        .belief_distribution()
        .iter()
        .map(|(b, _)| b.to_string())
        .collect();
    print_report(
        "E1: Example 1 — relaxed firing squad (loss 0.1, go ~ B(1/2))",
        &[
            Row::exact(
                "µ(ϕ_both@fire_A | fire_A)",
                "99/100",
                analysis.constraint_probability(),
            ),
            Row::claim(
                "spec µ ≥ 0.95 satisfied",
                true,
                analysis.satisfies_constraint(&Rational::from_ratio(19, 20)),
            ),
            Row::exact(
                "µ(β_A ≥ 0.95 | fire_A)",
                "991/1000",
                analysis.threshold_measure(&Rational::from_ratio(19, 20)),
            ),
            Row::exact(
                "Alice's belief values when firing",
                "0, 99/100, 1",
                beliefs.join(", "),
            ),
            Row::exact(
                "E[β_A(ϕ_both)@fire_A | fire_A] (= µ, Thm 6.2)",
                "99/100",
                analysis.expected_belief(),
            ),
            Row::exact(
                "§8 improved µ(ϕ_both@fire_A | fire_A)",
                "990/991",
                improved.constraint_probability(),
            ),
            Row::approx(
                "§8 improved, decimal",
                0.99899,
                improved.constraint_probability().to_f64(),
                1e-5,
            ),
        ],
    );
}

fn benches(c: &mut Criterion) {
    c.bench_function("e1/unfold_fs_exact", |b| {
        b.iter(|| black_box(FiringSquad::paper().build_pps()))
    });
    c.bench_function("e1/unfold_fs_f64", |b| {
        let fs = FiringSquad::new(0.1f64, 0.5, 2);
        b.iter(|| black_box(fs.build_pps()))
    });
    let sys = FiringSquad::paper().build_pps();
    c.bench_function("e1/analyze_exact", |b| b.iter(|| black_box(sys.analyze())));
    c.bench_function("e1/threshold_measure", |b| {
        let a = sys.analyze();
        let p = Rational::from_ratio(19, 20);
        b.iter(|| black_box(a.threshold_measure(&p)))
    });
    let _ = FsSystem::<Rational>::phi_both();
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
