//! Engineering benchmarks (not paper claims): how the analyses scale with
//! system size, and the exact-vs-float cost ablation (see the Perf
//! methodology section of `ARCHITECTURE.md`). Writes `BENCH_scaling.json`
//! at the workspace root — the machine-readable perf trail whose medians
//! are summarised in `ROADMAP.md`.

use std::sync::Arc;

use criterion::{black_box, BatchSize, BenchmarkId, Criterion};
use pak_bench::criterion;
use pak_core::belief::ActionAnalysis;
use pak_core::fact::StateFact;
use pak_core::failpoint::{self, FailPlan, Fault};
use pak_core::prelude::*;
use pak_engine::Evaluator;
use pak_logic::generator::{random_formula, RandomFormulaConfig};
use pak_logic::{Formula, ModelChecker};
use pak_num::Rational;
use pak_protocol::generator::{random_model, random_pps, RandomModelConfig};
use pak_protocol::model::TableModel;
use pak_protocol::unfold::{
    unfold_with, unfold_with_options, UnfoldConfig, UnfoldOptions, Unfolder,
};
use pak_server::{PakServer, Query, ServerConfig};
use pak_systems::attack::CoordinatedAttack;

fn cfg(horizon: u32) -> RandomModelConfig {
    RandomModelConfig {
        n_agents: 2,
        initial_states: 2,
        horizon,
        envs: 3,
        max_env_branching: 2,
        local_values: 2,
        actions_per_agent: 2,
    }
}

fn benches(c: &mut Criterion) {
    // Unfolding cost vs horizon (tree size grows exponentially). The high
    // horizons are where the interned pipeline pays off: node counts grow
    // exponentially while distinct `(state, time)` pairs stay flat, so
    // both the memoized unfolder and the O(distinct) build pass pull
    // further ahead of tree size with every extra round.
    let mut group = c.benchmark_group("scaling/unfold");
    for horizon in [2u32, 3, 4, 5, 6] {
        let model = random_model::<Rational>(11, &cfg(horizon));
        let runs = unfold_with(&model, &UnfoldConfig::default())
            .unwrap()
            .num_runs();
        group.bench_with_input(
            BenchmarkId::new(format!("horizon_{horizon}_runs_{runs}"), horizon),
            &model,
            |b, m| b.iter(|| black_box(unfold_with(m, &UnfoldConfig::default()).unwrap())),
        );
    }
    group.finish();

    // The same workloads through forced parallel subtree unfolding (one
    // worker per initial state, stitched back into the sequential order).
    // On single-core machines this column measures pure threading
    // overhead — the point is to track the crossover as trees and
    // machines grow, not to always win.
    let mut group = c.benchmark_group("scaling/unfold_threaded");
    for horizon in [2u32, 3, 4, 5, 6] {
        let model = random_model::<Rational>(11, &cfg(horizon));
        let runs = unfold_with(&model, &UnfoldConfig::default())
            .unwrap()
            .num_runs();
        let options = UnfoldOptions {
            parallel_subtrees: Some(true),
            ..UnfoldOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::new(format!("horizon_{horizon}_runs_{runs}"), horizon),
            &model,
            |b, m| {
                b.iter(|| {
                    black_box(unfold_with_options(m, &UnfoldConfig::default(), &options).unwrap())
                })
            },
        );
    }
    group.finish();

    // Incremental horizon extension vs from-scratch rebuild of the same
    // tree. One fixed model (the horizon-6 workload above, capped via
    // `UnfoldConfig::horizon`), and for each horizon the two costs are
    // recorded back to back in the same run so the comparison stays
    // apples-to-apples: `horizon_h` grows a retained `Unfolder` from
    // h−1 to h (the handle clone is per-iteration setup, only
    // `extend_horizon` is timed), `rebuild_horizon_h` unfolds the same
    // horizon-h tree from scratch. The sweep pair at the end is the
    // cumulative story: one handle grown 1→6 vs six from-scratch
    // unfolds at horizons 1..=6.
    let capped = |h: u32| UnfoldConfig {
        horizon: Some(h),
        ..UnfoldConfig::default()
    };
    let model = random_model::<Rational>(11, &cfg(6));
    let mut group = c.benchmark_group("scaling/extend");
    for horizon in [2u32, 3, 4, 5, 6] {
        let parked = Unfolder::<_, Rational>::new(&model, capped(horizon - 1)).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("horizon_{horizon}"), horizon),
            &parked,
            |b, parked| {
                b.iter_batched(
                    || parked.clone(),
                    |mut u| {
                        u.extend_horizon().unwrap();
                        u
                    },
                    BatchSize::PerIteration,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("rebuild_horizon_{horizon}"), horizon),
            &model,
            |b, m| b.iter(|| black_box(unfold_with(m, &capped(horizon)).unwrap())),
        );
    }
    group.bench_function("sweep_1_to_6_extend", |b| {
        b.iter(|| {
            let mut u = Unfolder::<_, Rational>::new(&model, capped(1)).unwrap();
            while u.horizon() < 6 && u.extend_horizon().unwrap() {}
            black_box(u)
        })
    });
    group.bench_function("sweep_1_to_6_scratch", |b| {
        b.iter(|| {
            for h in 1..=6u32 {
                black_box(unfold_with(&model, &capped(h)).unwrap());
            }
        })
    });
    group.finish();

    // The query engine: 100 mixed formulas (every constructor, nesting
    // depth ≤ 3, seeded) against one cached horizon-6 tree. `batched` is
    // a cold `Evaluator` per iteration — interning plus every truth
    // bitset plus 100 verdicts; `naive` is 100 `ModelChecker::valid`
    // walks over the same tree. Both run in this same session, back to
    // back, so the ratio in BENCH_scaling.json is apples-to-apples; the
    // agreement assert below keeps the two sides answering the same
    // question.
    let query_tree = unfold_with::<_, Rational>(&model, &capped(6)).unwrap();
    let query_formulas: Vec<Formula<SimpleState, Rational>> = (0..100u64)
        .map(|k| {
            let fcfg = RandomFormulaConfig {
                max_depth: (k % 4) as u32,
                n_agents: 2,
                n_actions: 2,
                env_values: 3,
                local_values: 2,
            };
            random_formula::<Rational>(k * 131 + 17, &fcfg)
        })
        .collect();
    let naive_count = {
        let mc = ModelChecker::new(&query_tree);
        query_formulas.iter().filter(|f| mc.valid(f)).count()
    };
    let batched_count = Evaluator::new(&query_tree)
        .evaluate_batch(&query_formulas)
        .iter()
        .filter(|v| v.valid)
        .count();
    assert_eq!(naive_count, batched_count, "engines disagree on validity");
    let mut group = c.benchmark_group("scaling/query");
    group.bench_function("batched_100_formulas", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(&query_tree);
            black_box(ev.evaluate_batch(&query_formulas))
        })
    });
    group.bench_function("naive_100_valid_walks", |b| {
        let mc = ModelChecker::new(&query_tree);
        b.iter(|| {
            let mut valid = 0usize;
            for f in &query_formulas {
                if mc.valid(f) {
                    valid += 1;
                }
            }
            black_box(valid)
        })
    });
    group.finish();

    // Belief evaluation cost vs system size.
    let mut group = c.benchmark_group("scaling/analysis");
    for horizon in [2u32, 3, 4] {
        let pps = random_pps::<Rational>(11, &cfg(horizon)).unwrap();
        let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
        // Find any proper action.
        let mut found = None;
        'outer: for run in pps.run_ids() {
            for t in 0..pps.run_len(run) as u32 {
                for &(a, act) in pps.actions_at(Point { run, time: t }) {
                    if pps.is_proper(a, act) {
                        found = Some((a, act));
                        break 'outer;
                    }
                }
            }
        }
        if let Some((agent, action)) = found {
            group.bench_with_input(
                BenchmarkId::new("action_analysis", pps.num_runs()),
                &pps,
                |b, p| b.iter(|| black_box(ActionAnalysis::new(p, agent, action, &fact).unwrap())),
            );
        }
    }
    group.finish();

    // Rational vs f64 ablation on a fixed workload (attack, 4 rounds),
    // plus representation-tier microbenches: a product chain of k copies
    // of p keeps every intermediate denominator in a known tier of
    // BigUint's inline/fixed/heap lattice, isolating what each tier
    // costs. The attack rows are measured back to back in this same
    // session, so their ratio in BENCH_scaling.json is apples-to-apples.
    let mut group = c.benchmark_group("scaling/numeric_ablation");
    group.bench_function("attack4_rational", |b| {
        let s = CoordinatedAttack::new(Rational::from_ratio(1, 10), Rational::from_ratio(1, 2), 4);
        b.iter(|| black_box(s.build_pps().unwrap().analyze()))
    });
    group.bench_function("attack4_f64", |b| {
        let s = CoordinatedAttack::new(0.1f64, 0.5, 4);
        b.iter(|| black_box(s.build_pps().unwrap().analyze()))
    });
    let chain = |p: &Rational, k: usize| {
        let mut acc = Rational::one();
        for _ in 0..k {
            acc *= p;
        }
        acc
    };
    // Denominator 2^48: word-sized throughout (inline tier only).
    group.bench_function("chain_mul_48_inline", |b| {
        let half = Rational::from_ratio(1, 2);
        b.iter(|| black_box(chain(&half, 48)))
    });
    // Denominator 20^40 ≈ 2^172.9: crosses u64::MAX early and then stays
    // inside the fixed [u64; 3] tier — no allocation if the tier works.
    group.bench_function("chain_mul_40_fixed", |b| {
        let p = Rational::from_ratio(19, 20);
        b.iter(|| black_box(chain(&p, 40)))
    });
    // Denominator 20^120 ≈ 2^518.7: escalates through fixed to the heap
    // tier; the gap to the fixed row is the price of Vec limbs.
    group.bench_function("chain_mul_120_heap", |b| {
        let p = Rational::from_ratio(19, 20);
        b.iter(|| black_box(chain(&p, 120)))
    });
    group.finish();

    // The serving layer end to end: a 1000-query mixed replay (measures
    // and verdict batches over horizons 1–4) through the full service —
    // bounded queue, two workers, shared tree cache — measured clean and
    // under a deterministic fault storm (every 7th cache insert dropped,
    // every 23rd request cancelled at the worker). The gap between the
    // two rows is the price of fault handling: skipped inserts force
    // tree rebuilds, cancellations waste partial work.
    let service_model = Arc::new(random_model::<Rational>(11, &cfg(4)));
    let service_query = |i: usize| -> Query<SimpleState, Rational> {
        let horizon = (1 + i % 4) as u32;
        let even = || {
            Formula::atom(StateFact::new("env even", |g: &SimpleState| {
                g.env.is_multiple_of(2)
            }))
        };
        match i % 3 {
            0 => Query::Measure {
                horizon,
                time: (i % (horizon as usize + 1)) as u32,
                formula: even().eventually(),
            },
            1 => Query::Verdicts {
                horizon,
                formulas: vec![even().eventually(), Formula::knows(AgentId(0), even())],
            },
            _ => Query::Verdicts {
                horizon,
                formulas: vec![even().not().always()],
            },
        }
    };
    let run_replay = |model: &Arc<TableModel<Rational>>| {
        let server = PakServer::start(
            Arc::clone(model),
            ServerConfig {
                workers: 2,
                queue_capacity: 1024,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = (0..1000)
            .map(|i| {
                server
                    .submit(service_query(i))
                    .expect("queue sized for the whole replay")
            })
            .collect();
        for t in tickets {
            let _ = t.wait();
        }
        server.shutdown()
    };
    let mut group = c.benchmark_group("scaling/service");
    group.bench_function("replay_1000_mixed", |b| {
        b.iter(|| black_box(run_replay(&service_model)))
    });
    group.bench_function("replay_1000_mixed_faulty", |b| {
        let _faults = failpoint::install(
            FailPlan::new()
                .fail_every("cache.insert", 7, Fault::Error)
                .fail_every("server.worker", 23, Fault::Cancel),
        );
        b.iter(|| black_box(run_replay(&service_model)))
    });
    group.finish();
}

fn main() {
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
    // Machine-readable trail so future PRs can track the perf trajectory.
    // Written to the workspace root regardless of the bench's working dir.
    c.save_json(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scaling.json"
    ));
}
