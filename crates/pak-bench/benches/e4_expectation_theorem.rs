//! E4 — Theorem 6.2 (the main theorem) on random protocol systems.
//!
//! Generates protocol-consistent random systems, checks the exact equality
//! `µ(ϕ@α | α) = E[β_i(ϕ)@α | α]` for past-based facts on every proper
//! action, and reports how many triples were verified. Benchmarks the
//! equality check in both exact and floating arithmetic.

use criterion::{black_box, Criterion};
use pak_bench::{criterion, print_report, Row};
use pak_core::fact::StateFact;
use pak_core::ids::Point;
use pak_core::prelude::*;
use pak_core::theorems::check_expectation;
use pak_num::Rational;
use pak_protocol::generator::{random_pps, RandomModelConfig};

fn all_actions(pps: &Pps<SimpleState, Rational>) -> Vec<(AgentId, ActionId)> {
    let mut out = Vec::new();
    for run in pps.run_ids() {
        for t in 0..pps.run_len(run) as u32 {
            for &(a, act) in pps.actions_at(Point { run, time: t }) {
                if !out.contains(&(a, act)) {
                    out.push((a, act));
                }
            }
        }
    }
    out
}

fn report() {
    let cfg = RandomModelConfig::default();
    let fact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
    let mut verified = 0usize;
    let mut lsi_held = 0usize;
    let mut total = 0usize;
    for seed in 0..60 {
        let pps = random_pps::<Rational>(seed, &cfg).unwrap();
        for (agent, action) in all_actions(&pps) {
            if !pps.is_proper(agent, action) {
                continue;
            }
            total += 1;
            let rep = check_expectation(&pps, agent, action, &fact).unwrap();
            if rep.independence.independent {
                lsi_held += 1;
                if rep.equal {
                    verified += 1;
                }
            }
        }
    }
    print_report(
        "E4: Theorem 6.2 — exact equality on random protocol systems",
        &[
            Row::claim("some proper actions found", true, total > 50),
            Row::exact(
                "LSI held (Lemma 4.3(b), past-based fact)",
                &total.to_string(),
                lsi_held,
            ),
            Row::exact(
                "equality held exactly (of LSI cases)",
                &lsi_held.to_string(),
                verified,
            ),
        ],
    );
    println!("({total} (agent, action) triples over 60 random systems)");
}

fn benches(c: &mut Criterion) {
    let cfg = RandomModelConfig::default();
    let pps_exact = random_pps::<Rational>(7, &cfg).unwrap();
    let pps_f64 = random_pps::<f64>(7, &cfg).unwrap();
    let fact_exact = StateFact::new("env even", |g: &SimpleState| g.env.is_multiple_of(2));
    let (agent, action) = all_actions(&pps_exact)
        .into_iter()
        .find(|&(a, act)| pps_exact.is_proper(a, act))
        .expect("seed 7 has a proper action");

    c.bench_function("e4/check_expectation_rational", |b| {
        b.iter(|| black_box(check_expectation(&pps_exact, agent, action, &fact_exact).unwrap()))
    });
    c.bench_function("e4/check_expectation_f64", |b| {
        b.iter(|| black_box(check_expectation(&pps_f64, agent, action, &fact_exact).unwrap()))
    });
    c.bench_function("e4/generate_random_protocol_pps", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(random_pps::<Rational>(seed, &cfg).unwrap())
        })
    });
}

fn main() {
    report();
    let mut c = criterion();
    benches(&mut c);
    c.final_summary();
}
