//! Deterministic pseudo-randomness for the simulator.
//!
//! The simulator only needs reproducible, reasonably well-distributed
//! draws — not cryptographic strength — so the workspace carries its own
//! generator instead of depending on an external crate (the build must
//! work offline). The generator itself is the workspace-wide
//! [`SplitMix64`] from `pak_core::generator`, re-exported here so the
//! simulation crate has a single obvious import path.

pub use pak_core::generator::SplitMix64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 0 from the splitmix64 reference code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
