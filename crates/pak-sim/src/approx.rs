//! The approximate tier: Monte-Carlo estimation of formula measures.
//!
//! When exact evaluation blows its latency budget (huge horizon, slow
//! model), a service can *degrade* instead of failing: sample `n` trials
//! forward from the model, evaluate the formula on each sampled
//! trajectory, and report the success fraction with a Wilson confidence
//! interval. This module is that tier.
//!
//! Each sampled [`Trial`] is lifted into a **single-run chain [`Pps`]**
//! (one probability-one edge per step, carrying the trial's joint
//! actions), and the formula is evaluated at the chain's point
//! `(run 0, t)` via [`Formula::eval_at`]. Propositional, action, and
//! temporal operators all have their exact semantics on a chain — a
//! single run *is* its own future. What a chain cannot represent are
//! the **epistemic** operators (`K_i`, `B_i^{≥p}`): their information
//! cells degenerate to singletons on a single-run system, which would
//! silently conflate belief with truth. [`formula_is_sampleable`]
//! rejects such formulas, and [`estimate_formula_measure`] returns
//! [`NotSampleable`] instead of a wrong answer. Atoms must likewise be
//! point-local (state/action predicates — every fact in `pak-core`
//! qualifies); a custom fact that inspects other runs of the tree is
//! outside this tier's contract.
//!
//! The estimated quantity matches the exact engine's
//! `Evaluator::measure_at_time`: the *unconditional* measure
//! `µ_T({r : (r, t) live and (T, r, t) |= ϕ})` — trials that have
//! terminated before `t` count as failures, exactly as dead points
//! carry no truth.

use pak_core::ids::{Point, RunId, Time};
use pak_core::pps::{Pps, PpsBuilder};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_logic::Formula;
use pak_protocol::model::ProtocolModel;

use crate::stats::Proportion;
use crate::trial::{Simulator, Trial};

/// Error returned when a formula contains epistemic operators and
/// therefore cannot be estimated on sampled single-run chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotSampleable;

impl std::fmt::Display for NotSampleable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "formula contains epistemic operators (K_i / B_i) and cannot \
             be estimated on sampled single-run trajectories"
        )
    }
}

impl std::error::Error for NotSampleable {}

/// Whether `f` can be estimated by per-trial evaluation: true exactly
/// when no subformula is `Knows` or `BelievesAtLeast`.
#[must_use]
pub fn formula_is_sampleable<G: GlobalState, P: Probability>(f: &Formula<G, P>) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Does(_, _) => true,
        Formula::Not(x) | Formula::Eventually(x) | Formula::Always(x) => formula_is_sampleable(x),
        Formula::And(x, y) | Formula::Or(x, y) | Formula::Implies(x, y) => {
            formula_is_sampleable(x) && formula_is_sampleable(y)
        }
        Formula::Knows(_, _) | Formula::BelievesAtLeast(_, _, _) => false,
    }
}

/// Lifts one sampled trajectory into a single-run chain system:
/// `trial.states[t]` at depth `t + 1`, every edge probability one, the
/// trial's joint actions on the edges. The chain has exactly one run,
/// live precisely for `t < trial.len()`.
///
/// # Panics
///
/// Panics if the trial is empty or its states disagree with `n_agents`
/// (cannot happen for trials sampled from a well-formed model with that
/// agent count).
#[must_use]
pub fn trial_chain_pps<G: GlobalState, P: Probability>(
    trial: &Trial<G>,
    n_agents: u32,
) -> Pps<G, P> {
    let mut b = PpsBuilder::<G, P>::new(n_agents);
    let mut node = b
        .initial(trial.states[0].clone(), P::one())
        .expect("chain initial state");
    for t in 1..trial.len() {
        node = b
            .child(
                node,
                trial.states[t].clone(),
                P::one(),
                &trial.actions[t - 1],
            )
            .expect("chain step");
    }
    b.build().expect("single-run chain always validates")
}

/// The result of a Monte-Carlo formula-measure estimate: the success
/// proportion over all sampled trials, ready for Wilson intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxMeasure {
    /// Successes over trials; `proportion.point()` is the estimate of
    /// `µ_T(ϕ at time ∧ live)`, and `proportion.wilson(z)` its interval.
    pub proportion: Proportion,
    /// The time the formula was evaluated at.
    pub time: Time,
}

/// Estimates `µ_T({r : (r, time) live and (T, r, time) |= ϕ})` from `n`
/// forward-sampled trials, deterministically seeded.
///
/// Matching `Evaluator::measure_at_time` exactly, a trial counts as a
/// success iff it is still live at `time` *and* satisfies `f` there;
/// the denominator is always `n`.
///
/// # Errors
///
/// [`NotSampleable`] if `f` contains epistemic operators (see
/// [`formula_is_sampleable`]).
///
/// # Panics
///
/// Panics if the model emits an empty distribution (a model bug), as
/// [`Simulator::sample`] does.
pub fn estimate_formula_measure<M, P>(
    model: &M,
    seed: u64,
    n: u64,
    f: &Formula<M::Global, P>,
    time: Time,
) -> Result<ApproxMeasure, NotSampleable>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    if !formula_is_sampleable(f) {
        return Err(NotSampleable);
    }
    let n_agents = model.n_agents();
    let mut sim = Simulator::<M, P>::new(model, seed);
    let mut successes = 0;
    for _ in 0..n {
        let trial = sim.sample();
        if (time as usize) >= trial.len() {
            continue; // dead at `time`: carries no truth, counts as failure
        }
        let chain = trial_chain_pps::<M::Global, P>(&trial, n_agents);
        let point = Point {
            run: RunId(0),
            time,
        };
        if f.eval_at(&chain, point) == Some(true) {
            successes += 1;
        }
    }
    Ok(ApproxMeasure {
        proportion: Proportion::new(successes, n),
        time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::StateFact;
    use pak_core::ids::AgentId;
    use pak_protocol::model::{CoinModel, CoinState, COIN_ACT};

    fn heads() -> Formula<CoinState, f64> {
        Formula::atom(StateFact::<CoinState>::new("heads", |g| g.heads))
    }

    #[test]
    fn sampleability_is_epistemic_freedom() {
        let f = heads()
            .and(Formula::does(AgentId(0), COIN_ACT))
            .eventually();
        assert!(formula_is_sampleable(&f));
        let g = Formula::knows(AgentId(0), heads());
        assert!(!formula_is_sampleable(&g));
        let h = Formula::believes_at_least(AgentId(0), heads(), 0.5).not();
        assert!(!formula_is_sampleable(&h));
    }

    #[test]
    fn epistemic_formula_is_rejected() {
        let model = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let g = Formula::knows(AgentId(0), heads());
        assert_eq!(
            estimate_formula_measure(&model, 1, 10, &g, 0),
            Err(NotSampleable)
        );
    }

    #[test]
    fn chain_preserves_actions_and_liveness() {
        let model = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let mut sim = Simulator::<_, f64>::new(&model, 7);
        let trial = sim.sample();
        let chain = trial_chain_pps::<CoinState, f64>(&trial, 1);
        assert_eq!(chain.num_runs(), 1);
        assert_eq!(chain.horizon() as usize + 1, trial.len());
        let p0 = Point {
            run: RunId(0),
            time: 0,
        };
        assert!(chain.does(AgentId(0), COIN_ACT, p0));
        assert_eq!(*chain.run_probability(RunId(0)), 1.0);
    }

    #[test]
    fn estimate_converges_to_the_exact_measure() {
        // P(heads) = 3/4; the estimate's 99% interval must contain it.
        let model = CoinModel {
            heads_num: 3,
            heads_den: 4,
        };
        let est = estimate_formula_measure(&model, 42, 4000, &heads(), 0).unwrap();
        assert_eq!(est.proportion.trials, 4000);
        assert!(est.proportion.contains(0.75, 2.576));
        let (lo, hi) = est.proportion.wilson(2.576);
        assert!(lo > 0.5 && hi < 1.0, "interval ({lo}, {hi}) is informative");
    }
}
