//! Estimators cross-validating the exact analyses.
//!
//! Each estimator samples trials from a protocol model and produces a
//! [`ConditionalEstimate`] of one of the paper's quantities:
//!
//! * [`estimate_constraint`] — `µ(ϕ@α | α)`, with `ϕ` evaluated directly on
//!   the sampled trajectory;
//! * [`estimate_threshold_measure`] — `µ(β_i(ϕ)@α ≥ q | α)`, using a
//!   [`BeliefTable`] of exact per-local-state beliefs computed from the
//!   unfolded pps (beliefs are posteriors — properties of the *system*, not
//!   of a single run — so they come from the exact side, while the run
//!   distribution is sampled);
//! * [`estimate_expected_belief`] — `E[β_i(ϕ)@α | α]` the same way.

use std::collections::HashMap;

use pak_core::belief::Beliefs;
use pak_core::fact::Fact;
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::pps::Pps;
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_protocol::model::ProtocolModel;

use crate::stats::{ConditionalEstimate, Proportion, RunningMean};
use crate::trial::{Simulator, Trial};

/// Estimates `µ(ϕ@α | α)` by sampling `n` trials.
///
/// `fact` receives the trial and the time at which the action was performed
/// and decides whether `ϕ` held there.
///
/// # Examples
///
/// ```
/// use pak_sim::estimate::estimate_constraint;
/// use pak_protocol::model::{CoinModel, COIN_ACT};
/// use pak_core::ids::AgentId;
///
/// let model = CoinModel { heads_num: 99, heads_den: 100 };
/// let est = estimate_constraint::<_, f64>(
///     &model, 42, 10_000, AgentId(0), COIN_ACT,
///     |trial, _t| trial.states[0].heads,
/// );
/// // The exact value 0.99 must fall in the 99% Wilson interval.
/// assert!(est.proportion.contains(0.99, 2.576));
/// ```
pub fn estimate_constraint<M, P>(
    model: &M,
    seed: u64,
    n: u64,
    agent: AgentId,
    action: ActionId,
    mut fact: impl FnMut(&Trial<M::Global>, Time) -> bool,
) -> ConditionalEstimate
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let mut sim = Simulator::new(model, seed);
    let mut hits = 0u64;
    let mut successes = 0u64;
    sim.sample_each(n, |trial| {
        if let Some(t) = trial.action_time(agent, action) {
            hits += 1;
            if fact(trial, t) {
                successes += 1;
            }
        }
    });
    ConditionalEstimate {
        proportion: Proportion::new(successes, hits),
        total_trials: n,
    }
}

/// A table of exact beliefs `β_i(ϕ)` indexed by the agent's (synchronous)
/// local state, extracted from an unfolded pps.
///
/// Beliefs are posteriors — functions of the agent's local state in the
/// *system*, not observables of a single run — so the simulator looks them
/// up here rather than "estimating" them per trial.
#[derive(Debug, Clone)]
pub struct BeliefTable<L> {
    agent: AgentId,
    map: HashMap<(Time, L), f64>,
}

impl<L: Clone + Eq + std::hash::Hash> BeliefTable<L> {
    /// Computes the table for `(agent, fact)` over every local state of the
    /// pps.
    pub fn from_pps<G, P>(pps: &Pps<G, P>, agent: AgentId, fact: &dyn Fact<G, P>) -> Self
    where
        G: GlobalState<Local = L>,
        P: Probability,
    {
        let mut map = HashMap::new();
        for (cell_id, cell) in pps.agent_cells(agent) {
            let b = pps.belief_in_cell(fact, cell_id);
            map.insert((cell.time, cell.data.clone()), b.to_f64());
        }
        BeliefTable { agent, map }
    }

    /// The belief at a local state, or `None` if the state never occurs in
    /// the pps the table was built from.
    #[must_use]
    pub fn lookup(&self, time: Time, local: &L) -> Option<f64> {
        self.map.get(&(time, local.clone())).copied()
    }

    /// The number of local states in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The agent the table belongs to.
    #[must_use]
    pub fn agent(&self) -> AgentId {
        self.agent
    }
}

/// Estimates `µ(β_i(ϕ)@α ≥ q | α)` by sampling runs and looking up exact
/// beliefs.
///
/// # Panics
///
/// Panics if a sampled local state is missing from the table (the table
/// must come from the same model's unfolding).
pub fn estimate_threshold_measure<M, P>(
    model: &M,
    seed: u64,
    n: u64,
    agent: AgentId,
    action: ActionId,
    table: &BeliefTable<<M::Global as GlobalState>::Local>,
    q: f64,
) -> ConditionalEstimate
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let mut sim = Simulator::new(model, seed);
    let mut hits = 0u64;
    let mut successes = 0u64;
    sim.sample_each(n, |trial| {
        if let Some(t) = trial.action_time(agent, action) {
            hits += 1;
            let local = trial.states[t as usize].local(agent);
            let belief = table
                .lookup(t, &local)
                .expect("sampled local state must appear in the unfolded pps");
            if belief >= q - 1e-9 {
                successes += 1;
            }
        }
    });
    ConditionalEstimate {
        proportion: Proportion::new(successes, hits),
        total_trials: n,
    }
}

/// Estimates `E[β_i(ϕ)@α | α]` by sampling runs and averaging exact
/// beliefs, returning `(mean, standard error, conditioning hits)`.
///
/// # Panics
///
/// Panics if a sampled local state is missing from the table.
pub fn estimate_expected_belief<M, P>(
    model: &M,
    seed: u64,
    n: u64,
    agent: AgentId,
    action: ActionId,
    table: &BeliefTable<<M::Global as GlobalState>::Local>,
) -> (f64, f64, u64)
where
    M: ProtocolModel<P>,
    P: Probability,
{
    let mut sim = Simulator::new(model, seed);
    let mut acc = RunningMean::new();
    sim.sample_each(n, |trial| {
        if let Some(t) = trial.action_time(agent, action) {
            let local = trial.states[t as usize].local(agent);
            let belief = table
                .lookup(t, &local)
                .expect("sampled local state must appear in the unfolded pps");
            acc.push(belief);
        }
    });
    (acc.mean(), acc.stderr(), acc.count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_core::fact::StateFact;
    use pak_num::Rational;
    use pak_protocol::model::{CoinModel, CoinState, COIN_ACT};
    use pak_protocol::unfold::unfold;

    #[test]
    fn constraint_estimate_brackets_exact_value() {
        let model = CoinModel {
            heads_num: 3,
            heads_den: 4,
        };
        let est = estimate_constraint::<_, f64>(&model, 5, 20_000, AgentId(0), COIN_ACT, |t, _| {
            t.states[0].heads
        });
        assert!(est.proportion.contains(0.75, 2.576), "{est}");
        assert_eq!(est.total_trials, 20_000);
        // The coin model always acts, so every trial conditions.
        assert_eq!(est.proportion.trials, 20_000);
    }

    #[test]
    fn belief_table_from_coin_pps() {
        let model = CoinModel {
            heads_num: 3,
            heads_den: 4,
        };
        let pps = unfold::<_, Rational>(&model).unwrap();
        let heads = StateFact::new("heads", |g: &CoinState| g.heads);
        let table = BeliefTable::from_pps(&pps, AgentId(0), &heads);
        assert!(!table.is_empty());
        assert_eq!(table.agent(), AgentId(0));
        // The blind agent's belief is the prior at every local state.
        let b = table.lookup(0, &0u8).unwrap();
        assert!((b - 0.75).abs() < 1e-12);
        assert!(table.lookup(0, &9u8).is_none());
    }

    #[test]
    fn threshold_measure_estimate() {
        let model = CoinModel {
            heads_num: 3,
            heads_den: 4,
        };
        let pps = unfold::<_, Rational>(&model).unwrap();
        let heads = StateFact::new("heads", |g: &CoinState| g.heads);
        let table = BeliefTable::from_pps(&pps, AgentId(0), &heads);
        // Belief is always 0.75: threshold 0.5 always met, 0.9 never met.
        let always = estimate_threshold_measure::<_, Rational>(
            &model,
            5,
            2_000,
            AgentId(0),
            COIN_ACT,
            &table,
            0.5,
        );
        assert_eq!(always.proportion.point(), 1.0);
        let never = estimate_threshold_measure::<_, Rational>(
            &model,
            5,
            2_000,
            AgentId(0),
            COIN_ACT,
            &table,
            0.9,
        );
        assert_eq!(never.proportion.point(), 0.0);
    }

    #[test]
    fn expected_belief_estimate_equals_constraint_probability() {
        // Theorem 6.2, cross-validated end to end on the coin model.
        let model = CoinModel {
            heads_num: 3,
            heads_den: 4,
        };
        let pps = unfold::<_, Rational>(&model).unwrap();
        let heads = StateFact::new("heads", |g: &CoinState| g.heads);
        let table = BeliefTable::from_pps(&pps, AgentId(0), &heads);
        let (mean, _se, hits) =
            estimate_expected_belief::<_, Rational>(&model, 5, 1_000, AgentId(0), COIN_ACT, &table);
        assert_eq!(hits, 1_000);
        // The belief is constant 0.75 here, so the mean is exact.
        assert!((mean - 0.75).abs() < 1e-12);
    }
}
