//! Sampling runs directly from a protocol model.
//!
//! The simulator executes a [`ProtocolModel`] forward — sampling the initial
//! state, each agent's mixed move, and the environment's resolution — and
//! records the trajectory as a [`Trial`]. Unlike unfolding, sampling never
//! materialises the tree, so it scales to systems whose pps would be
//! enormous; it is the workspace's stand-in for "running the distributed
//! system on a testbed".

use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::prob::Probability;
use pak_core::state::GlobalState;
use pak_protocol::model::ProtocolModel;

use crate::rng::SplitMix64;

/// One sampled execution: the state trajectory and the joint actions taken
/// at each time.
#[derive(Debug, Clone)]
pub struct Trial<G> {
    /// `states[t]` is the global state at time `t`.
    pub states: Vec<G>,
    /// `actions[t]` lists the `(agent, action)` pairs performed at time `t`
    /// (the transition from `states[t]` to `states[t+1]`); it has length
    /// `states.len() − 1`.
    pub actions: Vec<Vec<(AgentId, ActionId)>>,
}

impl<G> Trial<G> {
    /// The length of the trial in global states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the trial is empty (never true for valid models).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Whether `agent` performs `action` at time `time`.
    #[must_use]
    pub fn does(&self, agent: AgentId, action: ActionId, time: Time) -> bool {
        self.actions
            .get(time as usize)
            .is_some_and(|acts| acts.iter().any(|&(a, act)| a == agent && act == action))
    }

    /// The first time at which `agent` performs `action`, if any.
    #[must_use]
    pub fn action_time(&self, agent: AgentId, action: ActionId) -> Option<Time> {
        (0..self.actions.len() as u32).find(|&t| self.does(agent, action, t))
    }

    /// How many times `agent` performs `action` in the trial.
    #[must_use]
    pub fn action_count(&self, agent: AgentId, action: ActionId) -> usize {
        (0..self.actions.len() as u32)
            .filter(|&t| self.does(agent, action, t))
            .count()
    }
}

/// A forward sampler over a protocol model.
///
/// # Examples
///
/// ```
/// use pak_sim::trial::Simulator;
/// use pak_protocol::model::{CoinModel, COIN_ACT};
/// use pak_core::ids::AgentId;
///
/// let model = CoinModel { heads_num: 1, heads_den: 2 };
/// let mut sim = Simulator::<_, f64>::new(&model, 42);
/// let trial = sim.sample();
/// assert_eq!(trial.len(), 2); // initial state + one round
/// assert!(trial.does(AgentId(0), COIN_ACT, 0));
/// ```
#[derive(Debug)]
pub struct Simulator<'m, M: ProtocolModel<P>, P: Probability> {
    model: &'m M,
    rng: SplitMix64,
    /// Scratch for per-agent move distributions, cleared and refilled
    /// through [`ProtocolModel::moves_into`] on every round — sampling
    /// many trials allocates nothing per query.
    moves_buf: Vec<(M::Move, P)>,
    /// Scratch for the environment's successor distribution
    /// ([`ProtocolModel::transition_into`]).
    outcomes_buf: Vec<(M::Global, P)>,
}

impl<'m, M, P> Simulator<'m, M, P>
where
    M: ProtocolModel<P>,
    P: Probability,
{
    /// Creates a sampler with a deterministic seed.
    #[must_use]
    pub fn new(model: &'m M, seed: u64) -> Self {
        Simulator {
            model,
            rng: SplitMix64::new(seed),
            moves_buf: Vec::new(),
            outcomes_buf: Vec::new(),
        }
    }

    /// Samples one execution.
    ///
    /// # Panics
    ///
    /// Panics if the model emits an empty distribution, or if a trial
    /// exceeds 10⁴ steps without terminating (a model bug).
    pub fn sample(&mut self) -> Trial<M::Global> {
        let initial = self.model.initial_states();
        let state0 = Self::pick(&mut self.rng, &initial);
        let mut states = vec![state0];
        let mut actions = Vec::new();
        let mut time: Time = 0;
        loop {
            let state = states.last().expect("non-empty").clone();
            if self.model.is_terminal(&state, time) {
                break;
            }
            assert!(
                time < 10_000,
                "trial exceeded 10^4 steps without terminating"
            );
            let n = self.model.n_agents();
            let mut joint = Vec::with_capacity(n as usize);
            let mut performed = Vec::new();
            for a in 0..n {
                let agent = AgentId(a);
                let local = state.local(agent);
                self.moves_buf.clear();
                self.model
                    .moves_into(agent, &local, time, &mut self.moves_buf);
                let mv = Self::pick(&mut self.rng, &self.moves_buf);
                if let Some(act) = self.model.action_of(&mv) {
                    performed.push((agent, act));
                }
                joint.push(mv);
            }
            self.outcomes_buf.clear();
            self.model
                .transition_into(&state, &joint, time, &mut self.outcomes_buf);
            let next = Self::pick(&mut self.rng, &self.outcomes_buf);
            states.push(next);
            actions.push(performed);
            time += 1;
        }
        Trial { states, actions }
    }

    /// Samples `n` executions, applying a fold to each.
    pub fn sample_each(&mut self, n: u64, mut f: impl FnMut(&Trial<M::Global>)) {
        for _ in 0..n {
            let t = self.sample();
            f(&t);
        }
    }

    /// Draws one element from a weighted distribution (weights converted to
    /// `f64`; exactness is irrelevant for sampling). An associated function
    /// rather than a method so callers can pick from one scratch buffer
    /// while the RNG lives next to it in `self`.
    fn pick<T: Clone>(rng: &mut SplitMix64, dist: &[(T, P)]) -> T {
        assert!(!dist.is_empty(), "model emitted an empty distribution");
        let total: f64 = dist.iter().map(|(_, p)| p.to_f64()).sum();
        let mut x: f64 = rng.gen_f64() * total;
        for (v, p) in dist {
            x -= p.to_f64();
            if x <= 0.0 {
                return v.clone();
            }
        }
        dist.last().expect("non-empty").0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_num::Rational;
    use pak_protocol::model::{CoinModel, TableModel, COIN_ACT};

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let mut a = Simulator::<_, f64>::new(&model, 7);
        let mut b = Simulator::<_, f64>::new(&model, 7);
        for _ in 0..20 {
            assert_eq!(a.sample().states[0].heads, b.sample().states[0].heads);
        }
    }

    #[test]
    fn sampled_frequencies_approach_model_probabilities() {
        let model = CoinModel {
            heads_num: 9,
            heads_den: 10,
        };
        let mut sim = Simulator::<_, f64>::new(&model, 1);
        let mut heads = 0u64;
        let n = 20_000;
        sim.sample_each(n, |t| {
            if t.states[0].heads {
                heads += 1;
            }
        });
        #[allow(clippy::cast_precision_loss)]
        let freq = heads as f64 / n as f64;
        assert!((freq - 0.9).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn trial_action_helpers() {
        let model = CoinModel {
            heads_num: 1,
            heads_den: 2,
        };
        let mut sim = Simulator::<_, Rational>::new(&model, 3);
        let t = sim.sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.action_time(AgentId(0), COIN_ACT), Some(0));
        assert_eq!(t.action_count(AgentId(0), COIN_ACT), 1);
        assert_eq!(t.action_time(AgentId(0), ActionId(9)), None);
    }

    #[test]
    fn mixed_actions_sampled_with_right_frequency() {
        let model: TableModel<f64> = TableModel {
            n_agents: 1,
            initial: vec![(0, vec![0], 1.0)],
            horizon: 1,
            moves: vec![(
                (0, 0, 0),
                vec![(Some(ActionId(0)), 0.25), (Some(ActionId(1)), 0.75)],
            )],
            transitions: vec![],
            ..TableModel::default()
        };
        let mut sim = Simulator::<_, f64>::new(&model, 11);
        let mut alpha = 0u64;
        let n = 20_000;
        sim.sample_each(n, |t| {
            if t.does(AgentId(0), ActionId(0), 0) {
                alpha += 1;
            }
        });
        #[allow(clippy::cast_precision_loss)]
        let freq = alpha as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq = {freq}");
    }
}
