//! Statistics for Monte-Carlo estimates.
//!
//! The simulator cross-validates exact pps analyses, so its primary output
//! is a proportion with a confidence interval: the exact value must fall
//! inside the interval (at the chosen confidence) for the cross-check to
//! pass.

use core::fmt;

/// A Bernoulli proportion estimate: `successes / trials`.
///
/// # Examples
///
/// ```
/// use pak_sim::stats::Proportion;
///
/// let p = Proportion::new(99, 100);
/// assert_eq!(p.point(), 0.99);
/// let (lo, hi) = p.wilson(2.576); // 99% confidence
/// assert!(lo < 0.99 && 0.99 < hi);
/// assert!(p.contains(0.985, 2.576));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
}

impl Proportion {
    /// Creates a proportion.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    #[must_use]
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes cannot exceed trials");
        Proportion { successes, trials }
    }

    /// The point estimate `successes / trials` (`NaN` for zero trials).
    #[must_use]
    pub fn point(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.trials == 0 {
            f64::NAN
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The Wilson score interval at critical value `z` (e.g. `1.96` for
    /// 95%, `2.576` for 99%). Returns `(0, 1)` for zero trials.
    #[must_use]
    pub fn wilson(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        #[allow(clippy::cast_precision_loss)]
        let n = self.trials as f64;
        let p = self.point();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Whether `value` lies inside the Wilson interval at critical value
    /// `z` — the cross-validation criterion.
    #[must_use]
    pub fn contains(&self, value: f64, z: f64) -> bool {
        let (lo, hi) = self.wilson(z);
        (lo..=hi).contains(&value)
    }

    /// The standard error of the point estimate.
    #[must_use]
    pub fn stderr(&self) -> f64 {
        if self.trials == 0 {
            return f64::NAN;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = self.trials as f64;
        let p = self.point();
        (p * (1.0 - p) / n).sqrt()
    }
}

impl fmt::Display for Proportion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ≈ {:.6}",
            self.successes,
            self.trials,
            self.point()
        )
    }
}

/// A conditional estimate `P(success | conditioning event)` from sampling:
/// trials outside the conditioning event are recorded but excluded from the
/// proportion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditionalEstimate {
    /// The conditional proportion (over conditioning hits only).
    pub proportion: Proportion,
    /// Total trials sampled, including misses.
    pub total_trials: u64,
}

impl ConditionalEstimate {
    /// The estimated probability of the conditioning event itself.
    #[must_use]
    pub fn conditioning_rate(&self) -> f64 {
        Proportion::new(self.proportion.trials, self.total_trials).point()
    }
}

impl fmt::Display for ConditionalEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (conditioned on {}/{} trials)",
            self.proportion, self.proportion.trials, self.total_trials
        )
    }
}

/// A running mean/variance accumulator (Welford's algorithm) for
/// real-valued observables such as sampled beliefs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMean {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMean {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        #[allow(clippy::cast_precision_loss)]
        let n = self.n as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The sample mean (`NaN` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// The sample variance (unbiased; `NaN` for fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.m2 / (self.n - 1) as f64
            }
        }
    }

    /// The standard error of the mean.
    #[must_use]
    pub fn stderr(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.n < 2 {
            f64::NAN
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_stderr() {
        let p = Proportion::new(50, 200);
        assert_eq!(p.point(), 0.25);
        assert!((p.stderr() - (0.25f64 * 0.75 / 200.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_basic_properties() {
        let p = Proportion::new(99, 100);
        let (lo, hi) = p.wilson(1.96);
        assert!(0.0 <= lo && lo < hi && hi <= 1.0);
        assert!(lo < 0.99 && 0.99 < hi);
        // Extreme proportions stay in [0, 1].
        let all = Proportion::new(100, 100);
        let (lo, hi) = all.wilson(1.96);
        assert!(lo > 0.9 && hi > 1.0 - 1e-9);
        let none = Proportion::new(0, 100);
        let (lo, hi) = none.wilson(1.96);
        assert!(lo < 1e-9 && hi < 0.1);
    }

    #[test]
    fn wilson_narrows_with_samples() {
        let small = Proportion::new(50, 100).wilson(1.96);
        let large = Proportion::new(5000, 10000).wilson(1.96);
        assert!((large.1 - large.0) < (small.1 - small.0));
    }

    #[test]
    fn zero_trials_degenerate() {
        let p = Proportion::new(0, 0);
        assert!(p.point().is_nan());
        assert_eq!(p.wilson(1.96), (0.0, 1.0));
        assert!(p.contains(0.5, 1.96));
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn bad_proportion_rejected() {
        let _ = Proportion::new(5, 4);
    }

    #[test]
    fn conditional_estimate_rates() {
        let e = ConditionalEstimate {
            proportion: Proportion::new(45, 50),
            total_trials: 100,
        };
        assert_eq!(e.conditioning_rate(), 0.5);
        assert_eq!(e.proportion.point(), 0.9);
        assert!(e.to_string().contains("50/100"));
    }

    #[test]
    fn running_mean_matches_direct_computation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut acc = RunningMean::new();
        for x in xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 5);
        assert!((acc.mean() - 3.0).abs() < 1e-12);
        assert!((acc.variance() - 2.5).abs() < 1e-12);
        assert!((acc.stderr() - (2.5f64 / 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_mean_empty_is_nan() {
        let acc = RunningMean::new();
        assert!(acc.mean().is_nan());
        assert!(acc.variance().is_nan());
    }
}
