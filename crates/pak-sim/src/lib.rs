//! # pak-sim — Monte-Carlo simulation and statistics
//!
//! The paper's analysis is exact; this crate provides the *empirical* side
//! of the reproduction. A [`trial::Simulator`] executes any
//! [`ProtocolModel`](pak_protocol::model::ProtocolModel) forward without
//! materialising its tree — the workspace's stand-in for running the
//! distributed system on a testbed — and the estimators in [`estimate`]
//! recover the paper's quantities from samples:
//!
//! * `µ(ϕ@α | α)` directly from trajectories,
//! * `µ(β_i(ϕ)@α ≥ q | α)` and `E[β_i(ϕ)@α | α]` by combining sampled
//!   run distributions with exact per-local-state beliefs
//!   ([`estimate::BeliefTable`]).
//!
//! Every estimate carries a Wilson confidence interval
//! ([`stats::Proportion`]); the cross-validation criterion throughout the
//! test suite is "the exact value lies inside the 99% interval".
//!
//! # Example
//!
//! ```
//! use pak_sim::estimate::estimate_constraint;
//! use pak_protocol::model::{CoinModel, COIN_ACT};
//! use pak_core::ids::AgentId;
//!
//! let model = CoinModel { heads_num: 9, heads_den: 10 };
//! let est = estimate_constraint::<_, f64>(
//!     &model, 7, 5_000, AgentId(0), COIN_ACT,
//!     |trial, _| trial.states[0].heads,
//! );
//! assert!(est.proportion.contains(0.9, 2.576));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod estimate;
pub mod rng;
pub mod stats;
pub mod trial;

pub use approx::{estimate_formula_measure, ApproxMeasure, NotSampleable};
pub use estimate::{
    estimate_constraint, estimate_expected_belief, estimate_threshold_measure, BeliefTable,
};
pub use stats::{ConditionalEstimate, Proportion, RunningMean};
pub use trial::{Simulator, Trial};
