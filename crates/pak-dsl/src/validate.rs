//! The semantic validation pass.
//!
//! [`Program::validate`] checks everything the grammar cannot: names
//! resolve, declarations are unique, tuple arities match the agent count,
//! distributions have positive weights summing to exactly one (computed
//! in exact rational arithmetic, so `1/3 + 1/3 + 1/3` passes and
//! `1/2 + 1/3` fails with the actual sum in the message), rule keys are
//! unique, and rule times fall before the horizon. The first violation
//! (in declaration order) is reported, spanned at the offending name or
//! number.
//!
//! The invariants established here are exactly what
//! [`crate::compile()`] relies on: a validated program always compiles, and
//! the compiled [`TableModel`](pak_protocol::model::TableModel) always
//! satisfies the unfolder's distribution contract
//! ([`pak_protocol::model::validate_distribution`]).

use std::collections::{HashMap, HashSet};

use pak_core::prob::Probability;
use pak_num::Rational;

use crate::ast::{GuardPat, MoveArm, Program, Spanned, TransRule, Weight};
use crate::error::{DslError, DslErrorKind};

/// Names that double as keywords of the grammar: declaring an agent,
/// action, state, or adversary under one of these would make it
/// unreferenceable, so validation rejects them.
pub const RESERVED: &[&str] = &[
    "protocol",
    "agents",
    "horizon",
    "action",
    "state",
    "init",
    "moves",
    "transitions",
    "adversary",
    "at",
    "from",
    "when",
    "skip",
    "fail",
];

fn check_name(name: &Spanned<String>) -> Result<(), DslError> {
    if RESERVED.contains(&name.value.as_str()) {
        return Err(DslError::new(
            name.span,
            DslErrorKind::ReservedName(name.value.clone()),
        ));
    }
    Ok(())
}

fn weight_rational(w: Weight) -> Rational {
    <Rational as Probability>::from_ratio(w.num, w.den)
}

/// Checks that `weights` are all positive and sum to exactly one;
/// `spans[i]` locates weight `i`. The sum error anchors at the first
/// weight, whose arm usually needs the adjustment.
fn check_distribution(arms: &[(Weight, crate::error::Span)]) -> Result<(), DslError> {
    let mut sum = Rational::zero();
    for (w, span) in arms {
        if w.num == 0 {
            return Err(DslError::new(*span, DslErrorKind::ZeroWeight));
        }
        sum.add_assign(&weight_rational(*w));
    }
    if !sum.is_one() {
        return Err(DslError::new(
            arms[0].1,
            DslErrorKind::WeightSum(sum.to_string()),
        ));
    }
    Ok(())
}

impl Program {
    /// Validates the program (see the module docs for the full list of
    /// invariants).
    ///
    /// # Errors
    ///
    /// Returns the first violation, spanned at the offending token.
    pub fn validate(&self) -> Result<(), DslError> {
        // Agents: present, unique, not reserved.
        if self.agents.is_empty() {
            return Err(DslError::new(
                self.name.span,
                DslErrorKind::MissingDecl("agents"),
            ));
        }
        let mut agent_ids: HashMap<&str, usize> = HashMap::new();
        for (i, a) in self.agents.iter().enumerate() {
            check_name(a)?;
            if agent_ids.insert(a.value.as_str(), i).is_some() {
                return Err(DslError::new(
                    a.span,
                    DslErrorKind::DuplicateAgent(a.value.clone()),
                ));
            }
        }
        let n_agents = self.agents.len();

        // Horizon: present and representable as a `Time`.
        let horizon = match &self.horizon {
            None => {
                return Err(DslError::new(
                    self.name.span,
                    DslErrorKind::MissingDecl("horizon"),
                ))
            }
            Some(h) => {
                if h.value > u64::from(u32::MAX) {
                    return Err(DslError::new(
                        h.span,
                        DslErrorKind::IntOutOfRange {
                            what: "horizon",
                            max: u64::from(u32::MAX),
                        },
                    ));
                }
                h.value
            }
        };

        // Actions: unique names, unique ids, ids fit `ActionId`.
        let mut actions: HashSet<&str> = HashSet::new();
        let mut action_ids: HashSet<u64> = HashSet::new();
        for a in &self.actions {
            check_name(&a.name)?;
            if !actions.insert(a.name.value.as_str()) {
                return Err(DslError::new(
                    a.name.span,
                    DslErrorKind::DuplicateAction(a.name.value.clone()),
                ));
            }
            if a.id.value > u64::from(u32::MAX) {
                return Err(DslError::new(
                    a.id.span,
                    DslErrorKind::IntOutOfRange {
                        what: "action id",
                        max: u64::from(u32::MAX),
                    },
                ));
            }
            if !action_ids.insert(a.id.value) {
                return Err(DslError::new(
                    a.id.span,
                    DslErrorKind::DuplicateActionId(a.id.value),
                ));
            }
        }

        // States: unique names, tuple arity = 1 + n_agents.
        let mut states: HashSet<&str> = HashSet::new();
        for s in &self.states {
            check_name(&s.name)?;
            if !states.insert(s.name.value.as_str()) {
                return Err(DslError::new(
                    s.name.span,
                    DslErrorKind::DuplicateState(s.name.value.clone()),
                ));
            }
            if s.locals.len() != n_agents {
                return Err(DslError::new(
                    s.name.span,
                    DslErrorKind::ArityMismatch {
                        expected: n_agents,
                        found: s.locals.len(),
                    },
                ));
            }
        }

        // Init: present, states resolve, weights positive and summing to 1.
        if self.init.is_empty() {
            return Err(DslError::new(
                self.name.span,
                DslErrorKind::MissingDecl("init"),
            ));
        }
        for arm in &self.init {
            if !states.contains(arm.state.value.as_str()) {
                return Err(DslError::new(
                    arm.state.span,
                    DslErrorKind::UnknownState(arm.state.value.clone()),
                ));
            }
        }
        check_distribution(
            &self
                .init
                .iter()
                .map(|a| (a.weight.value, a.weight.span))
                .collect::<Vec<_>>(),
        )?;

        // Moves: agents resolve, rule keys unique per agent, times before
        // the horizon, actions resolve, distributions well formed.
        let mut move_keys: HashSet<(usize, u64, u64)> = HashSet::new();
        for block in &self.moves {
            let Some(&agent) = agent_ids.get(block.agent.value.as_str()) else {
                return Err(DslError::new(
                    block.agent.span,
                    DslErrorKind::UnknownAgent(block.agent.value.clone()),
                ));
            };
            for rule in &block.rules {
                if rule.time.value >= horizon {
                    return Err(DslError::new(
                        rule.time.span,
                        DslErrorKind::TimeBeyondHorizon {
                            time: rule.time.value,
                            horizon,
                        },
                    ));
                }
                if !move_keys.insert((agent, rule.local.value, rule.time.value)) {
                    return Err(DslError::new(
                        rule.local.span,
                        DslErrorKind::DuplicateRule(format!(
                            "agent `{}` at ({}, {})",
                            block.agent.value, rule.local.value, rule.time.value
                        )),
                    ));
                }
                for arm in &rule.dist {
                    if let crate::ast::MoveAction::Named(name) = &arm.action.value {
                        if !actions.contains(name.as_str()) {
                            return Err(DslError::new(
                                arm.action.span,
                                DslErrorKind::UnknownAction(name.clone()),
                            ));
                        }
                    }
                }
                check_move_dist(&rule.dist)?;
            }
        }

        // Base transitions, then each adversary's overrides (each block
        // keeps its own duplicate-key space: an adversary *shadowing* a
        // base rule is the point).
        check_trans_rules(&self.transitions, &states, &actions, n_agents, horizon)?;
        let mut adversaries: HashSet<&str> = HashSet::new();
        for adv in &self.adversaries {
            check_name(&adv.name)?;
            if !adversaries.insert(adv.name.value.as_str()) {
                return Err(DslError::new(
                    adv.name.span,
                    DslErrorKind::DuplicateAdversary(adv.name.value.clone()),
                ));
            }
            check_trans_rules(&adv.rules, &states, &actions, n_agents, horizon)?;
        }
        Ok(())
    }
}

fn check_move_dist(dist: &[MoveArm]) -> Result<(), DslError> {
    check_distribution(
        &dist
            .iter()
            .map(|a| (a.weight.value, a.weight.span))
            .collect::<Vec<_>>(),
    )
}

fn check_trans_rules(
    rules: &[TransRule],
    states: &HashSet<&str>,
    actions: &HashSet<&str>,
    n_agents: usize,
    horizon: u64,
) -> Result<(), DslError> {
    let mut keys: HashSet<(String, u64, Option<Vec<GuardPat>>)> = HashSet::new();
    for rule in rules {
        if !states.contains(rule.from.value.as_str()) {
            return Err(DslError::new(
                rule.from.span,
                DslErrorKind::UnknownState(rule.from.value.clone()),
            ));
        }
        if rule.time.value >= horizon {
            return Err(DslError::new(
                rule.time.span,
                DslErrorKind::TimeBeyondHorizon {
                    time: rule.time.value,
                    horizon,
                },
            ));
        }
        if let Some(pats) = &rule.guard {
            if pats.len() != n_agents {
                return Err(DslError::new(
                    pats[0].span,
                    DslErrorKind::ArityMismatch {
                        expected: n_agents,
                        found: pats.len(),
                    },
                ));
            }
            for p in pats {
                if let GuardPat::Named(name) = &p.value {
                    if !actions.contains(name.as_str()) {
                        return Err(DslError::new(
                            p.span,
                            DslErrorKind::UnknownAction(name.clone()),
                        ));
                    }
                }
            }
        }
        let key = (
            rule.from.value.clone(),
            rule.time.value,
            rule.guard
                .as_ref()
                .map(|ps| ps.iter().map(|p| p.value.clone()).collect()),
        );
        if !keys.insert(key) {
            let guard_note = if rule.guard.is_some() {
                " with this guard"
            } else {
                ""
            };
            return Err(DslError::new(
                rule.from.span,
                DslErrorKind::DuplicateRule(format!(
                    "`from {} at {}`{}",
                    rule.from.value, rule.time.value, guard_note
                )),
            ));
        }
        for arm in &rule.dist {
            if !states.contains(arm.state.value.as_str()) {
                return Err(DslError::new(
                    arm.state.span,
                    DslErrorKind::UnknownState(arm.state.value.clone()),
                ));
            }
        }
        check_distribution(
            &rule
                .dist
                .iter()
                .map(|a| (a.weight.value, a.weight.span))
                .collect::<Vec<_>>(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn a_full_program_validates() {
        let p = parse(
            "protocol demo {
                agents a, b;
                horizon 2;
                action go = 0;
                state s0 = (0, 0, 0);
                state s1 = (1, 1, 1) fail;
                init { 1/3: s0; 2/3: s1; }
                moves a { at (0, 0) -> { 1/2: go; 1/2: skip; }; }
                transitions {
                    from s0 at 0 when [go, _] -> s1;
                    from s0 at 0 -> s0;
                }
                adversary crash { from s0 at 0 -> { 1: s1; }; }
            }",
        )
        .unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn exact_rational_sums_are_accepted() {
        let p = parse(
            "protocol thirds {
                agents a;
                horizon 1;
                state s = (0, 0);
                init { 1/3: s; 1/3: s; 1/3: s; }
            }",
        )
        .unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn guard_shadowing_in_adversary_is_allowed() {
        // The same (state, time, guard) key may appear in the base block
        // and again in an adversary block — that is how overrides work.
        let p = parse(
            "protocol shadow {
                agents a;
                horizon 1;
                state s = (0, 0);
                state t = (1, 0);
                init { 1: s; }
                transitions { from s at 0 -> s; }
                adversary adv { from s at 0 -> t; }
            }",
        )
        .unwrap();
        p.validate().unwrap();
    }
}
