//! The compiler from a validated [`Program`] to a
//! [`TableModel`].
//!
//! The mapping is direct, which is the point — a compiled protocol
//! immediately inherits everything the table machinery already has:
//! indexed lookups, the allocation-free `_into` fast paths, incremental
//! [`extend_horizon`](pak_protocol::unfold::Unfolder::extend_horizon)
//! growth, and the batched `pak-engine` evaluator.
//!
//! * agents, in declaration order, become `AgentId(0), AgentId(1), …`;
//! * `state NAME = (env, l_1, …, l_n)` names the
//!   [`SimpleState`] with that tuple;
//! * `init` arms become the model's initial distribution, in order;
//! * `moves` rules become `(agent, local, time)`-keyed move rows;
//! * `transitions` rules become guarded
//!   [`StateTransition`] rules, in
//!   declaration order (first match wins, so a guarded rule followed by an
//!   unconditional one reads like a `match` with a catch-all arm);
//! * each `adversary` block becomes a *variant model*: the base model with
//!   the block's rules **prepended** to the state-transition table, so the
//!   overrides win exactly where they apply and the base rules still cover
//!   the rest.
//!
//! # Examples
//!
//! ```
//! use pak_dsl::compile_str;
//! use pak_num::Rational;
//! use pak_protocol::unfold::unfold;
//! use pak_core::prelude::*;
//!
//! let compiled = compile_str::<Rational>(
//!     "protocol coin {
//!          agents observer;
//!          horizon 1;
//!          action guess = 0;
//!          state heads = (1, 0);
//!          state tails = (0, 0);
//!          init { 1/2: heads; 1/2: tails; }
//!          moves observer { at (0, 0) -> guess; }
//!      }",
//! )
//! .unwrap();
//! let pps = unfold::<_, Rational>(compiled.model()).unwrap();
//! assert_eq!(pps.num_runs(), 2);
//! assert_eq!(compiled.action("guess"), Some(ActionId(0)));
//! ```

use std::collections::HashMap;

use pak_core::fact::StateFact;
use pak_core::ids::{ActionId, AgentId, Time};
use pak_core::prob::Probability;
use pak_core::state::SimpleState;
use pak_protocol::adversary::AdversaryFamily;
use pak_protocol::model::{MovePattern, StateTransition, TableModel};

use crate::ast::{GuardPat, MoveAction, Program, TransRule, Weight};
use crate::error::DslError;
use crate::parser::parse;

/// A compiled protocol: the [`TableModel`] plus the name tables needed to
/// talk about it (action and agent names, failure states, adversary
/// variants).
#[derive(Debug, Clone)]
pub struct CompiledProtocol<P> {
    name: String,
    agents: Vec<String>,
    actions: Vec<(String, ActionId)>,
    states: Vec<(String, u64, Vec<u64>)>,
    failure_states: Vec<(u64, Vec<u64>)>,
    model: TableModel<P>,
    adversaries: Vec<(String, TableModel<P>)>,
}

impl<P: Probability> CompiledProtocol<P> {
    /// The protocol's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base model (no adversary overrides applied).
    #[must_use]
    pub fn model(&self) -> &TableModel<P> {
        &self.model
    }

    /// Consumes the compiled protocol, returning the base model.
    #[must_use]
    pub fn into_model(self) -> TableModel<P> {
        self.model
    }

    /// The [`ActionId`] an action name compiled to.
    #[must_use]
    pub fn action(&self, name: &str) -> Option<ActionId> {
        self.actions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
    }

    /// The [`AgentId`] an agent name compiled to (its position in the
    /// `agents` declaration).
    #[must_use]
    pub fn agent(&self, name: &str) -> Option<AgentId> {
        self.agents
            .iter()
            .position(|n| n == name)
            .map(|i| AgentId(u32::try_from(i).expect("validated agent count")))
    }

    /// The [`SimpleState`] a state name compiled to.
    #[must_use]
    pub fn state(&self, name: &str) -> Option<SimpleState> {
        self.states
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, env, locals)| SimpleState::new(*env, locals.clone()))
    }

    /// The `(env, locals)` tuples of all states annotated `fail`, in
    /// declaration order.
    #[must_use]
    pub fn failure_states(&self) -> &[(u64, Vec<u64>)] {
        &self.failure_states
    }

    /// Whether `state` is one of the declared failure states.
    #[must_use]
    pub fn is_failure(&self, state: &SimpleState) -> bool {
        self.failure_states
            .iter()
            .any(|(env, locals)| state.env == *env && state.locals == *locals)
    }

    /// A [`StateFact`] holding exactly at the declared failure states —
    /// ready to register as a formula atom (`Formula::atom` in
    /// `pak-logic`) or to drive a point predicate over an unfolded tree.
    #[must_use]
    pub fn failure_fact(&self) -> StateFact<SimpleState> {
        let set = self.failure_states.clone();
        StateFact::new("failure", move |g: &SimpleState| {
            set.iter()
                .any(|(env, locals)| g.env == *env && g.locals == *locals)
        })
    }

    /// The adversary variant models, in declaration order.
    pub fn adversaries(&self) -> impl Iterator<Item = (&str, &TableModel<P>)> {
        self.adversaries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// The whole family — the base model under the name `"base"` followed
    /// by every adversary variant — ready for
    /// [`AdversaryFamily::unfold_all`] / `check_all`.
    #[must_use]
    pub fn family(&self) -> AdversaryFamily<TableModel<P>> {
        let mut members = vec![("base".to_string(), self.model.clone())];
        for (name, model) in &self.adversaries {
            members.push((name.clone(), model.clone()));
        }
        AdversaryFamily::new(members)
    }
}

fn weight_prob<P: Probability>(w: Weight) -> P {
    P::from_ratio(w.num, w.den)
}

/// Compiles a parsed program, validating it first.
///
/// # Errors
///
/// Returns the first validation error (compilation itself cannot fail on a
/// validated program).
pub fn compile<P: Probability>(program: &Program) -> Result<CompiledProtocol<P>, DslError> {
    program.validate()?;

    let agents: Vec<String> = program.agents.iter().map(|a| a.value.clone()).collect();
    let actions: Vec<(String, ActionId)> = program
        .actions
        .iter()
        .map(|a| {
            (
                a.name.value.clone(),
                ActionId(u32::try_from(a.id.value).expect("validated action id")),
            )
        })
        .collect();
    let action_ids: HashMap<&str, ActionId> =
        actions.iter().map(|(n, id)| (n.as_str(), *id)).collect();
    let states: Vec<(String, u64, Vec<u64>)> = program
        .states
        .iter()
        .map(|s| (s.name.value.clone(), s.env, s.locals.clone()))
        .collect();
    let state_tuples: HashMap<&str, (u64, &[u64])> = program
        .states
        .iter()
        .map(|s| (s.name.value.as_str(), (s.env, s.locals.as_slice())))
        .collect();
    let failure_states: Vec<(u64, Vec<u64>)> = program
        .states
        .iter()
        .filter(|s| s.fail)
        .map(|s| (s.env, s.locals.clone()))
        .collect();

    let initial: Vec<(u64, Vec<u64>, P)> = program
        .init
        .iter()
        .map(|arm| {
            let (env, locals) = state_tuples[arm.state.value.as_str()];
            (env, locals.to_vec(), weight_prob(arm.weight.value))
        })
        .collect();

    #[allow(clippy::type_complexity)]
    let mut moves: Vec<((u32, u64, Time), Vec<(Option<ActionId>, P)>)> = Vec::new();
    for block in &program.moves {
        let agent = u32::try_from(
            agents
                .iter()
                .position(|a| *a == block.agent.value)
                .expect("validated agent"),
        )
        .expect("validated agent count");
        for rule in &block.rules {
            let dist: Vec<(Option<ActionId>, P)> = rule
                .dist
                .iter()
                .map(|arm| {
                    let mv = match &arm.action.value {
                        MoveAction::Skip => None,
                        MoveAction::Named(n) => Some(action_ids[n.as_str()]),
                    };
                    (mv, weight_prob(arm.weight.value))
                })
                .collect();
            let time = u32::try_from(rule.time.value).expect("validated time");
            moves.push(((agent, rule.local.value, time), dist));
        }
    }

    let compile_rules = |rules: &[TransRule]| -> Vec<StateTransition<P>> {
        rules
            .iter()
            .map(|rule| {
                let (env, locals) = state_tuples[rule.from.value.as_str()];
                let guard = rule.guard.as_ref().map_or_else(Vec::new, |pats| {
                    pats.iter()
                        .map(|p| match &p.value {
                            GuardPat::Any => MovePattern::Any,
                            GuardPat::Skip => MovePattern::Skip,
                            GuardPat::Named(n) => MovePattern::Do(action_ids[n.as_str()]),
                        })
                        .collect()
                });
                StateTransition {
                    env,
                    locals: locals.to_vec(),
                    time: u32::try_from(rule.time.value).expect("validated time"),
                    guard,
                    outcomes: rule
                        .dist
                        .iter()
                        .map(|arm| {
                            let (env, locals) = state_tuples[arm.state.value.as_str()];
                            (env, locals.to_vec(), weight_prob(arm.weight.value))
                        })
                        .collect(),
                }
            })
            .collect()
    };

    let base_rules = compile_rules(&program.transitions);
    let n_agents = u32::try_from(agents.len()).expect("validated agent count");
    let horizon = u32::try_from(program.horizon.as_ref().expect("validated horizon").value)
        .expect("validated horizon");
    let model = TableModel {
        n_agents,
        initial: initial.clone(),
        horizon,
        moves: moves.clone(),
        state_transitions: base_rules.clone(),
        ..TableModel::default()
    };

    // Adversary variants: overrides first, base rules after — first-match
    // resolution makes the overrides win exactly on their keys.
    let adversaries: Vec<(String, TableModel<P>)> = program
        .adversaries
        .iter()
        .map(|adv| {
            let mut rules = compile_rules(&adv.rules);
            rules.extend(base_rules.iter().cloned());
            let variant = TableModel {
                n_agents,
                initial: initial.clone(),
                horizon,
                moves: moves.clone(),
                state_transitions: rules,
                // An adversary block whose overrides happen to coincide
                // with the base rules would otherwise fingerprint (and
                // therefore cache) identically to the base protocol.
                variant_tag: Some(format!("{}::{}", program.name.value, adv.name.value)),
                ..TableModel::default()
            };
            (adv.name.value.clone(), variant)
        })
        .collect();

    Ok(CompiledProtocol {
        name: program.name.value.clone(),
        agents,
        actions,
        states,
        failure_states,
        model,
        adversaries,
    })
}

/// Parses, validates, and compiles a program in one call.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile_str<P: Probability>(src: &str) -> Result<CompiledProtocol<P>, DslError> {
    compile(&parse(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pak_num::Rational;
    use pak_protocol::model::ProtocolModel;
    use pak_protocol::unfold::unfold;

    const GUARDED: &str = "
        protocol guarded {
            agents a;
            horizon 2;
            action go = 7;
            state idle = (0, 0);
            state hot = (1, 1);
            state cold = (2, 0) fail;
            init { 1: idle; }
            moves a { at (0, 0) -> { 1/2: go; 1/2: skip; }; }
            transitions {
                from idle at 0 when [go] -> hot;
                from idle at 0 -> { 2/3: idle; 1/3: cold; };
            }
            adversary freeze {
                from idle at 0 -> cold;
            }
        }";

    #[test]
    fn compiles_guards_and_adversaries() {
        let c = compile_str::<Rational>(GUARDED).unwrap();
        assert_eq!(c.name(), "guarded");
        assert_eq!(c.action("go"), Some(ActionId(7)));
        assert_eq!(c.agent("a"), Some(AgentId(0)));
        assert_eq!(c.state("hot"), Some(SimpleState::new(1, vec![1])));
        assert_eq!(c.failure_states(), &[(2, vec![0])]);
        assert!(c.is_failure(&SimpleState::new(2, vec![0])));
        assert!(!c.is_failure(&SimpleState::new(1, vec![1])));

        // Guard resolution on the compiled model: `go` hits the guarded
        // rule, skip falls to the catch-all.
        let st = SimpleState::new(0, vec![0]);
        let hit = c.model().transition(&st, &[Some(ActionId(7))], 0);
        assert_eq!(hit, vec![(SimpleState::new(1, vec![1]), Rational::one())]);
        let miss = c.model().transition(&st, &[None], 0);
        assert_eq!(miss.len(), 2);
        assert_eq!(miss[0].1, Rational::from_ratio(2, 3));

        // The adversary variant overrides the idle rules entirely.
        let (name, freeze) = c.adversaries().next().map(|(n, m)| (n, m.clone())).unwrap();
        assert_eq!(name, "freeze");
        let frozen = freeze.transition(&st, &[Some(ActionId(7))], 0);
        assert_eq!(
            frozen,
            vec![(SimpleState::new(2, vec![0]), Rational::one())]
        );

        // The family unfolds base-first.
        let trees = c.family().unfold_all::<Rational>().unwrap();
        assert_eq!(trees[0].0, "base");
        assert_eq!(trees[1].0, "freeze");
        assert!(trees[0].1.num_runs() > trees[1].1.num_runs());
    }

    #[test]
    fn failure_fact_matches_annotations() {
        use pak_core::event::RunSet;
        use pak_core::fact::Fact;
        use pak_core::ids::Point;

        let c = compile_str::<Rational>(GUARDED).unwrap();
        let pps = unfold::<_, Rational>(c.model()).unwrap();
        let fact = c.failure_fact();
        let event = RunSet::from_predicate(pps.num_runs(), |run| {
            (0..pps.run_len(run)).any(|t| {
                Fact::<_, Rational>::holds(
                    &fact,
                    &pps,
                    Point {
                        run,
                        time: u32::try_from(t).unwrap(),
                    },
                )
            })
        });
        // cold is reached only via the skip branch (prob 1/2 · 1/3).
        assert_eq!(pps.measure(&event), Rational::from_ratio(1, 6));
    }

    #[test]
    fn compiled_initial_matches_declaration_order() {
        let c = compile_str::<Rational>(
            "protocol order {
                agents a;
                horizon 1;
                state x = (3, 1);
                state y = (4, 0);
                init { 1/4: y; 3/4: x; }
            }",
        )
        .unwrap();
        let init = ProtocolModel::<Rational>::initial_states(c.model());
        assert_eq!(init[0].0, SimpleState::new(4, vec![0]));
        assert_eq!(init[1].0, SimpleState::new(3, vec![1]));
        assert_eq!(init[0].1, Rational::from_ratio(1, 4));
    }
}
