//! The tokenizer for the protocol language.
//!
//! The alphabet is deliberately small: identifiers, decimal integers, the
//! punctuation `{ } ( ) [ ] , ; : / = _` and the arrow `->`. Whitespace
//! separates tokens and `#` starts a comment running to the end of the
//! line. Every token carries a [`Span`] with its byte offset and 1-based
//! line/column, which the parser and validator thread through to
//! diagnostics.

use crate::error::{DslError, DslErrorKind, Span};

/// A lexical token kind. Keywords are not distinguished here — the parser
/// matches [`TokenKind::Ident`] text contextually (`protocol`, `agents`,
/// `at`, `from`, `when`, `skip`, `fail`, …), so protocol/state/action
/// names only collide with the few truly reserved words the validator
/// rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier: `[A-Za-z][A-Za-z0-9_]*` (or `_`-led with more
    /// characters; a lone `_` lexes as [`TokenKind::Underscore`]).
    Ident(String),
    /// A decimal integer fitting `u64`.
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// A lone `_` (the wildcard move pattern).
    Underscore,
    /// End of input (always the last token).
    Eof,
}

impl TokenKind {
    /// A short human rendering used in "expected …, found …" diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Int(n) => format!("integer {n}"),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::Arrow => "`->`".to_string(),
            TokenKind::Underscore => "`_`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload, for identifiers and integers).
    pub kind: TokenKind,
    /// Where the token sits in the source.
    pub span: Span,
}

/// Tokenizes `src`, appending a trailing [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a spanned [`DslError`] on a character outside the alphabet or
/// an integer literal exceeding `u64`.
pub fn lex(src: &str) -> Result<Vec<Token>, DslError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let (sline, scol) = (line, col);
        let span1 = |len: usize| Span {
            offset: start,
            len,
            line: sline,
            col: scol,
        };
        let c = src[i..].chars().next().expect("in-bounds char");
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += c.len_utf8();
                col += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                // Column bookkeeping resumes at the newline branch.
                col += 1;
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ',' | ';' | ':' | '/' | '=' => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semi,
                    ':' => TokenKind::Colon,
                    '/' => TokenKind::Slash,
                    _ => TokenKind::Eq,
                };
                tokens.push(Token {
                    kind,
                    span: span1(1),
                });
                i += 1;
                col += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        span: span1(2),
                    });
                    i += 2;
                    col += 2;
                } else {
                    return Err(DslError::new(span1(1), DslErrorKind::UnexpectedChar('-')));
                }
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                let mut len = 0;
                while i + len < bytes.len() && bytes[i + len].is_ascii_digit() {
                    let digit = u64::from(bytes[i + len] - b'0');
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(digit))
                        .ok_or_else(|| {
                            // Swallow the rest of the digits for the span.
                            let mut l = len;
                            while i + l < bytes.len() && bytes[i + l].is_ascii_digit() {
                                l += 1;
                            }
                            DslError::new(span1(l), DslErrorKind::NumberTooLarge)
                        })?;
                    len += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: span1(len),
                });
                i += len;
                col += u32::try_from(len).unwrap_or(u32::MAX);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut len = 0;
                while i + len < bytes.len()
                    && (bytes[i + len].is_ascii_alphanumeric() || bytes[i + len] == b'_')
                {
                    len += 1;
                }
                let text = &src[i..i + len];
                let kind = if text == "_" {
                    TokenKind::Underscore
                } else {
                    TokenKind::Ident(text.to_string())
                };
                tokens.push(Token {
                    kind,
                    span: span1(len),
                });
                i += len;
                col += u32::try_from(len).unwrap_or(u32::MAX);
            }
            other => {
                return Err(DslError::new(
                    span1(other.len_utf8()),
                    DslErrorKind::UnexpectedChar(other),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span {
            offset: src.len(),
            len: 0,
            line,
            col,
        },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_line_and_column() {
        let toks = lex("protocol p {\n  horizon 2;\n}").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &TokenKind::Ident("protocol".into()),
                &TokenKind::Ident("p".into()),
                &TokenKind::LBrace,
                &TokenKind::Ident("horizon".into()),
                &TokenKind::Int(2),
                &TokenKind::Semi,
                &TokenKind::RBrace,
                &TokenKind::Eof,
            ]
        );
        let horizon = &toks[3];
        assert_eq!((horizon.span.line, horizon.span.col), (2, 3));
        assert_eq!(horizon.span.offset, 15);
    }

    #[test]
    fn comments_and_arrow_and_underscore() {
        let toks = lex("a -> _ # comment -> ignored\n;").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &TokenKind::Ident("a".into()),
                &TokenKind::Arrow,
                &TokenKind::Underscore,
                &TokenKind::Semi,
                &TokenKind::Eof,
            ]
        );
        assert_eq!(toks[3].span.line, 2);
    }

    #[test]
    fn bad_character_is_spanned() {
        let err = lex("agents a$;").unwrap_err();
        assert_eq!(err.kind, DslErrorKind::UnexpectedChar('$'));
        assert_eq!((err.span.line, err.span.col), (1, 9));
    }

    #[test]
    fn huge_number_rejected() {
        let err = lex("horizon 99999999999999999999;").unwrap_err();
        assert_eq!(err.kind, DslErrorKind::NumberTooLarge);
        assert_eq!(err.span.col, 9);
    }

    #[test]
    fn lone_minus_rejected() {
        let err = lex("a - b").unwrap_err();
        assert_eq!(err.kind, DslErrorKind::UnexpectedChar('-'));
    }
}
