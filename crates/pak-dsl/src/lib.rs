//! A textual protocol-description language compiled to
//! [`TableModel`](pak_protocol::model::TableModel).
//!
//! Every protocol the paper's semantics can express used to require
//! hand-written Rust in `pak-systems`. This crate adds a small
//! declaration language instead: named states over
//! [`SimpleState`](pak_core::state::SimpleState) tuples, per-agent move
//! tables keyed on `(local, time)` (locality is enforced by the grammar —
//! a rule physically cannot mention another agent's state), probabilistic
//! transitions with exact rational weights and optional guards on the
//! joint move, initial-state distributions, `fail` state annotations, and
//! named `adversary` override blocks.
//!
//! The pipeline is [`parse`] → [`Program::validate`](ast::Program) →
//! [`compile()`], each stage reporting spanned, actionable diagnostics
//! ([`DslError`]). Compiled protocols are ordinary
//! [`TableModel`](pak_protocol::model::TableModel)s, so they inherit the
//! indexed lookups, allocation-free `_into` paths, incremental
//! [`extend_horizon`](pak_protocol::unfold::Unfolder::extend_horizon)
//! growth, and the batched `pak-engine` evaluator unchanged. The
//! [`fuzz`] module generates random valid programs for the differential
//! harness (`tests/dsl_differential.rs` proves compiled protocols
//! bit-identical to a direct AST interpreter across fuzzed sweeps).
//!
//! # Examples
//!
//! ```
//! use pak_dsl::compile_str;
//! use pak_num::Rational;
//! use pak_protocol::unfold::unfold;
//!
//! let compiled = compile_str::<Rational>(
//!     "protocol coin {
//!          agents observer;       # one agent, blind to the coin
//!          horizon 1;
//!          action guess = 0;
//!          state heads = (1, 0);  # (env, observer local)
//!          state tails = (0, 0);
//!          init { 1/2: heads; 1/2: tails; }
//!          moves observer { at (0, 0) -> guess; }
//!      }",
//! )
//! .unwrap();
//! let pps = unfold::<_, Rational>(compiled.model()).unwrap();
//! assert_eq!(pps.num_runs(), 2);
//! // At time 0 both runs sit in ONE information-set cell: the observer
//! // cannot tell heads from tails.
//! use pak_core::ids::{AgentId, Point, RunId};
//! let cell = pps.cell_at(AgentId(0), Point { run: RunId(0), time: 0 });
//! assert_eq!(cell, pps.cell_at(AgentId(0), Point { run: RunId(1), time: 0 }));
//! ```

pub mod ast;
pub mod compile;
pub mod error;
pub mod fuzz;
pub mod lexer;
pub mod parser;
pub mod validate;

pub use ast::Program;
pub use compile::{compile, compile_str, CompiledProtocol};
pub use error::{DslError, DslErrorKind, Span};
pub use parser::parse;
