//! A grammar-driven program fuzzer.
//!
//! [`fuzz_program`] emits a random — but always *valid* — protocol
//! program as source text, seeded through the in-repo splitmix64 PRNG so
//! every case is reproducible from its `u64` seed. "Valid" is by
//! construction: every referenced name is declared, tuple arities match
//! the agent count, rule keys are unique, rule times fall before the
//! horizon, and every distribution's weights are emitted as `w_i/total`
//! for positive `w_i` summing to `total`, so they sum to exactly one in
//! rational arithmetic.
//!
//! The generator deliberately exercises the whole grammar: mixed and
//! deterministic move distributions, `skip` arms, guarded transition
//! rules with an unconditional catch-all, states that alias the same
//! tuple under two names, `fail` annotations, duplicate init arms, and
//! `adversary` override blocks. The emitted text is what feeds the
//! compile → unfold → extend → engine differential chain in
//! `tests/dsl_differential.rs`; the bounds in [`FuzzConfig`] keep the
//! unfolded trees small enough to sweep hundreds of programs.
//!
//! # Examples
//!
//! ```
//! use pak_dsl::fuzz::{fuzz_program, FuzzConfig};
//! use pak_dsl::compile_str;
//! use pak_num::Rational;
//!
//! let src = fuzz_program(42, &FuzzConfig::default());
//! // Fuzzed programs always parse, validate, and compile.
//! let compiled = compile_str::<Rational>(&src).unwrap();
//! assert!(compiled.model().horizon >= 1);
//! ```

use std::fmt::Write as _;

use pak_core::generator::SplitMix64;

/// Bounds for [`fuzz_program`]. The defaults keep a worst-case unfolding
/// in the low hundreds of nodes (≤ 2 agents × ≤ 2-arm move mixes gives at
/// most 4 joint moves per node, times ≤ 2 outcomes per transition, over a
/// horizon ≤ 3).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Maximum number of agents (≥ 1).
    pub max_agents: u64,
    /// Maximum horizon (≥ 1).
    pub max_horizon: u64,
    /// Maximum number of named states (≥ 2).
    pub max_states: u64,
    /// Maximum number of declared actions (≥ 1).
    pub max_actions: u64,
    /// Local-data values are drawn from `0..=max_local`.
    pub max_local: u64,
    /// Environment values are drawn from `0..=max_env`.
    pub max_env: u64,
    /// Whether to emit guarded transition rules.
    pub guards: bool,
    /// Whether to emit `adversary` override blocks.
    pub adversaries: bool,
    /// Whether to emit `fail` state annotations.
    pub failures: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            max_agents: 2,
            max_horizon: 3,
            max_states: 4,
            max_actions: 3,
            max_local: 1,
            max_env: 2,
            guards: true,
            adversaries: true,
            failures: true,
        }
    }
}

/// Appends a `{ w_1/total: item; …; }` distribution (or a bare item when
/// the draw is a singleton with weight one), drawing `arms` items with
/// replacement from `items`.
fn write_dist(out: &mut String, rng: &mut SplitMix64, items: &[String], max_arms: u64) {
    let arms = rng.range(1, max_arms.max(1));
    if arms == 1 && rng.chance(1, 2) {
        let item = &items[rng.below(items.len() as u64) as usize];
        out.push_str(item);
        return;
    }
    let weights: Vec<u64> = (0..arms).map(|_| rng.range(1, 5)).collect();
    let total: u64 = weights.iter().sum();
    out.push_str("{ ");
    for w in weights {
        let item = &items[rng.below(items.len() as u64) as usize];
        if w == total {
            let _ = write!(out, "1: {item}; ");
        } else {
            let _ = write!(out, "{w}/{total}: {item}; ");
        }
    }
    out.push('}');
}

/// Emits a random valid protocol program as source text (see the module
/// docs for what "valid" means and which constructs are exercised).
#[must_use]
#[allow(clippy::too_many_lines, clippy::missing_panics_doc)]
pub fn fuzz_program(seed: u64, cfg: &FuzzConfig) -> String {
    let mut rng = SplitMix64::new(seed);
    let n_agents = rng.range(1, cfg.max_agents.max(1));
    let horizon = rng.range(1, cfg.max_horizon.max(1));
    let n_states = rng.range(2, cfg.max_states.max(2));
    let n_actions = rng.range(1, cfg.max_actions.max(1));

    let agents: Vec<String> = (0..n_agents).map(|i| format!("ag{i}")).collect();
    let action_id_base = if rng.chance(1, 4) { 10 } else { 0 };
    let actions: Vec<String> = (0..n_actions).map(|i| format!("act{i}")).collect();
    let states: Vec<String> = (0..n_states).map(|i| format!("s{i}")).collect();

    let mut src = String::new();
    let _ = writeln!(src, "protocol fuzzed_{seed} {{");
    let _ = writeln!(src, "    agents {};", agents.join(", "));
    let _ = writeln!(src, "    horizon {horizon};");
    for (i, a) in actions.iter().enumerate() {
        let _ = writeln!(src, "    action {a} = {};", action_id_base + i as u64);
    }
    // States: tuples drawn with replacement, so two names may alias the
    // same (env, locals) tuple — an adversarial case for name-vs-tuple
    // resolution downstream.
    for s in &states {
        let env = rng.below(cfg.max_env + 1);
        let locals: Vec<String> = (0..n_agents)
            .map(|_| rng.below(cfg.max_local + 1).to_string())
            .collect();
        let fail = if cfg.failures && rng.chance(1, 8) {
            " fail"
        } else {
            ""
        };
        let _ = writeln!(src, "    state {s} = ({env}, {}){fail};", locals.join(", "));
    }

    // Init: 1–3 arms, duplicates allowed.
    let init_arms = rng.range(1, 3.min(n_states));
    let init_weights: Vec<u64> = (0..init_arms).map(|_| rng.range(1, 5)).collect();
    let init_total: u64 = init_weights.iter().sum();
    let _ = writeln!(src, "    init {{");
    for w in init_weights {
        let s = &states[rng.below(n_states) as usize];
        if w == init_total {
            let _ = writeln!(src, "        1: {s};");
        } else {
            let _ = writeln!(src, "        {w}/{init_total}: {s};");
        }
    }
    let _ = writeln!(src, "    }}");

    // Moves: per agent, a rule for a random subset of the (local, time)
    // grid — the grid walk guarantees unique rule keys. Arms mix actions
    // and `skip`.
    let mut move_items: Vec<String> = actions.clone();
    move_items.push("skip".to_string());
    for a in &agents {
        if rng.chance(1, 4) {
            continue; // this agent always skips (no block at all)
        }
        let _ = writeln!(src, "    moves {a} {{");
        for local in 0..=cfg.max_local {
            for time in 0..horizon {
                if !rng.chance(1, 2) {
                    continue;
                }
                let _ = write!(src, "        at ({local}, {time}) -> ");
                write_dist(&mut src, &mut rng, &move_items, 2);
                let _ = writeln!(src, ";");
            }
        }
        let _ = writeln!(src, "    }}");
    }

    // Transitions: for each (state, time), either one unconditional rule,
    // or (with guards enabled) a guarded rule plus an optional
    // unconditional catch-all — distinct keys by construction.
    let emit_rules = |src: &mut String, rng: &mut SplitMix64, indent: &str| {
        for s in &states {
            for time in 0..horizon {
                if !rng.chance(1, 2) {
                    continue;
                }
                if cfg.guards && !actions.is_empty() && rng.chance(1, 3) {
                    let pats: Vec<String> = (0..n_agents)
                        .map(|_| match rng.below(3) {
                            0 => "_".to_string(),
                            1 => "skip".to_string(),
                            _ => actions[rng.below(n_actions) as usize].clone(),
                        })
                        .collect();
                    let _ = write!(
                        src,
                        "{indent}from {s} at {time} when [{}] -> ",
                        pats.join(", ")
                    );
                    write_dist(src, rng, &states, 2);
                    let _ = writeln!(src, ";");
                    if rng.chance(1, 2) {
                        let _ = write!(src, "{indent}from {s} at {time} -> ");
                        write_dist(src, rng, &states, 2);
                        let _ = writeln!(src, ";");
                    }
                } else {
                    let _ = write!(src, "{indent}from {s} at {time} -> ");
                    write_dist(src, rng, &states, 2);
                    let _ = writeln!(src, ";");
                }
            }
        }
    };
    let _ = writeln!(src, "    transitions {{");
    emit_rules(&mut src, &mut rng, "        ");
    let _ = writeln!(src, "    }}");

    if cfg.adversaries && rng.chance(1, 3) {
        let _ = writeln!(src, "    adversary adv0 {{");
        emit_rules(&mut src, &mut rng, "        ");
        let _ = writeln!(src, "    }}");
    }

    let _ = write!(src, "}}");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;
    use pak_num::Rational;

    #[test]
    fn fuzzed_programs_always_compile() {
        for seed in 0..200u64 {
            let src = fuzz_program(seed, &FuzzConfig::default());
            if let Err(e) = compile_str::<Rational>(&src) {
                panic!("seed {seed} produced an invalid program: {e}\n{src}");
            }
        }
    }

    #[test]
    fn fuzzing_is_deterministic_in_the_seed() {
        let cfg = FuzzConfig::default();
        assert_eq!(fuzz_program(7, &cfg), fuzz_program(7, &cfg));
        assert_ne!(fuzz_program(7, &cfg), fuzz_program(8, &cfg));
    }

    #[test]
    fn the_sweep_exercises_the_whole_grammar() {
        let cfg = FuzzConfig::default();
        let (mut guards, mut advs, mut fails, mut mixes, mut aliases) = (0, 0, 0, 0, 0);
        for seed in 0..200u64 {
            let src = fuzz_program(seed, &cfg);
            let prog = crate::parse(&src).unwrap();
            if prog
                .transitions
                .iter()
                .chain(prog.adversaries.iter().flat_map(|a| a.rules.iter()))
                .any(|r| r.guard.is_some())
            {
                guards += 1;
            }
            if !prog.adversaries.is_empty() {
                advs += 1;
            }
            if prog.states.iter().any(|s| s.fail) {
                fails += 1;
            }
            if prog
                .moves
                .iter()
                .flat_map(|b| b.rules.iter())
                .any(|r| r.dist.len() > 1)
            {
                mixes += 1;
            }
            let tuples: Vec<_> = prog.states.iter().map(|s| (s.env, &s.locals)).collect();
            if (1..tuples.len()).any(|i| tuples[..i].contains(&tuples[i])) {
                aliases += 1;
            }
        }
        assert!(guards > 20, "guarded rules too rare: {guards}/200");
        assert!(advs > 20, "adversary blocks too rare: {advs}/200");
        assert!(fails > 20, "fail annotations too rare: {fails}/200");
        assert!(mixes > 50, "mixed move distributions too rare: {mixes}/200");
        assert!(aliases > 10, "state tuple aliases too rare: {aliases}/200");
    }
}
