//! Spanned diagnostics shared by the lexer, parser, validator, and
//! compiler.
//!
//! Every error the crate produces is a [`DslError`]: a [`Span`] locating
//! the offending text (byte offset plus 1-based line/column) and a
//! [`DslErrorKind`] saying what went wrong. Kinds are a plain `PartialEq`
//! enum so tests can assert the *exact* diagnostic and position (see the
//! malformed-program table in `parser.rs`), and every message names the
//! construct involved so the fix is actionable from the message alone.

use std::fmt;

/// A source location: byte offset and length, plus 1-based line/column of
/// the start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the start of the span in the source text.
    pub offset: usize,
    /// Length of the span in bytes.
    pub len: usize,
    /// 1-based line number of the start.
    pub line: u32,
    /// 1-based column number (in characters) of the start.
    pub col: u32,
}

impl Span {
    /// The smallest span covering both `self` and `other` (keeps `self`'s
    /// line/column, which is the earlier position by construction).
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        let end = (other.offset + other.len).max(self.offset + self.len);
        Span {
            offset: self.offset,
            len: end - self.offset,
            line: self.line,
            col: self.col,
        }
    }
}

/// What went wrong — lexing, parsing, or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslErrorKind {
    /// A character outside the language's alphabet.
    UnexpectedChar(char),
    /// An integer literal exceeding `u64`.
    NumberTooLarge,
    /// The parser needed one construct and found another.
    Expected {
        /// What the grammar required at this point.
        what: &'static str,
        /// A rendering of the token actually found.
        found: String,
    },
    /// Input continued after the closing `}` of the protocol block.
    TrailingInput,
    /// A weight with denominator zero.
    ZeroDenominator,
    /// An agent name listed twice.
    DuplicateAgent(String),
    /// A state name declared twice.
    DuplicateState(String),
    /// An action name declared twice.
    DuplicateAction(String),
    /// Two actions declared with the same numeric id.
    DuplicateActionId(u64),
    /// An adversary name declared twice.
    DuplicateAdversary(String),
    /// Two rules with the same key (described in the payload).
    DuplicateRule(String),
    /// A top-level declaration that may appear only once, repeated.
    DuplicateDecl(&'static str),
    /// A required top-level declaration never appeared.
    MissingDecl(&'static str),
    /// A reference to an undeclared state.
    UnknownState(String),
    /// A reference to an undeclared action.
    UnknownAction(String),
    /// A reference to an agent not listed in `agents`.
    UnknownAgent(String),
    /// A declared name that collides with a keyword of the language.
    ReservedName(String),
    /// A tuple whose length must equal the number of agents, but doesn't.
    ArityMismatch {
        /// The required length (one entry per agent).
        expected: usize,
        /// The length found.
        found: usize,
    },
    /// A weight equal to zero (distributions must have positive support).
    ZeroWeight,
    /// A distribution whose weights do not sum to exactly one.
    WeightSum(String),
    /// A rule keyed at a time at or beyond the declared horizon.
    TimeBeyondHorizon {
        /// The offending time.
        time: u64,
        /// The declared horizon.
        horizon: u64,
    },
    /// An integer valid for the grammar but out of range for its use.
    IntOutOfRange {
        /// What the integer is (e.g. "action id", "horizon").
        what: &'static str,
        /// The largest admissible value.
        max: u64,
    },
}

impl fmt::Display for DslErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            DslErrorKind::NumberTooLarge => write!(f, "integer literal too large for u64"),
            DslErrorKind::Expected { what, found } => {
                write!(f, "expected {what}, found {found}")
            }
            DslErrorKind::TrailingInput => {
                write!(f, "unexpected input after the closing `}}` of the protocol")
            }
            DslErrorKind::ZeroDenominator => write!(f, "weight denominator must not be zero"),
            DslErrorKind::DuplicateAgent(n) => write!(f, "duplicate agent `{n}`"),
            DslErrorKind::DuplicateState(n) => {
                write!(f, "state `{n}` is declared more than once")
            }
            DslErrorKind::DuplicateAction(n) => {
                write!(f, "action `{n}` is declared more than once")
            }
            DslErrorKind::DuplicateActionId(id) => {
                write!(f, "action id {id} is assigned to more than one action")
            }
            DslErrorKind::DuplicateAdversary(n) => {
                write!(f, "adversary `{n}` is declared more than once")
            }
            DslErrorKind::DuplicateRule(key) => {
                write!(f, "duplicate rule for {key}")
            }
            DslErrorKind::DuplicateDecl(what) => {
                write!(f, "more than one `{what}` declaration")
            }
            DslErrorKind::MissingDecl(what) => {
                write!(f, "the protocol is missing its `{what}` declaration")
            }
            DslErrorKind::UnknownState(n) => {
                write!(
                    f,
                    "unknown state `{n}` (declare it with `state {n} = (…);`)"
                )
            }
            DslErrorKind::UnknownAction(n) => {
                write!(
                    f,
                    "unknown action `{n}` (declare it with `action {n} = <id>;`)"
                )
            }
            DslErrorKind::UnknownAgent(n) => {
                write!(
                    f,
                    "unknown agent `{n}` (list it in the `agents` declaration)"
                )
            }
            DslErrorKind::ReservedName(n) => {
                write!(f, "`{n}` is a keyword and cannot be used as a name")
            }
            DslErrorKind::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "expected {expected} entries (one per agent), found {found}"
                )
            }
            DslErrorKind::ZeroWeight => write!(f, "weights must be positive"),
            DslErrorKind::WeightSum(sum) => {
                write!(f, "distribution weights sum to {sum}, expected exactly 1")
            }
            DslErrorKind::TimeBeyondHorizon { time, horizon } => {
                write!(
                    f,
                    "time {time} is at or beyond the horizon {horizon} (rules must fire before it)"
                )
            }
            DslErrorKind::IntOutOfRange { what, max } => {
                write!(f, "{what} out of range (max {max})")
            }
        }
    }
}

/// An error anywhere in the parse → validate → compile pipeline, with the
/// source location it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// Where in the source text.
    pub span: Span,
    /// What went wrong.
    pub kind: DslErrorKind,
}

impl DslError {
    /// Constructs an error at `span`.
    #[must_use]
    pub fn new(span: Span, kind: DslErrorKind) -> Self {
        DslError { span, kind }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.span.line, self.span.col, self.kind
        )
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_and_column() {
        let e = DslError::new(
            Span {
                offset: 12,
                len: 3,
                line: 2,
                col: 5,
            },
            DslErrorKind::UnknownState("s9".to_string()),
        );
        let s = e.to_string();
        assert!(s.starts_with("line 2, column 5:"), "{s}");
        assert!(s.contains("unknown state `s9`"), "{s}");
    }

    #[test]
    fn span_join_covers_both() {
        let a = Span {
            offset: 4,
            len: 2,
            line: 1,
            col: 5,
        };
        let b = Span {
            offset: 9,
            len: 3,
            line: 1,
            col: 10,
        };
        let j = a.to(b);
        assert_eq!(j.offset, 4);
        assert_eq!(j.len, 8);
        assert_eq!((j.line, j.col), (1, 5));
    }
}
