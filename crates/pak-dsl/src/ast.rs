//! The abstract syntax tree of a protocol program.
//!
//! Every name and number the validator may complain about is wrapped in
//! [`Spanned`], which carries the source location but **compares by value
//! only** — two parses of the same program are `==` even though their
//! spans differ. That is exactly the equality the round-trip property
//! needs: [`Program`]'s `Display` pretty-prints a canonical rendering
//! that re-parses to an equal AST (property-tested over fuzzed programs
//! in `tests/dsl_differential.rs`).
//!
//! # Examples
//!
//! ```
//! use pak_dsl::parse;
//!
//! let src = "protocol p { agents a; horizon 1; state s = (0, 0); init { 1: s; } }";
//! let prog = parse(src).unwrap();
//! let reparsed = parse(&prog.to_string()).unwrap();
//! assert_eq!(prog, reparsed);
//! ```

use std::fmt;

use crate::error::Span;

/// A value with the source span it was parsed from. Equality and hashing
/// ignore the span (see the module docs).
#[derive(Debug, Clone)]
pub struct Spanned<T> {
    /// The parsed value.
    pub value: T,
    /// Where it came from in the source text.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wraps `value` with `span`.
    pub fn new(value: T, span: Span) -> Self {
        Spanned { value, span }
    }
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl<T: Eq> Eq for Spanned<T> {}

/// An exact rational weight `num/den` (a bare integer parses with
/// `den = 1`). Weights are kept unreduced — `2/4` and `1/2` are distinct
/// ASTs — and only become canonical probabilities at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Weight {
    /// Numerator.
    pub num: u64,
    /// Denominator (non-zero; the parser rejects `/0`).
    pub den: u64,
}

impl Weight {
    /// The weight `1` (= `1/1`).
    pub const ONE: Weight = Weight { num: 1, den: 1 };
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// `action NAME = ID;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDecl {
    /// The action's name.
    pub name: Spanned<String>,
    /// The numeric [`pak_core::ids::ActionId`] it compiles to.
    pub id: Spanned<u64>,
}

/// `state NAME = (ENV, LOCAL_1, …, LOCAL_n) [fail];`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDecl {
    /// The state's name.
    pub name: Spanned<String>,
    /// The environment component.
    pub env: u64,
    /// One local-data value per agent (arity checked by validation).
    pub locals: Vec<u64>,
    /// Whether the state is annotated as a failure state.
    pub fail: bool,
}

/// One arm of the `init { … }` distribution: `WEIGHT: STATE;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitArm {
    /// The arm's probability weight.
    pub weight: Spanned<Weight>,
    /// The initial state's name.
    pub state: Spanned<String>,
}

/// What an agent does in one arm of a move distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveAction {
    /// Perform no recorded action (`skip`).
    Skip,
    /// Perform the named action.
    Named(String),
}

/// One arm of a move distribution: `WEIGHT: ACTION;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveArm {
    /// The arm's probability weight.
    pub weight: Spanned<Weight>,
    /// The action performed in this arm.
    pub action: Spanned<MoveAction>,
}

/// `at (LOCAL, TIME) -> DIST;` inside a `moves` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveRule {
    /// The agent's local data this rule keys on.
    pub local: Spanned<u64>,
    /// The time this rule keys on.
    pub time: Spanned<u64>,
    /// The move distribution (singleton for a deterministic step).
    pub dist: Vec<MoveArm>,
}

/// `moves AGENT { … }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveBlock {
    /// The agent whose protocol this block specifies.
    pub agent: Spanned<String>,
    /// The rules, in declaration order.
    pub rules: Vec<MoveRule>,
}

/// A per-agent pattern in a transition guard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GuardPat {
    /// `_` — matches any move.
    Any,
    /// `skip` — matches only a skip.
    Skip,
    /// An action name — matches only that action being performed.
    Named(String),
}

/// One arm of a transition distribution: `WEIGHT: STATE;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransArm {
    /// The arm's probability weight.
    pub weight: Spanned<Weight>,
    /// The successor state's name.
    pub state: Spanned<String>,
}

/// `from STATE at TIME [when [PAT, …]] -> DIST;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransRule {
    /// The source state's name.
    pub from: Spanned<String>,
    /// The time this rule applies at.
    pub time: Spanned<u64>,
    /// Optional guard over the joint move, one pattern per agent.
    pub guard: Option<Vec<Spanned<GuardPat>>>,
    /// The successor distribution (singleton for a deterministic step).
    pub dist: Vec<TransArm>,
}

/// `adversary NAME { … }` — a named bundle of transition overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryDecl {
    /// The adversary's name.
    pub name: Spanned<String>,
    /// Its override rules, tried before the base `transitions` rules.
    pub rules: Vec<TransRule>,
}

/// A complete protocol program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The protocol's name.
    pub name: Spanned<String>,
    /// The agents, in declaration order (index = `AgentId`).
    pub agents: Vec<Spanned<String>>,
    /// The horizon (`None` only for programs that fail validation).
    pub horizon: Option<Spanned<u64>>,
    /// Declared actions.
    pub actions: Vec<ActionDecl>,
    /// Declared states.
    pub states: Vec<StateDecl>,
    /// The initial-state distribution.
    pub init: Vec<InitArm>,
    /// Per-agent move tables.
    pub moves: Vec<MoveBlock>,
    /// The base transition rules, in declaration order.
    pub transitions: Vec<TransRule>,
    /// Named adversary overrides.
    pub adversaries: Vec<AdversaryDecl>,
}

fn write_trans_rule(f: &mut fmt::Formatter<'_>, indent: &str, r: &TransRule) -> fmt::Result {
    write!(f, "{indent}from {} at {}", r.from.value, r.time.value)?;
    if let Some(pats) = &r.guard {
        write!(f, " when [")?;
        for (i, p) in pats.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &p.value {
                GuardPat::Any => write!(f, "_")?,
                GuardPat::Skip => write!(f, "skip")?,
                GuardPat::Named(a) => write!(f, "{a}")?,
            }
        }
        write!(f, "]")?;
    }
    write!(f, " -> ")?;
    if r.dist.len() == 1 && r.dist[0].weight.value == Weight::ONE {
        writeln!(f, "{};", r.dist[0].state.value)
    } else {
        write!(f, "{{ ")?;
        for arm in &r.dist {
            write!(f, "{}: {}; ", arm.weight.value, arm.state.value)?;
        }
        writeln!(f, "}};")
    }
}

impl fmt::Display for Program {
    /// Pretty-prints the canonical rendering of the program: same
    /// declarations in the same order, normalized whitespace. Guaranteed
    /// to re-parse to an AST `==` to this one.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "protocol {} {{", self.name.value)?;
        if !self.agents.is_empty() {
            let names: Vec<&str> = self.agents.iter().map(|a| a.value.as_str()).collect();
            writeln!(f, "    agents {};", names.join(", "))?;
        }
        if let Some(h) = &self.horizon {
            writeln!(f, "    horizon {};", h.value)?;
        }
        for a in &self.actions {
            writeln!(f, "    action {} = {};", a.name.value, a.id.value)?;
        }
        for s in &self.states {
            write!(f, "    state {} = ({}", s.name.value, s.env)?;
            for l in &s.locals {
                write!(f, ", {l}")?;
            }
            write!(f, ")")?;
            if s.fail {
                write!(f, " fail")?;
            }
            writeln!(f, ";")?;
        }
        if !self.init.is_empty() {
            writeln!(f, "    init {{")?;
            for arm in &self.init {
                writeln!(f, "        {}: {};", arm.weight.value, arm.state.value)?;
            }
            writeln!(f, "    }}")?;
        }
        for block in &self.moves {
            writeln!(f, "    moves {} {{", block.agent.value)?;
            for r in &block.rules {
                write!(f, "        at ({}, {}) -> ", r.local.value, r.time.value)?;
                if r.dist.len() == 1 && r.dist[0].weight.value == Weight::ONE {
                    match &r.dist[0].action.value {
                        MoveAction::Skip => writeln!(f, "skip;")?,
                        MoveAction::Named(a) => writeln!(f, "{a};")?,
                    }
                } else {
                    write!(f, "{{ ")?;
                    for arm in &r.dist {
                        write!(f, "{}: ", arm.weight.value)?;
                        match &arm.action.value {
                            MoveAction::Skip => write!(f, "skip; ")?,
                            MoveAction::Named(a) => write!(f, "{a}; ")?,
                        }
                    }
                    writeln!(f, "}};")?;
                }
            }
            writeln!(f, "    }}")?;
        }
        if !self.transitions.is_empty() {
            writeln!(f, "    transitions {{")?;
            for r in &self.transitions {
                write_trans_rule(f, "        ", r)?;
            }
            writeln!(f, "    }}")?;
        }
        for adv in &self.adversaries {
            writeln!(f, "    adversary {} {{", adv.name.value)?;
            for r in &adv.rules {
                write_trans_rule(f, "        ", r)?;
            }
            writeln!(f, "    }}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanned_equality_ignores_spans() {
        let a = Spanned::new(
            "x".to_string(),
            Span {
                offset: 0,
                len: 1,
                line: 1,
                col: 1,
            },
        );
        let b = Spanned::new(
            "x".to_string(),
            Span {
                offset: 40,
                len: 1,
                line: 3,
                col: 7,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn weight_display_elides_unit_denominator() {
        assert_eq!(Weight { num: 3, den: 4 }.to_string(), "3/4");
        assert_eq!(Weight { num: 2, den: 1 }.to_string(), "2");
        assert_eq!(Weight { num: 2, den: 4 }.to_string(), "2/4");
    }
}
