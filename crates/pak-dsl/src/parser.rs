//! The recursive-descent parser for the protocol language.
//!
//! The grammar (no operator precedence — it is a declaration language;
//! productions are listed outermost first, and the only nesting is
//! distributions inside rules):
//!
//! ```text
//! program    := "protocol" IDENT "{" decl* "}"
//! decl       := "agents" IDENT ("," IDENT)* ";"
//!             | "horizon" INT ";"
//!             | "action" IDENT "=" INT ";"
//!             | "state" IDENT "=" "(" INT ("," INT)* ")" "fail"? ";"
//!             | "init" "{" (WEIGHT ":" IDENT ";")* "}"
//!             | "moves" IDENT "{" move-rule* "}"
//!             | "transitions" "{" trans-rule* "}"
//!             | "adversary" IDENT "{" trans-rule* "}"
//! move-rule  := "at" "(" INT "," INT ")" "->" move-dist ";"
//! move-dist  := move-act | "{" (WEIGHT ":" move-act ";")+ "}"
//! move-act   := "skip" | IDENT
//! trans-rule := "from" IDENT "at" INT ("when" "[" pat ("," pat)* "]")?
//!               "->" trans-dist ";"
//! pat        := "_" | "skip" | IDENT
//! trans-dist := IDENT | "{" (WEIGHT ":" IDENT ";")+ "}"
//! WEIGHT     := INT ("/" INT)?
//! ```
//!
//! `IDENT` is `[A-Za-z][A-Za-z0-9_]*`, `INT` is a decimal `u64`, and `#`
//! comments run to end of line. In a `state` declaration the first integer
//! is the environment component and the remaining ones are the agents'
//! local data, in `agents`-declaration order. In a `move-rule`, `at
//! (LOCAL, TIME)` keys the rule on the agent's own local data — agents
//! cannot read anything else, which is the paper's locality condition
//! enforced by the grammar itself. Keywords are contextual; the validator
//! additionally rejects declaring names that collide with them.
//!
//! Every diagnostic is a spanned [`DslError`] pointing at the offending
//! token with a message naming both what was required and what was found.
//!
//! # Examples
//!
//! ```
//! use pak_dsl::parse;
//!
//! let prog = parse(
//!     "protocol coin {
//!          agents observer;
//!          horizon 1;
//!          action guess = 0;
//!          state heads = (1, 0);
//!          state tails = (0, 0);
//!          init { 1/2: heads; 1/2: tails; }
//!          moves observer { at (0, 0) -> guess; }
//!      }",
//! )
//! .unwrap();
//! assert_eq!(prog.name.value, "coin");
//! assert_eq!(prog.states.len(), 2);
//!
//! // Errors carry a 1-based line/column and an actionable message.
//! let err = parse("protocol p { horizon; }").unwrap_err();
//! assert_eq!((err.span.line, err.span.col), (1, 21));
//! assert_eq!(err.to_string(), "line 1, column 21: expected an integer, found `;`");
//! ```

use crate::ast::{
    ActionDecl, AdversaryDecl, GuardPat, InitArm, MoveAction, MoveArm, MoveBlock, MoveRule,
    Program, Spanned, StateDecl, TransArm, TransRule, Weight,
};
use crate::error::{DslError, DslErrorKind, Span};
use crate::lexer::{lex, Token, TokenKind};

/// Parses a protocol program.
///
/// This is purely syntactic — name resolution, arity checks, and
/// weight-sum checks live in [`Program::validate`](crate::validate), which
/// [`crate::compile()`] runs for you.
///
/// # Errors
///
/// Returns a spanned [`DslError`] describing the first lexical or
/// syntactic problem.
pub fn parse(src: &str) -> Result<Program, DslError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, what: &'static str) -> DslError {
        let t = self.peek();
        DslError::new(
            t.span,
            DslErrorKind::Expected {
                what,
                found: t.kind.describe(),
            },
        )
    }

    fn eat(&mut self, kind: &TokenKind) -> Option<Span> {
        if &self.peek().kind == kind {
            Some(self.bump().span)
        } else {
            None
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &'static str) -> Result<Span, DslError> {
        self.eat(kind).ok_or_else(|| self.err_here(what))
    }

    fn expect_ident(&mut self, what: &'static str) -> Result<Spanned<String>, DslError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let value = s.clone();
                let span = self.bump().span;
                Ok(Spanned::new(value, span))
            }
            _ => Err(self.err_here(what)),
        }
    }

    fn expect_int(&mut self, what: &'static str) -> Result<Spanned<u64>, DslError> {
        match self.peek().kind {
            TokenKind::Int(n) => {
                let span = self.bump().span;
                Ok(Spanned::new(n, span))
            }
            _ => Err(self.err_here(what)),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> Option<Span> {
        if self.at_keyword(kw) {
            Some(self.bump().span)
        } else {
            None
        }
    }

    fn expect_keyword(&mut self, kw: &str, what: &'static str) -> Result<Span, DslError> {
        self.eat_keyword(kw).ok_or_else(|| self.err_here(what))
    }

    fn program(&mut self) -> Result<Program, DslError> {
        self.expect_keyword("protocol", "the keyword `protocol`")?;
        let name = self.expect_ident("a protocol name")?;
        self.expect(&TokenKind::LBrace, "`{` opening the protocol body")?;
        let mut prog = Program {
            name,
            agents: Vec::new(),
            horizon: None,
            actions: Vec::new(),
            states: Vec::new(),
            init: Vec::new(),
            moves: Vec::new(),
            transitions: Vec::new(),
            adversaries: Vec::new(),
        };
        let mut init_seen = false;
        loop {
            if self.eat(&TokenKind::RBrace).is_some() {
                break;
            }
            self.decl(&mut prog, &mut init_seen)?;
        }
        if self.peek().kind != TokenKind::Eof {
            return Err(DslError::new(self.peek().span, DslErrorKind::TrailingInput));
        }
        Ok(prog)
    }

    fn decl(&mut self, prog: &mut Program, init_seen: &mut bool) -> Result<(), DslError> {
        const WHAT: &str = "a declaration (`agents`, `horizon`, `action`, `state`, `init`, \
                            `moves`, `transitions`, or `adversary`) or `}`";
        let kw = match &self.peek().kind {
            TokenKind::Ident(s) => s.clone(),
            _ => return Err(self.err_here(WHAT)),
        };
        let kw_span = self.peek().span;
        match kw.as_str() {
            "agents" => {
                if !prog.agents.is_empty() {
                    return Err(DslError::new(
                        kw_span,
                        DslErrorKind::DuplicateDecl("agents"),
                    ));
                }
                self.bump();
                prog.agents.push(self.expect_ident("an agent name")?);
                while self.eat(&TokenKind::Comma).is_some() {
                    prog.agents.push(self.expect_ident("an agent name")?);
                }
                self.expect(&TokenKind::Semi, "`;` after the agent list")?;
            }
            "horizon" => {
                if prog.horizon.is_some() {
                    return Err(DslError::new(
                        kw_span,
                        DslErrorKind::DuplicateDecl("horizon"),
                    ));
                }
                self.bump();
                prog.horizon = Some(self.expect_int("an integer")?);
                self.expect(&TokenKind::Semi, "`;` after the horizon")?;
            }
            "action" => {
                self.bump();
                let name = self.expect_ident("an action name")?;
                self.expect(&TokenKind::Eq, "`=` between the action name and its id")?;
                let id = self.expect_int("a numeric action id")?;
                self.expect(&TokenKind::Semi, "`;` after the action declaration")?;
                prog.actions.push(ActionDecl { name, id });
            }
            "state" => {
                self.bump();
                let name = self.expect_ident("a state name")?;
                self.expect(&TokenKind::Eq, "`=` between the state name and its tuple")?;
                self.expect(&TokenKind::LParen, "`(` opening the state tuple")?;
                let env = self.expect_int("the environment component")?.value;
                let mut locals = Vec::new();
                while self.eat(&TokenKind::Comma).is_some() {
                    locals.push(self.expect_int("a local-data component")?.value);
                }
                self.expect(&TokenKind::RParen, "`)` closing the state tuple")?;
                let fail = self.eat_keyword("fail").is_some();
                self.expect(&TokenKind::Semi, "`;` after the state declaration")?;
                prog.states.push(StateDecl {
                    name,
                    env,
                    locals,
                    fail,
                });
            }
            "init" => {
                if *init_seen {
                    return Err(DslError::new(kw_span, DslErrorKind::DuplicateDecl("init")));
                }
                *init_seen = true;
                self.bump();
                self.expect(&TokenKind::LBrace, "`{` opening the init distribution")?;
                loop {
                    if self.eat(&TokenKind::RBrace).is_some() {
                        break;
                    }
                    let weight = self.weight()?;
                    self.expect(&TokenKind::Colon, "`:` between a weight and its state")?;
                    let state = self.expect_ident("an initial state name")?;
                    self.expect(&TokenKind::Semi, "`;` after the init arm")?;
                    prog.init.push(InitArm { weight, state });
                }
            }
            "moves" => {
                self.bump();
                let agent = self.expect_ident("an agent name after `moves`")?;
                self.expect(&TokenKind::LBrace, "`{` opening the moves block")?;
                let mut rules = Vec::new();
                loop {
                    if self.eat(&TokenKind::RBrace).is_some() {
                        break;
                    }
                    self.expect_keyword("at", "`at` starting a move rule, or `}`")?;
                    self.expect(&TokenKind::LParen, "`(` after `at`")?;
                    let local = self.expect_int("the agent's local data")?;
                    self.expect(&TokenKind::Comma, "`,` between local data and time")?;
                    let time = self.expect_int("a time")?;
                    self.expect(&TokenKind::RParen, "`)` closing the rule key")?;
                    self.expect(&TokenKind::Arrow, "`->` before the move distribution")?;
                    let dist = self.move_dist()?;
                    self.expect(&TokenKind::Semi, "`;` after the move rule")?;
                    rules.push(MoveRule { local, time, dist });
                }
                prog.moves.push(MoveBlock { agent, rules });
            }
            "transitions" => {
                self.bump();
                self.expect(&TokenKind::LBrace, "`{` opening the transitions block")?;
                loop {
                    if self.eat(&TokenKind::RBrace).is_some() {
                        break;
                    }
                    prog.transitions.push(self.trans_rule()?);
                }
            }
            "adversary" => {
                self.bump();
                let name = self.expect_ident("an adversary name")?;
                self.expect(&TokenKind::LBrace, "`{` opening the adversary block")?;
                let mut rules = Vec::new();
                loop {
                    if self.eat(&TokenKind::RBrace).is_some() {
                        break;
                    }
                    rules.push(self.trans_rule()?);
                }
                prog.adversaries.push(AdversaryDecl { name, rules });
            }
            _ => return Err(self.err_here(WHAT)),
        }
        Ok(())
    }

    fn weight(&mut self) -> Result<Spanned<Weight>, DslError> {
        let num = self.expect_int("a weight")?;
        if self.eat(&TokenKind::Slash).is_some() {
            let den = self.expect_int("a weight denominator")?;
            let span = num.span.to(den.span);
            if den.value == 0 {
                return Err(DslError::new(span, DslErrorKind::ZeroDenominator));
            }
            Ok(Spanned::new(
                Weight {
                    num: num.value,
                    den: den.value,
                },
                span,
            ))
        } else {
            Ok(Spanned::new(
                Weight {
                    num: num.value,
                    den: 1,
                },
                num.span,
            ))
        }
    }

    fn move_act(&mut self) -> Result<Spanned<MoveAction>, DslError> {
        if let Some(span) = self.eat_keyword("skip") {
            return Ok(Spanned::new(MoveAction::Skip, span));
        }
        let name = self.expect_ident("an action name or `skip`")?;
        Ok(Spanned::new(MoveAction::Named(name.value), name.span))
    }

    fn move_dist(&mut self) -> Result<Vec<MoveArm>, DslError> {
        if self.eat(&TokenKind::LBrace).is_some() {
            let mut arms = Vec::new();
            loop {
                if self.eat(&TokenKind::RBrace).is_some() {
                    if arms.is_empty() {
                        return Err(self.err_here("at least one `WEIGHT: action;` arm"));
                    }
                    break;
                }
                let weight = self.weight()?;
                self.expect(&TokenKind::Colon, "`:` between a weight and its action")?;
                let action = self.move_act()?;
                self.expect(&TokenKind::Semi, "`;` after the distribution arm")?;
                arms.push(MoveArm { weight, action });
            }
            Ok(arms)
        } else {
            let action = self.move_act()?;
            let span = action.span;
            Ok(vec![MoveArm {
                weight: Spanned::new(Weight::ONE, span),
                action,
            }])
        }
    }

    fn pattern(&mut self) -> Result<Spanned<GuardPat>, DslError> {
        if let Some(span) = self.eat(&TokenKind::Underscore) {
            return Ok(Spanned::new(GuardPat::Any, span));
        }
        if let Some(span) = self.eat_keyword("skip") {
            return Ok(Spanned::new(GuardPat::Skip, span));
        }
        match self.expect_ident("a move pattern (`_`, `skip`, or an action name)") {
            Ok(name) => Ok(Spanned::new(GuardPat::Named(name.value), name.span)),
            Err(e) => Err(e),
        }
    }

    fn trans_rule(&mut self) -> Result<TransRule, DslError> {
        self.expect_keyword("from", "`from` starting a transition rule, or `}`")?;
        let from = self.expect_ident("a source state name")?;
        self.expect_keyword("at", "`at` before the rule's time")?;
        let time = self.expect_int("a time")?;
        let guard = if self.eat_keyword("when").is_some() {
            self.expect(&TokenKind::LBracket, "`[` opening the guard")?;
            let mut pats = vec![self.pattern()?];
            while self.eat(&TokenKind::Comma).is_some() {
                pats.push(self.pattern()?);
            }
            self.expect(&TokenKind::RBracket, "`]` closing the guard")?;
            Some(pats)
        } else {
            None
        };
        self.expect(&TokenKind::Arrow, "`->` before the successor distribution")?;
        let dist = if self.eat(&TokenKind::LBrace).is_some() {
            let mut arms = Vec::new();
            loop {
                if self.eat(&TokenKind::RBrace).is_some() {
                    if arms.is_empty() {
                        return Err(self.err_here("at least one `WEIGHT: state;` arm"));
                    }
                    break;
                }
                let weight = self.weight()?;
                self.expect(&TokenKind::Colon, "`:` between a weight and its state")?;
                let state = self.expect_ident("a successor state name")?;
                self.expect(&TokenKind::Semi, "`;` after the distribution arm")?;
                arms.push(TransArm { weight, state });
            }
            arms
        } else {
            let state = self.expect_ident("a successor state name")?;
            let span = state.span;
            vec![TransArm {
                weight: Spanned::new(Weight::ONE, span),
                state,
            }]
        };
        self.expect(&TokenKind::Semi, "`;` after the transition rule")?;
        Ok(TransRule {
            from,
            time,
            guard,
            dist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Weight;

    const GOOD: &str = "
        protocol demo {
            agents a, b;
            horizon 2;
            action go = 3;
            state s0 = (0, 0, 0);
            state s1 = (1, 1, 0) fail;
            init { 2/3: s0; 1/3: s1; }
            moves a {
                at (0, 0) -> { 1/2: go; 1/2: skip; };
                at (1, 1) -> go;
            }
            transitions {
                from s0 at 0 when [go, _] -> { 3/4: s1; 1/4: s0; };
                from s0 at 0 -> s0;
            }
            adversary crash {
                from s0 at 0 -> s1;
            }
        }";

    #[test]
    fn parses_every_construct() {
        let p = parse(GOOD).unwrap();
        assert_eq!(p.name.value, "demo");
        assert_eq!(p.agents.len(), 2);
        assert_eq!(p.horizon.as_ref().unwrap().value, 2);
        assert_eq!(p.actions[0].id.value, 3);
        assert!(p.states[1].fail && !p.states[0].fail);
        assert_eq!(p.init.len(), 2);
        assert_eq!(p.moves[0].rules.len(), 2);
        assert_eq!(p.moves[0].rules[1].dist[0].weight.value, Weight::ONE);
        assert_eq!(p.transitions.len(), 2);
        assert!(p.transitions[0].guard.is_some() && p.transitions[1].guard.is_none());
        assert_eq!(p.adversaries[0].name.value, "crash");
    }

    #[test]
    fn display_round_trips_structurally() {
        let p = parse(GOOD).unwrap();
        let printed = p.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(p, reparsed, "pretty-printed program:\n{printed}");
        // And printing is a fixpoint: printing the reparse prints the same.
        assert_eq!(printed, reparsed.to_string());
    }

    /// The satellite error-quality table: ~20 malformed programs, each
    /// asserting the exact [`DslErrorKind`] and the exact 1-based
    /// line/column the diagnostic points at. All inputs are single-line so
    /// the column is easy to count; the full parse → validate pipeline
    /// runs so lexical, syntactic, and semantic diagnostics are all
    /// covered.
    #[test]
    fn malformed_program_table() {
        use DslErrorKind as K;
        let cases: Vec<(&str, DslErrorKind, u32, u32)> = vec![
            // --- lexical ---
            ("protocol p @{ }", K::UnexpectedChar('@'), 1, 12),
            (
                "protocol p { horizon 18446744073709551616; }",
                K::NumberTooLarge,
                1,
                22,
            ),
            // --- syntactic ---
            (
                "protocol p { horizon; }",
                K::Expected {
                    what: "an integer",
                    found: "`;`".into(),
                },
                1,
                21,
            ),
            (
                "protocol p { horizon 1; } extra",
                K::TrailingInput,
                1,
                27,
            ),
            (
                "protocol p { bogus x; }",
                K::Expected {
                    what: "a declaration (`agents`, `horizon`, `action`, `state`, `init`, \
                           `moves`, `transitions`, or `adversary`) or `}`",
                    found: "`bogus`".into(),
                },
                1,
                14,
            ),
            (
                "protocol p { state s = (0 0); }",
                K::Expected {
                    what: "`)` closing the state tuple",
                    found: "integer 0".into(),
                },
                1,
                27,
            ),
            (
                "protocol p { init { 1/0: s; } }",
                K::ZeroDenominator,
                1,
                21,
            ),
            (
                "protocol p { moves a { at (0, 0) -> { }; } }",
                K::Expected {
                    what: "at least one `WEIGHT: action;` arm",
                    found: "`;`".into(),
                },
                1,
                40,
            ),
            (
                "protocol p { transitions { from s at 0 when [] -> s; } }",
                K::Expected {
                    what: "a move pattern (`_`, `skip`, or an action name)",
                    found: "`]`".into(),
                },
                1,
                46,
            ),
            ("protocol p { agents a; agents b; }", K::DuplicateDecl("agents"), 1, 24),
            ("protocol p { init { } init { } }", K::DuplicateDecl("init"), 1, 23),
            // --- validation: names and declarations ---
            (
                "protocol p { agents a, a; horizon 1; state s = (0, 0); init { 1: s; } }",
                K::DuplicateAgent("a".into()),
                1,
                24,
            ),
            (
                "protocol p { agents a; state s = (0, 0); init { 1: s; } }",
                K::MissingDecl("horizon"),
                1,
                10,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); }",
                K::MissingDecl("init"),
                1,
                10,
            ),
            (
                "protocol p { agents a; horizon 1; state skip = (0, 0); init { 1: skip; } }",
                K::ReservedName("skip".into()),
                1,
                41,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); state s = (1, 0); init { 1: s; } }",
                K::DuplicateState("s".into()),
                1,
                59,
            ),
            (
                "protocol p { agents a; horizon 1; action x = 1; action y = 1; \
                 state s = (0, 0); init { 1: s; } }",
                K::DuplicateActionId(1),
                1,
                60,
            ),
            // --- validation: arity, references, weights, times ---
            (
                "protocol p { agents a, b; horizon 1; state s = (0, 7); init { 1: s; } }",
                K::ArityMismatch {
                    expected: 2,
                    found: 1,
                },
                1,
                44,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); init { 1: ghost; } }",
                K::UnknownState("ghost".into()),
                1,
                63,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); \
                 init { 1/2: s; 1/3: s; } }",
                K::WeightSum("5/6".into()),
                1,
                60,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); init { 0: s; 1: s; } }",
                K::ZeroWeight,
                1,
                60,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); init { 1: s; } \
                 moves a { at (0, 2) -> skip; } }",
                K::TimeBeyondHorizon { time: 2, horizon: 1 },
                1,
                85,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); init { 1: s; } \
                 moves a { at (0, 0) -> zap; } }",
                K::UnknownAction("zap".into()),
                1,
                91,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); init { 1: s; } \
                 moves a { at (0, 0) -> skip; at (0, 0) -> skip; } }",
                K::DuplicateRule("agent `a` at (0, 0)".into()),
                1,
                101,
            ),
            (
                "protocol p { agents a; horizon 1; state s = (0, 0); init { 1: s; } \
                 transitions { from s at 0 -> s; from s at 0 -> s; } }",
                K::DuplicateRule("`from s at 0`".into()),
                1,
                105,
            ),
            (
                "protocol p { agents a; horizon 1; action x = 0; state s = (0, 0); \
                 init { 1: s; } transitions { from s at 0 when [x, x] -> s; } }",
                K::ArityMismatch {
                    expected: 1,
                    found: 2,
                },
                1,
                114,
            ),
        ];
        assert!(cases.len() >= 20, "the table must stay ~20 cases strong");
        for (src, kind, line, col) in cases {
            let err = parse(src)
                .and_then(|p| p.validate().map(|()| p))
                .expect_err(&format!("program must be rejected: {src}"));
            assert_eq!(err.kind, kind, "wrong diagnostic for: {src}\ngot: {err}");
            assert_eq!(
                (err.span.line, err.span.col),
                (line, col),
                "wrong position for: {src}\ngot: {err}"
            );
        }
    }
}
