//! Unsigned arbitrary-precision integers.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use core::str::FromStr;

use crate::parse::ParseNumberError;

/// An unsigned arbitrary-precision integer.
///
/// The value is stored as little-endian base-2³² limbs with no trailing zero
/// limbs; the empty limb vector represents zero. All arithmetic is exact.
///
/// # Examples
///
/// ```
/// use pak_num::BigUint;
///
/// let a = BigUint::from(10u64).pow(30);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), format!("1{}", "0".repeat(60)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalised: `limbs.last() != Some(&0)`.
    limbs: Vec<u32>,
}

const LIMB_BITS: u32 = 32;

impl BigUint {
    /// The value `0`.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert!(BigUint::zero().is_zero());
    /// ```
    #[must_use]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert_eq!(BigUint::one(), BigUint::from(1u32));
    /// ```
    #[must_use]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a value from little-endian limbs, normalising trailing zeros.
    #[must_use]
    pub(crate) fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of significant bits (0 for the value zero).
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert_eq!(BigUint::from(0u32).bits(), 0);
    /// assert_eq!(BigUint::from(255u32).bits(), 8);
    /// assert_eq!(BigUint::from(256u32).bits(), 9);
    /// ```
    #[must_use]
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * u64::from(LIMB_BITS)
                    + u64::from(LIMB_BITS - top.leading_zeros())
            }
        }
    }

    /// Returns the value as `u64` if it fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Returns the value as `u128` if it fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut out: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            out |= u128::from(l) << (32 * i);
        }
        Some(out)
    }

    /// Lossy conversion to `f64`.
    ///
    /// Values larger than `f64::MAX` convert to `f64::INFINITY`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            // Fits exactly in the integer range of the conversion.
            #[allow(clippy::cast_precision_loss)]
            return self.to_u64().expect("bits <= 64") as f64;
        }
        // Take the top 64 bits as the mantissa and scale by the remaining exponent.
        let shift = bits - 64;
        let top = (self >> shift).to_u64().expect("shifted to 64 bits");
        #[allow(clippy::cast_precision_loss)]
        let mantissa = top as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
        {
            mantissa * 2f64.powi(shift.min(u64::from(u32::MAX)) as i32)
        }
    }

    /// Compares two values.
    fn cmp_limbs(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Checked subtraction: returns `None` if `other > self`.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// let a = BigUint::from(5u32);
    /// let b = BigUint::from(7u32);
    /// assert!(a.checked_sub(&b).is_none());
    /// assert_eq!(b.checked_sub(&a), Some(BigUint::from(2u32)));
    /// ```
    #[must_use]
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if Self::cmp_limbs(&self.limbs, &other.limbs) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let v = i64::from(self.limbs[i]) - i64::from(rhs) - borrow;
            if v < 0 {
                out.push((v + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(v as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(out))
    }

    /// Division with remainder.
    ///
    /// Returns `(quotient, remainder)` with `remainder < divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// let (q, r) = BigUint::from(1_000_007u64).div_rem(&BigUint::from(1000u32));
    /// assert_eq!(q, BigUint::from(1000u32));
    /// assert_eq!(r, BigUint::from(7u32));
    /// ```
    #[must_use]
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        match Self::cmp_limbs(&self.limbs, &divisor.limbs) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, Self::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Short division by a single limb.
    fn div_rem_limb(&self, divisor: u32) -> (Self, u32) {
        debug_assert!(divisor != 0);
        let d = u64::from(divisor);
        let mut rem: u64 = 0;
        let mut out = vec![0u32; self.limbs.len()];
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 32) | u64::from(limb);
            out[i] = (cur / d) as u32;
            rem = cur % d;
        }
        (Self::from_limbs(out), rem as u32)
    }

    /// Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &Self) -> (Self, Self) {
        // Normalise so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("multi-limb").leading_zeros();
        let u = self << u64::from(shift);
        let v = divisor << u64::from(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un: Vec<u32> = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let v_top = u64::from(vn[n - 1]);
        let v_next = u64::from(vn[n - 2]);

        let mut q = vec![0u32; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂.
            let num = (u64::from(un[j + n]) << 32) | u64::from(un[j + n - 1]);
            let mut qhat = num / v_top;
            let mut rhat = num % v_top;
            while qhat >= (1u64 << 32)
                || qhat * v_next > ((rhat << 32) | u64::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += v_top;
                if rhat >= (1u64 << 32) {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * u64::from(vn[i]) + carry;
                carry = p >> 32;
                let t = i64::from(un[i + j]) - borrow - i64::from((p & 0xFFFF_FFFF) as u32);
                if t < 0 {
                    un[i + j] = (t + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    un[i + j] = t as u32;
                    borrow = 0;
                }
            }
            let t = i64::from(un[j + n]) - borrow - i64::from(carry as u32) - ((carry >> 32) as i64);
            if t < 0 {
                // q̂ was one too large: add back.
                un[j + n] = (t + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut carry2: u64 = 0;
                for i in 0..n {
                    let s = u64::from(un[i + j]) + u64::from(vn[i]) + carry2;
                    un[i + j] = (s & 0xFFFF_FFFF) as u32;
                    carry2 = s >> 32;
                }
                un[j + n] = un[j + n].wrapping_add(carry2 as u32);
            } else {
                un[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }

        let quotient = Self::from_limbs(q);
        let rem = Self::from_limbs(un[..n].to_vec()) >> u64::from(shift);
        (quotient, rem)
    }

    /// Greatest common divisor (Euclid's algorithm).
    ///
    /// `gcd(0, 0) == 0` by convention.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// let g = BigUint::from(48u32).gcd(&BigUint::from(36u32));
    /// assert_eq!(g, BigUint::from(12u32));
    /// ```
    #[must_use]
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raises the value to the power `exp` by binary exponentiation.
    ///
    /// `0.pow(0) == 1` by convention.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert_eq!(BigUint::from(2u32).pow(10), BigUint::from(1024u32));
    /// ```
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Returns `true` if the value is even.
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

macro_rules! impl_from_small {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> Self {
                BigUint::from(u128::from(v))
            }
        }
    )*};
}
impl_from_small!(u8, u16, u32, u64);

impl From<u128> for BigUint {
    fn from(mut v: u128) -> Self {
        let mut limbs = Vec::new();
        while v != 0 {
            limbs.push((v & 0xFFFF_FFFF) as u32);
            v >>= 32;
        }
        BigUint { limbs }
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u128)
    }
}

impl TryFrom<&BigUint> for u64 {
    type Error = ParseNumberError;
    fn try_from(v: &BigUint) -> Result<Self, Self::Error> {
        v.to_u64().ok_or(ParseNumberError::Overflow)
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        Self::cmp_limbs(&self.limbs, &other.limbs)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        #[allow(clippy::needless_range_loop)] // indexing two slices of different lengths
        for i in 0..long.len() {
            let s = u64::from(long[i]) + u64::from(short.get(i).copied().unwrap_or(0)) + carry;
            out.push((s & 0xFFFF_FFFF) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics if `rhs > self` (`BigUint` cannot represent negative values).
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = u64::from(out[i + j]) + u64::from(a) * u64::from(b) + carry;
                out[i + j] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = u64::from(out[k]) + carry;
                out[k] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: u64) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / u64::from(LIMB_BITS)) as usize;
        let bit_shift = (shift % u64::from(LIMB_BITS)) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: u64) -> BigUint {
        let limb_shift = (shift / u64::from(LIMB_BITS)) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (shift % u64::from(LIMB_BITS)) as u32;
        let mut out: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry: u32 = 0;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (LIMB_BITS - bit_shift);
                *l = new;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<u64> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: u64) -> BigUint {
        &self << shift
    }
}

impl Shr<u64> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: u64) -> BigUint {
        &self >> shift
    }
}

macro_rules! forward_owned_binop {
    ($($op:ident :: $method:ident),*) => {$(
        impl $op for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$method(&rhs)
            }
        }
        impl $op<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$method(rhs)
            }
        }
        impl $op<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$method(&rhs)
            }
        }
    )*};
}
forward_owned_binop!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

// ---------------------------------------------------------------------------
// Formatting and parsing
// ---------------------------------------------------------------------------

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeatedly divide by 10^9 (the largest power of ten fitting a limb).
        let mut chunks: Vec<u32> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl FromStr for BigUint {
    type Err = ParseNumberError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumberError::Empty);
        }
        if !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNumberError::InvalidDigit);
        }
        let mut out = BigUint::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 9).min(bytes.len());
            let chunk = &s[i..end];
            let v: u32 = chunk
                .parse()
                .map_err(|_| ParseNumberError::InvalidDigit)?;
            let scale = BigUint::from(10u32).pow((end - i) as u32);
            out = &out * &scale + BigUint::from(v);
            i = end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(&b(42) + &BigUint::zero(), b(42));
        assert_eq!(&b(42) * &BigUint::one(), b(42));
        assert_eq!(&b(42) * &BigUint::zero(), BigUint::zero());
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = b(u128::from(u64::MAX));
        let sum = &a + &BigUint::one();
        assert_eq!(sum, b(u128::from(u64::MAX) + 1));
    }

    #[test]
    fn subtraction_exact_and_underflow() {
        assert_eq!(&b(1000) - &b(999), b(1));
        assert_eq!(b(5).checked_sub(&b(5)), Some(BigUint::zero()));
        assert!(b(5).checked_sub(&b(6)).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_panics_on_underflow() {
        let _ = &b(1) - &b(2);
    }

    #[test]
    fn multiplication_cross_limb() {
        let a = b(0xFFFF_FFFF_FFFF_FFFF);
        let c = &a * &a;
        assert_eq!(c, b(0xFFFF_FFFF_FFFF_FFFF * 0xFFFF_FFFF_FFFF_FFFFu128));
    }

    #[test]
    fn division_single_limb() {
        let (q, r) = b(1_000_000_007).div_rem(&b(13));
        assert_eq!(q, b(1_000_000_007 / 13));
        assert_eq!(r, b(1_000_000_007 % 13));
    }

    #[test]
    fn division_multi_limb_knuth() {
        let a = BigUint::from(10u32).pow(40);
        let d = BigUint::from(10u32).pow(17) + BigUint::from(7u32);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
    }

    #[test]
    fn division_knuth_addback_case() {
        // Construct a case exercising the rare "add back" step: the classic
        // example uses divisor with high limb pattern 0x8000....
        let u = (&(BigUint::from(1u32) << 96u64) - &BigUint::one()) << 32u64;
        let v = (BigUint::from(1u32) << 96u64) - BigUint::one();
        let (q, r) = u.div_rem(&v);
        assert_eq!(&q * &v + &r, u);
        assert!(r < v);
    }

    #[test]
    fn division_by_zero_panics() {
        let r = std::panic::catch_unwind(|| b(5).div_rem(&BigUint::zero()));
        assert!(r.is_err());
    }

    #[test]
    fn shifts_roundtrip() {
        let a = b(0x1234_5678_9ABC_DEF0);
        assert_eq!(&(&a << 100u64) >> 100u64, a);
        assert_eq!(&a >> 200u64, BigUint::zero());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(b(48).gcd(&b(36)), b(12));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(BigUint::zero().gcd(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn pow_and_bits() {
        assert_eq!(BigUint::from(2u32).pow(100).bits(), 101);
        assert_eq!(BigUint::from(3u32).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = ["0", "1", "999999999", "1000000000", "123456789012345678901234567890"];
        for c in cases {
            let v: BigUint = c.parse().unwrap();
            assert_eq!(v.to_string(), c);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a4".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
    }

    #[test]
    fn ordering_spans_limb_counts() {
        assert!(b(u128::from(u64::MAX)) > b(1));
        assert!(b(1) < (BigUint::from(1u32) << 64u64));
        assert_eq!(b(77).cmp(&b(77)), Ordering::Equal);
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(b(0).to_f64(), 0.0);
        assert_eq!(b(1u128 << 70).to_f64(), 2f64.powi(70));
        let big = BigUint::from(10u32).pow(30);
        let rel = (big.to_f64() - 1e30).abs() / 1e30;
        assert!(rel < 1e-12);
    }

    #[test]
    fn even_odd() {
        assert!(b(0).is_even());
        assert!(b(2).is_even());
        assert!(!b(3).is_even());
    }
}
