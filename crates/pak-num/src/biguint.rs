//! Unsigned arbitrary-precision integers with a small-value fast path.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use core::str::FromStr;

use crate::fixed::{self, FixedUint, FIXED_LIMBS};
use crate::parse::ParseNumberError;

/// An unsigned arbitrary-precision integer.
///
/// # Representation
///
/// The value is stored in one of three variants — a lattice of tiers
/// ordered by magnitude:
///
/// * **Inline** — any value that fits in a `u64` is held directly in the
///   enum, with no heap allocation. All arithmetic between inline values
///   runs on machine words (widening to `u128` where needed) and never
///   touches the allocator.
/// * **Fixed** — values in `(u64::MAX, 2^FIXED_BITS)` are held in a
///   stack-resident `[u64; 3]` little-endian limb array
///   ([`BigUint::FIXED_BITS`] is `192`). Additions, subtractions,
///   multiplications, divisions, and gcds between inline/fixed operands
///   stay entirely on the stack; only results crossing `2^FIXED_BITS`
///   escalate.
/// * **Heap** — values of at least `2^FIXED_BITS` are stored as
///   little-endian base-2³² limbs with no trailing zero limbs (so the limb
///   vector always has at least seven limbs).
///
/// The representation is **canonical**: a given value has exactly one
/// representation, so the derived `PartialEq`/`Hash` are value equality,
/// `Display` prints identical digits whichever tier a value came from, and
/// every result that shrinks across a tier boundary is normalised back
/// down (heap → fixed → inline) by the internal constructors. All
/// arithmetic is exact.
///
/// # Panics
///
/// `Sub`/`SubAssign` panic on underflow (`rhs > self`), since an unsigned
/// integer cannot represent the difference; use [`BigUint::checked_sub`]
/// when the ordering of the operands is not known. No other operator
/// panics, except division by zero.
///
/// # Examples
///
/// ```
/// use pak_num::BigUint;
///
/// let a = BigUint::from(10u64).pow(30);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), format!("1{}", "0".repeat(60)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    repr: Repr,
}

/// The three storage variants. Invariants: `Fixed` holds only values
/// strictly greater than `u64::MAX` (so its significant-limb count is
/// always ≥ 2), `Heap` holds only values of at least `2^(64·FIXED_LIMBS)`,
/// as normalised little-endian limbs (≥ `2·FIXED_LIMBS + 1` limbs, no
/// trailing zeros); everything word-sized is `Inline`. The variants are
/// therefore strictly ordered by value range, which `Ord` exploits.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Inline(u64),
    Fixed(FixedUint<FIXED_LIMBS>),
    Heap(Vec<u32>),
}

const LIMB_BITS: u32 = 32;

/// A stack-resident view of a value's limbs: inline and fixed values
/// materialise their limbs in a local buffer, heap values borrow their
/// vector. This is what lets the mixed-representation code paths share one
/// set of limb algorithms without allocating.
struct LimbView<'a> {
    buf: [u32; 2 * FIXED_LIMBS],
    len: usize,
    heap: Option<&'a [u32]>,
}

impl LimbView<'_> {
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self.heap {
            Some(h) => h,
            None => &self.buf[..self.len],
        }
    }
}

impl BigUint {
    /// The value `0`.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert!(BigUint::zero().is_zero());
    /// ```
    #[must_use]
    #[inline]
    pub fn zero() -> Self {
        BigUint {
            repr: Repr::Inline(0),
        }
    }

    /// The value `1`.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert_eq!(BigUint::one(), BigUint::from(1u32));
    /// ```
    #[must_use]
    #[inline]
    pub fn one() -> Self {
        BigUint {
            repr: Repr::Inline(1),
        }
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        BigUint {
            repr: Repr::Inline(v),
        }
    }

    fn from_u128_value(v: u128) -> Self {
        match u64::try_from(v) {
            Ok(w) => Self::from_u64(w),
            Err(_) => BigUint {
                repr: Repr::Fixed(FixedUint::from_u128(v)),
            },
        }
    }

    /// Creates a value from little-endian limbs, normalising trailing
    /// zeros and dropping the result into the lowest tier it fits:
    /// inline for word-sized values, fixed up to `2 × FIXED_LIMBS` limbs,
    /// heap beyond.
    #[must_use]
    pub(crate) fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Self::zero(),
            1 => Self::from_u64(u64::from(limbs[0])),
            2 => Self::from_u64(u64::from(limbs[0]) | (u64::from(limbs[1]) << 32)),
            n if n <= 2 * FIXED_LIMBS => {
                let mut words = [0u64; FIXED_LIMBS];
                for (i, chunk) in limbs.chunks(2).enumerate() {
                    let hi = chunk.get(1).map_or(0, |&h| u64::from(h));
                    words[i] = u64::from(chunk[0]) | (hi << 32);
                }
                BigUint {
                    repr: Repr::Fixed(FixedUint::new(words)),
                }
            }
            _ => BigUint {
                repr: Repr::Heap(limbs),
            },
        }
    }

    /// Creates a value from `FIXED_LIMBS` little-endian 64-bit words,
    /// canonicalising word-sized results down to the inline tier.
    #[inline]
    pub(crate) fn from_words(words: [u64; FIXED_LIMBS]) -> Self {
        match fixed::sig_words(&words) {
            0 => Self::zero(),
            1 => Self::from_u64(words[0]),
            _ => BigUint {
                repr: Repr::Fixed(FixedUint::new(words)),
            },
        }
    }

    /// Canonicalises a wide little-endian 64-bit word buffer (at most
    /// `2 × FIXED_LIMBS` words, e.g. a full fixed-tier product): inline if
    /// word-sized, fixed if it fits `FIXED_LIMBS` words, heap otherwise.
    fn from_wide_words(words: &[u64]) -> Self {
        let sig = fixed::sig_words(words);
        if sig <= FIXED_LIMBS {
            let mut w = [0u64; FIXED_LIMBS];
            w[..sig].copy_from_slice(&words[..sig]);
            return Self::from_words(w);
        }
        let mut limbs = Vec::with_capacity(sig * 2);
        for &w in &words[..sig] {
            limbs.push((w & 0xFFFF_FFFF) as u32);
            limbs.push((w >> 32) as u32);
        }
        Self::from_limbs(limbs)
    }

    /// The value as zero-padded fixed-tier words, unless it is
    /// heap-resident.
    #[inline]
    fn to_fixed_words(&self) -> Option<[u64; FIXED_LIMBS]> {
        match &self.repr {
            Repr::Inline(v) => {
                let mut w = [0u64; FIXED_LIMBS];
                w[0] = *v;
                Some(w)
            }
            Repr::Fixed(fx) => Some(*fx.limbs()),
            Repr::Heap(_) => None,
        }
    }

    /// Width of the fixed stack tier in bits (`64 × FIXED_LIMBS`).
    ///
    /// Values in `(u64::MAX, 2^FIXED_BITS)` live in the stack-resident
    /// fixed tier; values `≥ 2^FIXED_BITS` are heap-resident. Exposed so
    /// representation-boundary tests can target the lattice edges.
    pub const FIXED_BITS: u64 = 64 * FIXED_LIMBS as u64;

    /// Returns `true` if the value is held inline (fits in a `u64`).
    ///
    /// Exposed so property tests can assert the representation is
    /// canonical; not needed for ordinary arithmetic.
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Returns `true` if the value is held in the fixed stack tier
    /// (greater than `u64::MAX`, less than `2^FIXED_BITS`).
    ///
    /// Exposed for representation-canonicality tests, like
    /// [`BigUint::is_inline`].
    #[must_use]
    pub fn is_fixed(&self) -> bool {
        matches!(self.repr, Repr::Fixed(_))
    }

    /// Returns `true` if the value is heap-resident (at least
    /// `2^FIXED_BITS`).
    ///
    /// Exposed for representation-canonicality tests, like
    /// [`BigUint::is_inline`].
    #[must_use]
    pub fn is_heap(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// The limbs of the value as a borrowable stack view.
    #[inline]
    fn view(&self) -> LimbView<'_> {
        match &self.repr {
            Repr::Inline(v) => {
                let lo = (*v & 0xFFFF_FFFF) as u32;
                let hi = (*v >> 32) as u32;
                let len = if hi != 0 { 2 } else { usize::from(lo != 0) };
                let mut buf = [0u32; 2 * FIXED_LIMBS];
                buf[0] = lo;
                buf[1] = hi;
                LimbView {
                    buf,
                    len,
                    heap: None,
                }
            }
            Repr::Fixed(fx) => {
                let mut buf = [0u32; 2 * FIXED_LIMBS];
                for (i, &w) in fx.limbs().iter().enumerate() {
                    buf[2 * i] = (w & 0xFFFF_FFFF) as u32;
                    buf[2 * i + 1] = (w >> 32) as u32;
                }
                let mut len = 2 * FIXED_LIMBS;
                while len > 0 && buf[len - 1] == 0 {
                    len -= 1;
                }
                LimbView {
                    buf,
                    len,
                    heap: None,
                }
            }
            Repr::Heap(limbs) => LimbView {
                buf: [0; 2 * FIXED_LIMBS],
                len: limbs.len(),
                heap: Some(limbs),
            },
        }
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Inline(0))
    }

    /// Returns `true` if the value is one.
    #[must_use]
    #[inline]
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Inline(1))
    }

    /// Number of significant bits (0 for the value zero).
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert_eq!(BigUint::from(0u32).bits(), 0);
    /// assert_eq!(BigUint::from(255u32).bits(), 8);
    /// assert_eq!(BigUint::from(256u32).bits(), 9);
    /// ```
    #[must_use]
    #[inline]
    pub fn bits(&self) -> u64 {
        match &self.repr {
            Repr::Inline(v) => u64::from(64 - v.leading_zeros()),
            Repr::Fixed(fx) => fx.bits(),
            Repr::Heap(limbs) => {
                let top = *limbs.last().expect("heap repr is non-empty");
                (limbs.len() as u64 - 1) * u64::from(LIMB_BITS)
                    + u64::from(LIMB_BITS - top.leading_zeros())
            }
        }
    }

    /// Returns the value as `u64` if it fits.
    #[must_use]
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Inline(v) => Some(*v),
            Repr::Fixed(_) | Repr::Heap(_) => None,
        }
    }

    /// Returns the value as `u128` if it fits.
    #[must_use]
    #[inline]
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Inline(v) => Some(u128::from(*v)),
            Repr::Fixed(fx) => fx.to_u128(),
            // Heap values are at least 2^FIXED_BITS > u128::MAX.
            Repr::Heap(_) => None,
        }
    }

    /// Lossy conversion to `f64`, rounded to nearest, ties to even — the
    /// same rounding the hardware applies, so the result is always the
    /// `f64` closest to the exact value.
    ///
    /// Values larger than `f64::MAX` convert to `f64::INFINITY`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if let Repr::Inline(v) = self.repr {
            #[allow(clippy::cast_precision_loss)] // u64→f64 rounds to nearest even
            return v as f64;
        }
        // Wide value (≥ 65 bits): extract the exact top 64 bits plus a
        // sticky bit recording whether anything below them is non-zero,
        // then round that window to f64's 53-bit mantissa, ties to even.
        // Truncating here instead (the old behaviour) biased every
        // conversion toward zero by up to one ulp.
        let bits = self.bits();
        let view = self.view();
        let limbs = view.as_slice();
        let k = limbs.len(); // ≥ 3 by the representation invariant
        let hi3 = (u128::from(limbs[k - 1]) << 64)
            | (u128::from(limbs[k - 2]) << 32)
            | u128::from(limbs[k - 3]);
        // The top three limbs carry `bits − 32·(k − 3)` significant bits,
        // which is in (64, 96]; all but the top 64 feed the sticky bit
        // along with every lower limb.
        #[allow(clippy::cast_possible_truncation)]
        let excess = (bits - 32 * (k as u64 - 3) - 64) as u32; // 1..=32
        #[allow(clippy::cast_possible_truncation)]
        let top = (hi3 >> excess) as u64;
        let sticky = hi3 & ((1u128 << excess) - 1) != 0 || limbs[..k - 3].iter().any(|&l| l != 0);

        let mut mantissa = top >> 11;
        let round = (top >> 10) & 1 == 1;
        let lower = (top & 0x3FF) != 0 || sticky;
        let mut exp = bits - 64 + 11; // value ≈ mantissa × 2^exp
        if round && (lower || mantissa & 1 == 1) {
            mantissa += 1;
            if mantissa == 1u64 << 53 {
                mantissa >>= 1;
                exp += 1;
            }
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
        {
            // Clamp to i32::MAX (not u32::MAX, which would wrap negative);
            // powi saturates to INFINITY well before the clamp engages.
            (mantissa as f64) * 2f64.powi(exp.min(i32::MAX as u64) as i32)
        }
    }

    /// Compares two limb slices.
    fn cmp_limbs(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Checked subtraction: returns `None` if `other > self`.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// let a = BigUint::from(5u32);
    /// let b = BigUint::from(7u32);
    /// assert!(a.checked_sub(&b).is_none());
    /// assert_eq!(b.checked_sub(&a), Some(BigUint::from(2u32)));
    /// ```
    #[must_use]
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a.checked_sub(*b).map(Self::from_u64),
            // A subtrahend from a higher tier strictly exceeds the minuend.
            (Repr::Inline(_), Repr::Fixed(_) | Repr::Heap(_)) | (Repr::Fixed(_), Repr::Heap(_)) => {
                None
            }
            (Repr::Fixed(a), _) => {
                let bw = other.to_fixed_words().expect("rhs is inline or fixed");
                a.checked_sub(&FixedUint::new(bw))
                    .map(|d| Self::from_words(*d.limbs()))
            }
            (Repr::Heap(_), _) => {
                let (av, bv) = (self.view(), other.view());
                Self::sub_slices(av.as_slice(), bv.as_slice())
            }
        }
    }

    /// `a − b` over limb slices, or `None` on underflow.
    fn sub_slices(a: &[u32], b: &[u32]) -> Option<BigUint> {
        if Self::cmp_limbs(a, b) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for (i, &lhs) in a.iter().enumerate() {
            let rhs = b.get(i).copied().unwrap_or(0);
            let v = i64::from(lhs) - i64::from(rhs) - borrow;
            if v < 0 {
                out.push((v + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(v as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(out))
    }

    /// Division with remainder.
    ///
    /// Returns `(quotient, remainder)` with `remainder < divisor`. The
    /// all-inline case divides machine words directly; a heap dividend with
    /// a single-limb divisor takes the short-division path.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// let (q, r) = BigUint::from(1_000_007u64).div_rem(&BigUint::from(1000u32));
    /// assert_eq!(q, BigUint::from(1000u32));
    /// assert_eq!(r, BigUint::from(7u32));
    /// ```
    #[must_use]
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        match (&self.repr, &divisor.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => (Self::from_u64(a / b), Self::from_u64(a % b)),
            // A divisor from a higher tier strictly exceeds the dividend.
            (Repr::Inline(_), Repr::Fixed(_) | Repr::Heap(_)) | (Repr::Fixed(_), Repr::Heap(_)) => {
                (Self::zero(), self.clone())
            }
            (Repr::Fixed(a), Repr::Inline(d)) => {
                let (q, r) = a.div_rem_word(*d);
                (Self::from_words(*q.limbs()), Self::from_u64(r))
            }
            (Repr::Fixed(a), Repr::Fixed(b)) => {
                let (q, r) = a.div_rem(b);
                (Self::from_words(*q.limbs()), Self::from_words(*r.limbs()))
            }
            (Repr::Heap(_), _) => {
                let (uv, dv) = (self.view(), divisor.view());
                let (u, d) = (uv.as_slice(), dv.as_slice());
                match Self::cmp_limbs(u, d) {
                    Ordering::Less => return (Self::zero(), self.clone()),
                    Ordering::Equal => return (Self::one(), Self::zero()),
                    Ordering::Greater => {}
                }
                if d.len() == 1 {
                    let (q, r) = Self::div_rem_limb_slice(u, d[0]);
                    return (q, Self::from_u64(u64::from(r)));
                }
                Self::div_rem_knuth(u, d)
            }
        }
    }

    /// Short division of a limb slice by a single limb.
    fn div_rem_limb_slice(limbs: &[u32], divisor: u32) -> (Self, u32) {
        debug_assert!(divisor != 0);
        let d = u64::from(divisor);
        let mut rem: u64 = 0;
        let mut out = vec![0u32; limbs.len()];
        for (i, &limb) in limbs.iter().enumerate().rev() {
            let cur = (rem << 32) | u64::from(limb);
            out[i] = (cur / d) as u32;
            rem = cur % d;
        }
        (Self::from_limbs(out), rem as u32)
    }

    /// `limbs << shift` as a raw limb vector (`shift < 32`).
    fn shl_small(limbs: &[u32], shift: u32) -> Vec<u32> {
        debug_assert!(shift < LIMB_BITS);
        if shift == 0 {
            return limbs.to_vec();
        }
        let mut out = Vec::with_capacity(limbs.len() + 1);
        let mut carry: u32 = 0;
        for &l in limbs {
            out.push((l << shift) | carry);
            carry = l >> (LIMB_BITS - shift);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(u_limbs: &[u32], v_limbs: &[u32]) -> (Self, Self) {
        // Normalise so the divisor's top limb has its high bit set.
        let shift = v_limbs.last().expect("multi-limb").leading_zeros();
        let mut un = Self::shl_small(u_limbs, shift);
        let vn = Self::shl_small(v_limbs, shift);
        let n = vn.len();
        let m = un.len() - n;

        un.push(0); // extra high limb for the algorithm
        let v_top = u64::from(vn[n - 1]);
        let v_next = u64::from(vn[n - 2]);

        let mut q = vec![0u32; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂.
            let num = (u64::from(un[j + n]) << 32) | u64::from(un[j + n - 1]);
            let mut qhat = num / v_top;
            let mut rhat = num % v_top;
            while qhat >= (1u64 << 32) || qhat * v_next > ((rhat << 32) | u64::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += v_top;
                if rhat >= (1u64 << 32) {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * u64::from(vn[i]) + carry;
                carry = p >> 32;
                let t = i64::from(un[i + j]) - borrow - i64::from((p & 0xFFFF_FFFF) as u32);
                if t < 0 {
                    un[i + j] = (t + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    un[i + j] = t as u32;
                    borrow = 0;
                }
            }
            let t =
                i64::from(un[j + n]) - borrow - i64::from(carry as u32) - ((carry >> 32) as i64);
            if t < 0 {
                // q̂ was one too large: add back.
                un[j + n] = (t + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut carry2: u64 = 0;
                for i in 0..n {
                    let s = u64::from(un[i + j]) + u64::from(vn[i]) + carry2;
                    un[i + j] = (s & 0xFFFF_FFFF) as u32;
                    carry2 = s >> 32;
                }
                un[j + n] = un[j + n].wrapping_add(carry2 as u32);
            } else {
                un[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }

        let quotient = Self::from_limbs(q);
        let rem = Self::from_limbs(un[..n].to_vec()) >> u64::from(shift);
        (quotient, rem)
    }

    /// Greatest common divisor.
    ///
    /// Operands up to two words run the binary gcd entirely on machine
    /// words; larger operands reduce by Euclid steps (division stays on
    /// the stack throughout the fixed tier) until both fit, which takes at
    /// most a few multi-limb divisions.
    ///
    /// `gcd(0, 0) == 0` by convention.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// let g = BigUint::from(48u32).gcd(&BigUint::from(36u32));
    /// assert_eq!(g, BigUint::from(12u32));
    /// ```
    #[must_use]
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        loop {
            if let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) {
                return Self::from_u128_value(fixed::gcd_u128(x, y));
            }
            if b.is_zero() {
                return a;
            }
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
    }

    /// Raises the value to the power `exp` by binary exponentiation.
    ///
    /// `0.pow(0) == 1` by convention.
    ///
    /// ```
    /// use pak_num::BigUint;
    /// assert_eq!(BigUint::from(2u32).pow(10), BigUint::from(1024u32));
    /// ```
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Returns `true` if the value is even.
    #[must_use]
    #[inline]
    pub fn is_even(&self) -> bool {
        match &self.repr {
            Repr::Inline(v) => v & 1 == 0,
            Repr::Fixed(fx) => fx.is_even(),
            Repr::Heap(limbs) => limbs[0] & 1 == 0,
        }
    }

    /// `a + b` over limb slices.
    fn add_slices(a: &[u32], b: &[u32]) -> BigUint {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        #[allow(clippy::needless_range_loop)] // indexing two slices of different lengths
        for i in 0..long.len() {
            let s = u64::from(long[i]) + u64::from(short.get(i).copied().unwrap_or(0)) + carry;
            out.push((s & 0xFFFF_FFFF) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }

    /// `a × b` over limb slices (schoolbook).
    fn mul_slices(a: &[u32], b: &[u32]) -> BigUint {
        if a.is_empty() || b.is_empty() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &y) in b.iter().enumerate() {
                let cur = u64::from(out[i + j]) + u64::from(x) * u64::from(y) + carry;
                out[i + j] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = u64::from(out[k]) + carry;
                out[k] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

macro_rules! impl_from_small {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> Self {
                BigUint::from_u64(u64::from(v))
            }
        }
    )*};
}
impl_from_small!(u8, u16, u32, u64);

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128_value(v)
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl TryFrom<&BigUint> for u64 {
    type Error = ParseNumberError;
    fn try_from(v: &BigUint) -> Result<Self, Self::Error> {
        v.to_u64().ok_or(ParseNumberError::Overflow)
    }
}

impl Default for BigUint {
    fn default() -> Self {
        BigUint::zero()
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a.cmp(b),
            (Repr::Fixed(a), Repr::Fixed(b)) => a.cmp_words(b),
            (Repr::Heap(a), Repr::Heap(b)) => Self::cmp_limbs(a, b),
            // Mixed tiers: the canonical invariant orders the variants'
            // value ranges strictly (Inline < Fixed < Heap).
            (Repr::Inline(_), _) | (Repr::Fixed(_), Repr::Heap(_)) => Ordering::Less,
            (Repr::Heap(_), _) | (Repr::Fixed(_), Repr::Inline(_)) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_add(*b) {
                Some(s) => BigUint::from_u64(s),
                None => BigUint::from_u128_value(u128::from(*a) + u128::from(*b)),
            };
        }
        if let (Some(aw), Some(bw)) = (self.to_fixed_words(), rhs.to_fixed_words()) {
            let (s, carry) = FixedUint::new(aw).overflowing_add(&FixedUint::new(bw));
            if !carry {
                return BigUint::from_words(*s.limbs());
            }
            // The sum crossed 2^FIXED_BITS: widen by the carry word.
            let mut wide = [0u64; FIXED_LIMBS + 1];
            wide[..FIXED_LIMBS].copy_from_slice(s.limbs());
            wide[FIXED_LIMBS] = 1;
            return BigUint::from_wide_words(&wide);
        }
        let (av, bv) = (self.view(), rhs.view());
        BigUint::add_slices(av.as_slice(), bv.as_slice())
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics if `rhs > self` (`BigUint` cannot represent negative values).
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &rhs.repr) {
            return BigUint::from_u128_value(u128::from(*a) * u128::from(*b));
        }
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        if let (Some(aw), Some(bw)) = (self.to_fixed_words(), rhs.to_fixed_words()) {
            let mut wide = [0u64; 2 * FIXED_LIMBS];
            FixedUint::new(aw).mul_wide(&FixedUint::new(bw), &mut wide);
            return BigUint::from_wide_words(&wide);
        }
        let (av, bv) = (self.view(), rhs.view());
        BigUint::mul_slices(av.as_slice(), bv.as_slice())
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: u64) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        // Inline fast path: the shifted value still fits in a word.
        if let Repr::Inline(v) = self.repr {
            if shift < 64 && self.bits() + shift <= 64 {
                return BigUint::from_u64(v << shift);
            }
            if shift < 128 && self.bits() + shift <= 128 {
                return BigUint::from_u128_value(u128::from(v) << shift);
            }
        }
        let limb_shift = (shift / u64::from(LIMB_BITS)) as usize;
        let bit_shift = (shift % u64::from(LIMB_BITS)) as u32;
        let view = self.view();
        let limbs = view.as_slice();
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: u64) -> BigUint {
        if let Repr::Inline(v) = self.repr {
            return if shift >= 64 {
                BigUint::zero()
            } else {
                BigUint::from_u64(v >> shift)
            };
        }
        let limb_shift = (shift / u64::from(LIMB_BITS)) as usize;
        let view = self.view();
        let limbs = view.as_slice();
        if limb_shift >= limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (shift % u64::from(LIMB_BITS)) as u32;
        let mut out: Vec<u32> = limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry: u32 = 0;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (LIMB_BITS - bit_shift);
                *l = new;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<u64> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: u64) -> BigUint {
        &self << shift
    }
}

impl Shr<u64> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: u64) -> BigUint {
        &self >> shift
    }
}

macro_rules! forward_owned_binop {
    ($($op:ident :: $method:ident),*) => {$(
        impl $op for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$method(&rhs)
            }
        }
        impl $op<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$method(rhs)
            }
        }
        impl $op<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$method(&rhs)
            }
        }
    )*};
}
forward_owned_binop!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        // In-place word addition when no representation change is needed.
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &rhs.repr) {
            if let Some(s) = a.checked_add(*b) {
                self.repr = Repr::Inline(s);
                return;
            }
        }
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigUint> for BigUint {
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`BigUint::checked_sub`] when the
    /// operand ordering is not known.
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = self
            .checked_sub(rhs)
            .expect("BigUint subtraction underflow");
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &rhs.repr) {
            if let Some(p) = a.checked_mul(*b) {
                self.repr = Repr::Inline(p);
                return;
            }
        }
        *self = &*self * rhs;
    }
}

// ---------------------------------------------------------------------------
// Formatting and parsing
// ---------------------------------------------------------------------------

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal output is representation-independent: all three tiers
        // print identical digits for the same value. `ModelFingerprint`
        // digests probabilities through `Display`, so this is a stability
        // contract the engine cache depends on, not just cosmetics.
        match &self.repr {
            Repr::Inline(v) => write!(f, "{v}"),
            Repr::Fixed(fx) => {
                // Divide down by 10^9 on the stack words.
                let mut chunks: Vec<u32> = Vec::new();
                let mut cur = *fx;
                while cur.sig_limbs() != 0 {
                    let (q, r) = cur.div_rem_word(1_000_000_000);
                    chunks.push(r as u32);
                    cur = q;
                }
                write_decimal_chunks(f, &chunks)
            }
            Repr::Heap(_) => {
                // Repeatedly divide by 10^9 (the largest power of ten
                // fitting a limb). The quotient chain is free to fall
                // through the tiers as it shrinks; the view covers all of
                // them.
                let mut chunks: Vec<u32> = Vec::new();
                let mut cur = self.clone();
                while !cur.is_zero() {
                    let view = cur.view();
                    let (q, r) = Self::div_rem_limb_slice(view.as_slice(), 1_000_000_000);
                    chunks.push(r);
                    cur = q;
                }
                write_decimal_chunks(f, &chunks)
            }
        }
    }
}

/// Writes little-endian base-10⁹ chunks as decimal digits.
fn write_decimal_chunks(f: &mut fmt::Formatter<'_>, chunks: &[u32]) -> fmt::Result {
    let mut s = String::new();
    for (i, chunk) in chunks.iter().rev().enumerate() {
        if i == 0 {
            s.push_str(&chunk.to_string());
        } else {
            s.push_str(&format!("{chunk:09}"));
        }
    }
    f.write_str(&s)
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl FromStr for BigUint {
    type Err = ParseNumberError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumberError::Empty);
        }
        if !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNumberError::InvalidDigit);
        }
        // Word-sized inputs parse without any big-number arithmetic.
        if s.len() <= 19 {
            return s
                .parse::<u64>()
                .map(Self::from_u64)
                .map_err(|_| ParseNumberError::InvalidDigit);
        }
        let mut out = BigUint::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 9).min(bytes.len());
            let chunk = &s[i..end];
            let v: u32 = chunk.parse().map_err(|_| ParseNumberError::InvalidDigit)?;
            let scale = BigUint::from(10u32).pow((end - i) as u32);
            out = &out * &scale + BigUint::from(v);
            i = end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(&b(42) + &BigUint::zero(), b(42));
        assert_eq!(&b(42) * &BigUint::one(), b(42));
        assert_eq!(&b(42) * &BigUint::zero(), BigUint::zero());
    }

    #[test]
    fn representation_is_canonical() {
        // Word-sized values are inline; anything above u64::MAX leaves
        // the inline tier.
        assert!(b(0).is_inline());
        assert!(b(u128::from(u64::MAX)).is_inline());
        assert!(!b(u128::from(u64::MAX) + 1).is_inline());
        // Results shrink back to inline when they fit.
        let big = b(u128::from(u64::MAX) + 5);
        assert!((&big - &b(5)).is_inline());
        let (q, r) = big.div_rem(&b(2));
        assert!(q.is_inline() && r.is_inline());
        // Inline results of inline ops never leave the word path.
        assert!((&b(1) << 63u64).is_inline());
        assert!(!(&b(1) << 64u64).is_inline());
    }

    #[test]
    fn representation_lattice_tiers() {
        // Inline ≤ u64::MAX < Fixed < 2^FIXED_BITS ≤ Heap, with exact
        // boundary values on the correct side of each edge.
        assert!(b(u128::from(u64::MAX)).is_inline());
        let fixed_lo = b(u128::from(u64::MAX) + 1);
        assert!(fixed_lo.is_fixed());
        let heap_lo = &b(1) << BigUint::FIXED_BITS;
        let fixed_hi = &heap_lo - &b(1);
        assert!(fixed_hi.is_fixed());
        assert!(heap_lo.is_heap());
        // Escalation: a fixed × fixed product crossing 2^FIXED_BITS lands
        // on the heap…
        let prod = &fixed_hi * &fixed_hi;
        assert!(prod.is_heap());
        // …and division shrinks back down through both boundaries.
        let (q, r) = prod.div_rem(&fixed_hi);
        assert_eq!(q, fixed_hi);
        assert!(r.is_zero() && q.is_fixed());
        assert!((&heap_lo - &b(1)).is_fixed());
        assert!(fixed_lo.checked_sub(&b(1)).unwrap().is_inline());
        // Addition escalates fixed → heap exactly at the carry out.
        assert!((&fixed_hi + &b(1)).is_heap());
        assert_eq!(&fixed_hi + &b(1), heap_lo);
        // Ordering is consistent across all tier pairs.
        assert!(b(7) < fixed_lo && fixed_lo < fixed_hi && fixed_hi < heap_lo);
        assert!(heap_lo > fixed_hi && fixed_lo > b(7));
    }

    #[test]
    fn fixed_tier_mixed_ops_match_u128() {
        // Two-word values stay exactly representable in u128, so every
        // mixed inline/fixed op has a machine-checked reference.
        let a = (1u128 << 100) + 12345;
        let c = (1u128 << 90) + 7;
        let w = 0xDEAD_BEEFu128;
        assert_eq!(&b(a) + &b(c), b(a + c));
        assert_eq!(&b(a) - &b(c), b(a - c));
        assert_eq!(&b(a) + &b(w), b(a + w));
        assert_eq!(b(a).checked_sub(&b(w)), Some(b(a - w)));
        assert_eq!(&b(c) * &b(w), b(c * w));
        // A fixed × fixed product exceeds u128; check it by the division
        // identity instead.
        let p = &b(a) * &b(c);
        let (q, r) = p.div_rem(&b(c));
        assert_eq!((q, r), (b(a), BigUint::zero()));
        let (q, r) = b(a).div_rem(&b(c));
        assert_eq!((q, r), (b(a / c), b(a % c)));
        let (q, r) = b(a).div_rem(&b(w));
        assert_eq!((q, r), (b(a / w), b(a % w)));
        assert_eq!(b(a).gcd(&b(c)), b(1));
        assert_eq!(b(1u128 << 100).gcd(&b(1u128 << 90)), b(1u128 << 90));
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = b(u128::from(u64::MAX));
        let sum = &a + &BigUint::one();
        assert_eq!(sum, b(u128::from(u64::MAX) + 1));
    }

    #[test]
    fn add_assign_in_place_and_overflowing() {
        let mut x = b(10);
        x += &b(32);
        assert_eq!(x, b(42));
        let mut y = b(u128::from(u64::MAX));
        y += &BigUint::one();
        assert_eq!(y, b(u128::from(u64::MAX) + 1));
        let mut z = b(1) << 100u64;
        z += &b(1);
        assert_eq!(z, (b(1) << 100u64) + b(1));
    }

    #[test]
    fn mul_assign_in_place_and_overflowing() {
        let mut x = b(6);
        x *= &b(7);
        assert_eq!(x, b(42));
        let mut y = b(u128::from(u64::MAX));
        y *= &b(3);
        assert_eq!(y, b(u128::from(u64::MAX) * 3));
    }

    #[test]
    fn subtraction_exact_and_underflow() {
        assert_eq!(&b(1000) - &b(999), b(1));
        assert_eq!(b(5).checked_sub(&b(5)), Some(BigUint::zero()));
        assert!(b(5).checked_sub(&b(6)).is_none());
        // Cross-representation: heap − inline landing back inline.
        let big = b(u128::from(u64::MAX)) + b(10);
        assert_eq!(big.checked_sub(&b(11)), Some(b(u128::from(u64::MAX) - 1)));
        assert!(b(7).checked_sub(&(b(1) << 100u64)).is_none());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_panics_on_underflow() {
        let _ = &b(1) - &b(2);
    }

    #[test]
    fn multiplication_cross_limb() {
        let a = b(0xFFFF_FFFF_FFFF_FFFF);
        let c = &a * &a;
        assert_eq!(c, b(0xFFFF_FFFF_FFFF_FFFF * 0xFFFF_FFFF_FFFF_FFFFu128));
    }

    #[test]
    fn division_single_limb() {
        let (q, r) = b(1_000_000_007).div_rem(&b(13));
        assert_eq!(q, b(1_000_000_007 / 13));
        assert_eq!(r, b(1_000_000_007 % 13));
    }

    #[test]
    fn division_multi_limb_knuth() {
        let a = BigUint::from(10u32).pow(40);
        let d = BigUint::from(10u32).pow(17) + BigUint::from(7u32);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
    }

    #[test]
    fn division_knuth_addback_case() {
        // Construct a case exercising the rare "add back" step: the classic
        // example uses divisor with high limb pattern 0x8000....
        let u = (&(BigUint::from(1u32) << 96u64) - &BigUint::one()) << 32u64;
        let v = (BigUint::from(1u32) << 96u64) - BigUint::one();
        let (q, r) = u.div_rem(&v);
        assert_eq!(&q * &v + &r, u);
        assert!(r < v);
    }

    #[test]
    fn division_by_zero_panics() {
        let r = std::panic::catch_unwind(|| b(5).div_rem(&BigUint::zero()));
        assert!(r.is_err());
    }

    #[test]
    fn division_inline_by_heap_is_zero() {
        let small = b(12345);
        let huge = b(1) << 200u64;
        let (q, r) = small.div_rem(&huge);
        assert!(q.is_zero());
        assert_eq!(r, small);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = b(0x1234_5678_9ABC_DEF0);
        assert_eq!(&(&a << 100u64) >> 100u64, a);
        assert_eq!(&a >> 200u64, BigUint::zero());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(b(48).gcd(&b(36)), b(12));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(BigUint::zero().gcd(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn gcd_crosses_representations() {
        // 2^100 and 2^37: gcd is 2^37 (inline), reached from a heap operand.
        let a = b(1) << 100u64;
        let c = b(1) << 37u64;
        assert_eq!(a.gcd(&c), c);
        assert_eq!(c.gcd(&a), c);
        // Coprime heap values.
        let p = (b(1) << 89u64) - b(1); // Mersenne prime 2^89 − 1
        let q = b(1) << 90u64;
        assert!(p.gcd(&q).is_one());
    }

    #[test]
    fn pow_and_bits() {
        assert_eq!(BigUint::from(2u32).pow(100).bits(), 101);
        assert_eq!(BigUint::from(3u32).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
        assert_eq!(b(u128::from(u64::MAX)).bits(), 64);
        assert_eq!(b(u128::from(u64::MAX) + 1).bits(), 65);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let cases = [
            "0",
            "1",
            "999999999",
            "1000000000",
            "18446744073709551615",
            "18446744073709551616",
            "123456789012345678901234567890",
        ];
        for c in cases {
            let v: BigUint = c.parse().unwrap();
            assert_eq!(v.to_string(), c);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a4".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
        // 25 digits of garbage exercises the chunked path's error branch.
        assert!("123456789012345678901234x".parse::<BigUint>().is_err());
    }

    #[test]
    fn parse_20_digit_values_above_and_below_u64_max() {
        // 20-digit strings straddle u64::MAX; both sides must parse.
        let just_above: BigUint = "18446744073709551616".parse().unwrap();
        assert_eq!(just_above, b(u128::from(u64::MAX) + 1));
        assert!(!just_above.is_inline());
        let padded: BigUint = "00018446744073709551615".parse().unwrap();
        assert_eq!(padded, b(u128::from(u64::MAX)));
        assert!(padded.is_inline());
    }

    #[test]
    fn ordering_spans_limb_counts() {
        assert!(b(u128::from(u64::MAX)) > b(1));
        assert!(b(1) < (BigUint::from(1u32) << 64u64));
        assert_eq!(b(77).cmp(&b(77)), Ordering::Equal);
        assert!(b(u128::from(u64::MAX)) < b(u128::from(u64::MAX)) + b(1));
    }

    #[test]
    fn hash_equal_values_equal_hashes() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &BigUint| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        // The same value computed via inline and via heap-then-shrink paths.
        let inline = b(u128::from(u64::MAX));
        let shrunk = (b(u128::from(u64::MAX)) + b(7)) - b(7);
        assert_eq!(inline, shrunk);
        assert_eq!(h(&inline), h(&shrunk));
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(b(0).to_f64(), 0.0);
        assert_eq!(b(1u128 << 70).to_f64(), 2f64.powi(70));
        // Exactly-rounded conversion means the decimal literal (itself the
        // nearest double to 10^30) matches bit for bit.
        assert_eq!(BigUint::from(10u32).pow(30).to_f64(), 1e30);
        assert_eq!(BigUint::from(10u32).pow(40).to_f64(), 1e40);
    }

    #[test]
    fn to_f64_rounds_to_nearest_even_at_half_ulp() {
        // For values in [2^70, 2^71) one ulp is 2^18, so 2^17 is exactly
        // half. These live in the fixed tier (71 bits).
        let base = 1u128 << 70;
        // Tie with even mantissa: rounds down.
        assert_eq!(b(base + (1 << 17)).to_f64(), 2f64.powi(70));
        // Just above the tie: rounds up (the old truncation got this wrong).
        assert_eq!(
            b(base + (1 << 17) + 1).to_f64(),
            2f64.powi(70) + 2f64.powi(18)
        );
        // Just below the tie: rounds down.
        assert_eq!(b(base + (1 << 17) - 1).to_f64(), 2f64.powi(70));
        // Tie with odd mantissa: rounds up to even.
        assert_eq!(
            b(base + (1 << 18) + (1 << 17)).to_f64(),
            2f64.powi(70) + 2f64.powi(19)
        );
        // Mantissa overflow on round-up: 2^71 − 1 is all ones → 2^71.
        assert_eq!(b((1u128 << 71) - 1).to_f64(), 2f64.powi(71));
    }

    #[test]
    fn to_f64_sticky_bit_spans_low_limbs() {
        // Heap tier: ulp in [2^200, 2^201) is 2^148. The +1 lives limbs
        // below the 64-bit extraction window and must flip the tie via
        // the sticky bit.
        let base = &b(1) << 200u64;
        let tie = &base + &(&b(1) << 147u64);
        assert_eq!(tie.to_f64(), 2f64.powi(200)); // even mantissa, tie → down
        let above = &tie + &b(1);
        assert_eq!(above.to_f64(), 2f64.powi(200) + 2f64.powi(148));
        // u64::MAX stays exact through the inline path's hardware rounding.
        assert_eq!(b(u128::from(u64::MAX)).to_f64(), 2f64.powi(64));
    }

    #[test]
    fn even_odd() {
        assert!(b(0).is_even());
        assert!(b(2).is_even());
        assert!(!b(3).is_even());
        assert!((b(1) << 100u64).is_even());
    }
}
