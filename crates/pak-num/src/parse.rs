//! Error types for number parsing.

use core::fmt;

/// Error produced when parsing a [`BigUint`](crate::BigUint),
/// [`BigInt`](crate::BigInt), or [`Rational`](crate::Rational) from a string,
/// or converting between numeric types.
///
/// # Examples
///
/// ```
/// use pak_num::{BigUint, ParseNumberError};
///
/// let err = "12a".parse::<BigUint>().unwrap_err();
/// assert_eq!(err, ParseNumberError::InvalidDigit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseNumberError {
    /// The input string was empty.
    Empty,
    /// The input contained a character that is not a valid digit.
    InvalidDigit,
    /// A denominator of zero was supplied.
    ZeroDenominator,
    /// The value does not fit in the requested machine type.
    Overflow,
}

impl fmt::Display for ParseNumberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ParseNumberError::Empty => "cannot parse number from empty string",
            ParseNumberError::InvalidDigit => "invalid digit found in string",
            ParseNumberError::ZeroDenominator => "denominator must be non-zero",
            ParseNumberError::Overflow => "value does not fit in target type",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParseNumberError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        for e in [
            ParseNumberError::Empty,
            ParseNumberError::InvalidDigit,
            ParseNumberError::ZeroDenominator,
            ParseNumberError::Overflow,
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
