//! Arbitrary-precision integer and exact rational arithmetic.
//!
//! This crate provides the exact numeric substrate for the `pak` workspace.
//! The headline theorem of *Probably Approximately Knowing* (Zamir & Moses,
//! PODC 2020) — Theorem 6.2 — states an **equality** between a conditional
//! prior probability and an expected posterior belief. Verifying an equality
//! with floating point would weaken the reproduction, so every theorem check
//! in [`pak-core`](https://docs.rs/pak-core) runs over the exact [`Rational`]
//! type defined here.
//!
//! The implementation is self-contained (no external bignum dependency):
//!
//! * [`BigUint`] — unsigned arbitrary-precision integer, with full
//!   arithmetic including Knuth Algorithm D division.
//! * [`BigInt`] — signed wrapper (sign + magnitude).
//! * [`Rational`] — exact rational number, always stored in lowest terms with
//!   a strictly positive denominator.
//!
//! # Representation invariants
//!
//! `BigUint` uses a **two-variant layout** tuned for the workspace's hot
//! path, where almost every probability numerator and denominator is
//! word-sized:
//!
//! * **Inline(`u64`)** holds every value `≤ u64::MAX` directly in the
//!   enum. Arithmetic between inline values (`add`/`sub`/`mul`/
//!   `div_rem`/`gcd`/`cmp`/shifts) runs on machine words, widening to
//!   `u128` where a product or carry demands it, and **never touches the
//!   allocator**.
//! * **Heap(`Vec<u32>`)** holds values `> u64::MAX` as little-endian
//!   base-2³² limbs with no trailing zero limbs (so the vector always has
//!   at least three limbs).
//!
//! The representation is **canonical**: every value has exactly one
//! representation, heap results that shrink back into word range are
//! re-inlined on normalisation, and therefore the derived
//! `PartialEq`/`Ord`-consistent `Hash` is value hashing. The invariant is
//! checked by differential property tests
//! (`crates/pak-num/tests/properties.rs`) that pit the inline path against
//! the limb path around the `u64::MAX` and limb-carry boundaries.
//!
//! `Rational` layers word fast paths on top: comparison cross-multiplies
//! through `u128` when both sides are word-sized, addition and
//! multiplication normalise word-sized operands via `u64`/`u128` gcds
//! without constructing intermediate big integers, and in-place
//! `AddAssign`/`MulAssign` let accumulation loops avoid temporaries.
//!
//! # Examples
//!
//! ```
//! use pak_num::Rational;
//!
//! // Probabilities compose exactly: 0.9 * 0.9 + 2 * 0.1 * 0.9 == 0.99
//! let d = Rational::from_ratio(9, 10);
//! let l = Rational::from_ratio(1, 10);
//! let both = &d * &d + Rational::from_ratio(2, 1) * &l * &d;
//! assert_eq!(both, Rational::from_ratio(99, 100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod decimal;
mod parse;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use decimal::DecimalRounding;
pub use parse::ParseNumberError;
pub use rational::Rational;
