//! Arbitrary-precision integer and exact rational arithmetic.
//!
//! This crate provides the exact numeric substrate for the `pak` workspace.
//! The headline theorem of *Probably Approximately Knowing* (Zamir & Moses,
//! PODC 2020) — Theorem 6.2 — states an **equality** between a conditional
//! prior probability and an expected posterior belief. Verifying an equality
//! with floating point would weaken the reproduction, so every theorem check
//! in [`pak-core`](https://docs.rs/pak-core) runs over the exact [`Rational`]
//! type defined here.
//!
//! The implementation is self-contained (no external bignum dependency):
//!
//! * [`BigUint`] — unsigned arbitrary-precision integer, with full
//!   arithmetic including Knuth Algorithm D division.
//! * [`BigInt`] — signed wrapper (sign + magnitude).
//! * [`Rational`] — exact rational number, always stored in lowest terms with
//!   a strictly positive denominator.
//!
//! # Representation invariants
//!
//! `BigUint` uses a **three-tier layout** tuned for the workspace's hot
//! path, where almost every probability numerator and denominator is at
//! most a few words:
//!
//! * **Inline(`u64`)** holds every value `≤ u64::MAX` directly in the
//!   enum. Arithmetic between inline values (`add`/`sub`/`mul`/
//!   `div_rem`/`gcd`/`cmp`/shifts) runs on machine words, widening to
//!   `u128` where a product or carry demands it, and **never touches the
//!   allocator**.
//! * **Fixed(`[u64; 3]`)** holds values in `(u64::MAX, 2^192)` in a
//!   stack-resident fixed-limb array. All arithmetic between inline and
//!   fixed operands — including Knuth division and gcd normalisation —
//!   stays on the stack; only results crossing `2^192` escalate.
//! * **Heap(`Vec<u32>`)** holds values `≥ 2^192` as little-endian
//!   base-2³² limbs with no trailing zero limbs (so the vector always has
//!   at least seven limbs).
//!
//! The representation is **canonical**: every value has exactly one
//! representation, results that shrink across a tier boundary are
//! normalised back down (heap → fixed → inline), and therefore the derived
//! `PartialEq`/`Ord`-consistent `Hash` is value hashing and `Display`
//! prints identical digits whichever tier a value was computed in. The
//! invariant is checked by differential property tests
//! (`crates/pak-num/tests/properties.rs`) that pit the word and fixed
//! paths against the limb path around every tier boundary (`u64::MAX`,
//! `2^192`, and the limb-carry edges in between).
//!
//! `Rational` layers word fast paths on top: comparison cross-multiplies
//! through `u128` when both sides are word-sized, addition and
//! multiplication normalise word-sized operands via binary `u64`/`u128`
//! gcds without constructing intermediate big integers, and in-place
//! `AddAssign`/`MulAssign` let accumulation loops avoid temporaries.
//!
//! # Panics
//!
//! The unsigned types keep the conventional operator contracts: `BigUint`
//! subtraction (`Sub`/`SubAssign`) panics when the result would be
//! negative, and division panics on a zero divisor. Use
//! [`BigUint::checked_sub`] where the operand ordering is not statically
//! known. Signed and rational arithmetic never panics except for division
//! by zero.
//!
//! # Examples
//!
//! ```
//! use pak_num::Rational;
//!
//! // Probabilities compose exactly: 0.9 * 0.9 + 2 * 0.1 * 0.9 == 0.99
//! let d = Rational::from_ratio(9, 10);
//! let l = Rational::from_ratio(1, 10);
//! let both = &d * &d + Rational::from_ratio(2, 1) * &l * &d;
//! assert_eq!(both, Rational::from_ratio(99, 100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod decimal;
mod fixed;
mod parse;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use decimal::DecimalRounding;
pub use parse::ParseNumberError;
pub use rational::Rational;
