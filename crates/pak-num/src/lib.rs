//! Arbitrary-precision integer and exact rational arithmetic.
//!
//! This crate provides the exact numeric substrate for the `pak` workspace.
//! The headline theorem of *Probably Approximately Knowing* (Zamir & Moses,
//! PODC 2020) — Theorem 6.2 — states an **equality** between a conditional
//! prior probability and an expected posterior belief. Verifying an equality
//! with floating point would weaken the reproduction, so every theorem check
//! in [`pak-core`](https://docs.rs/pak-core) runs over the exact [`Rational`]
//! type defined here.
//!
//! The implementation is self-contained (no external bignum dependency):
//!
//! * [`BigUint`] — unsigned arbitrary-precision integer, little-endian `u32`
//!   limbs, with full arithmetic including Knuth Algorithm D division.
//! * [`BigInt`] — signed wrapper (sign + magnitude).
//! * [`Rational`] — exact rational number, always stored in lowest terms with
//!   a strictly positive denominator.
//!
//! # Examples
//!
//! ```
//! use pak_num::Rational;
//!
//! // Probabilities compose exactly: 0.9 * 0.9 + 2 * 0.1 * 0.9 == 0.99
//! let d = Rational::from_ratio(9, 10);
//! let l = Rational::from_ratio(1, 10);
//! let both = &d * &d + Rational::from_ratio(2, 1) * &l * &d;
//! assert_eq!(both, Rational::from_ratio(99, 100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod decimal;
mod parse;
mod rational;

pub use bigint::{BigInt, Sign};
pub use decimal::DecimalRounding;
pub use biguint::BigUint;
pub use parse::ParseNumberError;
pub use rational::Rational;
