//! Fixed-width stack-allocated magnitude arithmetic.
//!
//! [`FixedUint<N>`] is a const-generic little-endian `[u64; N]` magnitude —
//! the middle tier of [`BigUint`](crate::BigUint)'s representation lattice
//! (`Inline(u64)` → `Fixed` → `Heap(Vec<u32>)`). Values that overflow a
//! single machine word but fit `N` words live here, so the common case of
//! exact-probability chains (products and gcd normalisations of
//! word-to-few-word numerators and denominators) never touches the
//! allocator.
//!
//! All arithmetic is carry-exact: additions and subtractions propagate
//! carries/borrows through `u128` widening (the stable-Rust spelling of
//! `carrying_add`/`borrowing_sub`), multiplication produces the full
//! `2 × N`-word product into a caller buffer, and division is Knuth
//! Algorithm D ported to 64-bit limbs with `u128` intermediates. Overflow
//! past `N` words is always *reported* (a carry flag or a widened buffer),
//! never silently wrapped — the caller escalates to the heap tier.
//!
//! The type is deliberately dumb about canonical form: it stores whatever
//! words it is given (zero-padded at the top). `BigUint` enforces the
//! lattice invariant that a `Fixed` value is strictly greater than
//! `u64::MAX`, and canonicalises shrunken results back down.

use core::cmp::Ordering;

/// Number of 64-bit limbs in [`BigUint`](crate::BigUint)'s fixed tier.
///
/// Three words keep the `Repr` enum the same size as its `Vec<u32>` heap
/// variant (24 bytes + discriminant), so adding the tier does not enlarge
/// every probability in the workspace, while covering magnitudes up to
/// `2^192 − 1` — enough for products of two-word numerators/denominators
/// with room for a carry word.
pub(crate) const FIXED_LIMBS: usize = 3;

/// Hard cap on `N` for the stack scratch buffers used by division
/// (`N + 1` normalised dividend words plus a spare).
const MAX_LIMBS: usize = 7;

/// A fixed-width unsigned integer: `N` little-endian 64-bit limbs on the
/// stack, zero-padded at the top.
///
/// Equality and hashing are derived over the full array; because the
/// padding is always zero, two `FixedUint`s holding the same value are
/// bitwise identical, so the derived impls are value equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct FixedUint<const N: usize> {
    limbs: [u64; N],
}

impl<const N: usize> FixedUint<N> {
    /// Wraps raw little-endian words (zero-padded at the top).
    #[inline]
    pub(crate) fn new(limbs: [u64; N]) -> Self {
        debug_assert!(N >= 2 && N <= MAX_LIMBS);
        FixedUint { limbs }
    }

    /// Builds from a `u128` value (uses the low two limbs).
    #[inline]
    pub(crate) fn from_u128(v: u128) -> Self {
        let mut limbs = [0u64; N];
        limbs[0] = v as u64;
        limbs[1] = (v >> 64) as u64;
        FixedUint { limbs }
    }

    /// The raw little-endian words.
    #[inline]
    pub(crate) fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Number of significant limbs (0 for the value zero).
    #[inline]
    pub(crate) fn sig_limbs(&self) -> usize {
        sig_words(&self.limbs)
    }

    /// Number of significant bits (0 for the value zero).
    pub(crate) fn bits(&self) -> u64 {
        let sig = self.sig_limbs();
        if sig == 0 {
            return 0;
        }
        (sig as u64 - 1) * 64 + u64::from(64 - self.limbs[sig - 1].leading_zeros())
    }

    /// Returns the value as `u128` if it fits in two limbs.
    pub(crate) fn to_u128(self) -> Option<u128> {
        if self.sig_limbs() > 2 {
            return None;
        }
        Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64))
    }

    /// Returns `true` if the value is even.
    #[inline]
    pub(crate) fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }

    /// `self + rhs` as wrapped `N`-limb words plus the carry out of the
    /// top limb. The caller escalates to a wider representation when the
    /// carry is set.
    pub(crate) fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry: u128 = 0;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&rhs.limbs) {
            let s = u128::from(a) + u128::from(b) + carry;
            *o = s as u64;
            carry = s >> 64;
        }
        (FixedUint { limbs: out }, carry != 0)
    }

    /// `self + rhs`, or `None` if the sum needs more than `N` limbs.
    #[allow(dead_code)] // production code branches on `overflowing_add`
    pub(crate) fn checked_add(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (s, false) => Some(s),
            (_, true) => None,
        }
    }

    /// `self − rhs`, or `None` on underflow.
    pub(crate) fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        let mut out = [0u64; N];
        let mut borrow: u64 = 0;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&rhs.limbs) {
            // i128 window: lhs − rhs − borrow ∈ (−2^64, 2^64).
            let d = i128::from(a) - i128::from(b) - i128::from(borrow);
            if d < 0 {
                *o = (d + (1i128 << 64)) as u64;
                borrow = 1;
            } else {
                *o = d as u64;
                borrow = 0;
            }
        }
        if borrow != 0 {
            return None;
        }
        Some(FixedUint { limbs: out })
    }

    /// Magnitude comparison.
    pub(crate) fn cmp_words(&self, rhs: &Self) -> Ordering {
        for i in (0..N).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Full `2 × N`-word product into `out` (schoolbook, `u128` carries).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `out.len() != 2 * N`.
    pub(crate) fn mul_wide(&self, rhs: &Self, out: &mut [u64]) {
        debug_assert_eq!(out.len(), 2 * N);
        out.fill(0);
        for (i, &x) in self.limbs.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &y) in rhs.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(x) * u128::from(y) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + N] = carry as u64;
        }
    }

    /// Short division by a single word: `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub(crate) fn div_rem_word(&self, d: u64) -> (Self, u64) {
        assert!(d != 0, "division by zero word");
        let mut out = [0u64; N];
        let mut rem: u128 = 0;
        for i in (0..N).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        (FixedUint { limbs: out }, rem as u64)
    }

    /// Division with remainder on fixed words: `(quotient, remainder)` with
    /// `remainder < divisor`. Knuth Algorithm D (TAOCP Vol. 2, 4.3.1) on
    /// 64-bit limbs with `u128` intermediates; single-word divisors take
    /// the short-division path. Never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub(crate) fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        let n = divisor.sig_limbs();
        assert!(n > 0, "division by zero FixedUint");
        if n == 1 {
            let (q, r) = self.div_rem_word(divisor.limbs[0]);
            let mut rl = [0u64; N];
            rl[0] = r;
            return (q, FixedUint { limbs: rl });
        }
        match self.cmp_words(divisor) {
            Ordering::Less => return (FixedUint { limbs: [0; N] }, *self),
            Ordering::Equal => {
                let mut one = [0u64; N];
                one[0] = 1;
                return (FixedUint { limbs: one }, FixedUint { limbs: [0; N] });
            }
            Ordering::Greater => {}
        }
        let m_total = self.sig_limbs(); // > n ≥ 2 here, or == n with larger value
        let m = m_total - n;

        // Normalise so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros();
        let mut un = [0u64; MAX_LIMBS + 1];
        let mut vn = [0u64; MAX_LIMBS];
        shl_words_into(&self.limbs[..m_total], shift, &mut un);
        shl_words_into(&divisor.limbs[..n], shift, &mut vn);
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q = [0u64; N];
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two dividend words.
            let num = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
            let mut qhat = num / u128::from(v_top);
            let mut rhat = num % u128::from(v_top);
            while qhat >= (1u128 << 64)
                || qhat * u128::from(v_next) > ((rhat << 64) | u128::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += u128::from(v_top);
                if rhat >= (1u128 << 64) {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * u128::from(vn[i]) + carry;
                carry = p >> 64;
                let t = i128::from(un[i + j]) - borrow - i128::from(p as u64);
                if t < 0 {
                    un[i + j] = (t + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    un[i + j] = t as u64;
                    borrow = 0;
                }
            }
            let t = i128::from(un[j + n]) - borrow - i128::try_from(carry).expect("carry < 2^64");
            if t < 0 {
                // q̂ was one too large: add the divisor back.
                un[j + n] = (t + (1i128 << 64)) as u64;
                qhat -= 1;
                let mut carry2: u128 = 0;
                for i in 0..n {
                    let s = u128::from(un[i + j]) + u128::from(vn[i]) + carry2;
                    un[i + j] = s as u64;
                    carry2 = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry2 as u64);
            } else {
                un[j + n] = t as u64;
            }
            if j < N {
                q[j] = qhat as u64;
            } else {
                debug_assert_eq!(qhat, 0, "quotient exceeds N limbs");
            }
        }

        // Denormalise the remainder: un[..n] >> shift.
        let mut r = [0u64; N];
        if shift == 0 {
            r[..n].copy_from_slice(&un[..n]);
        } else {
            for i in 0..n {
                let hi = if i + 1 < n { un[i + 1] } else { 0 };
                r[i] = (un[i] >> shift) | (hi << (64 - shift));
            }
        }
        (FixedUint { limbs: q }, FixedUint { limbs: r })
    }
}

/// Number of significant little-endian words in a slice.
#[inline]
pub(crate) fn sig_words(words: &[u64]) -> usize {
    let mut len = words.len();
    while len > 0 && words[len - 1] == 0 {
        len -= 1;
    }
    len
}

/// `src << shift` (shift < 64) into `dst`, which must hold
/// `src.len() + 1` words; the remainder of `dst` is zeroed.
fn shl_words_into(src: &[u64], shift: u32, dst: &mut [u64]) {
    debug_assert!(shift < 64);
    debug_assert!(dst.len() > src.len());
    dst.fill(0);
    if shift == 0 {
        dst[..src.len()].copy_from_slice(src);
        return;
    }
    let mut carry: u64 = 0;
    for (i, &w) in src.iter().enumerate() {
        dst[i] = (w << shift) | carry;
        carry = w >> (64 - shift);
    }
    dst[src.len()] = carry;
}

/// Binary (Stein) gcd on machine words. Substantially faster than Euclid's
/// division loop for the word-sized operands that dominate probability
/// normalisation: each step costs a subtract and a shift instead of a
/// hardware divide.
#[inline]
pub(crate) fn gcd_u64(a: u64, b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    // Probability reduction calls this mostly with a unit numerator or
    // equal denominators; both answers are immediate.
    if a == 1 || b == 1 {
        return 1;
    }
    if a == b {
        return a;
    }
    let az = a.trailing_zeros();
    let bz = b.trailing_zeros();
    let shift = az.min(bz);
    let mut a = a >> az;
    let mut b = b >> bz;
    while a != b {
        if a > b {
            a -= b;
            a >>= a.trailing_zeros();
        } else {
            b -= a;
            b >>= b.trailing_zeros();
        }
    }
    a << shift
}

/// Binary gcd on `u128`, avoiding the libcall-per-iteration cost of
/// Euclid's `%` on double words.
#[inline]
pub(crate) fn gcd_u128(a: u128, b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    if let (Ok(a64), Ok(b64)) = (u64::try_from(a), u64::try_from(b)) {
        return u128::from(gcd_u64(a64, b64));
    }
    let az = a.trailing_zeros();
    let bz = b.trailing_zeros();
    let shift = az.min(bz);
    let mut a = a >> az;
    let mut b = b >> bz;
    while a != b {
        if a > b {
            a -= b;
            a >>= a.trailing_zeros();
        } else {
            b -= a;
            b >>= b.trailing_zeros();
        }
    }
    a << shift
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — the same deterministic generator as the integration
    /// property suite.
    struct Rng(u64);
    impl Rng {
        fn u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Random N-word value with a random number of significant limbs,
    /// dwelling on all-ones / power-of-two carry edges.
    fn rand_fixed<const N: usize>(rng: &mut Rng) -> FixedUint<N> {
        let sig = rng.below(N as u64 + 1) as usize;
        let mut limbs = [0u64; N];
        for (i, l) in limbs.iter_mut().enumerate().take(sig) {
            *l = match rng.below(4) {
                0 => u64::MAX,
                1 => 1u64 << rng.below(64),
                2 => (1u64 << rng.below(63)).wrapping_sub(1) | 1,
                _ => rng.u64(),
            };
            if i == sig - 1 && *l == 0 {
                *l = 1;
            }
        }
        FixedUint::new(limbs)
    }

    /// Reference conversion through a 4-word u128-chunk big integer.
    fn to_u256<const N: usize>(v: &FixedUint<N>) -> (u128, u128) {
        assert!(N <= 4);
        let l = v.limbs();
        let lo = u128::from(l[0]) | (u128::from(l[1]) << 64);
        let hi = if N > 2 {
            u128::from(l[2]) | if N > 3 { u128::from(l[3]) << 64 } else { 0 }
        } else {
            0
        };
        (lo, hi)
    }

    fn add_u256(a: (u128, u128), b: (u128, u128)) -> Option<(u128, u128)> {
        let (lo, c) = a.0.overflowing_add(b.0);
        let hi = a.1.checked_add(b.1)?.checked_add(u128::from(c))?;
        Some((lo, hi))
    }

    fn sub_u256(a: (u128, u128), b: (u128, u128)) -> Option<(u128, u128)> {
        let (lo, borrow) = a.0.overflowing_sub(b.0);
        let hi = a.1.checked_sub(b.1)?.checked_sub(u128::from(borrow))?;
        Some((lo, hi))
    }

    fn cmp_u256(a: (u128, u128), b: (u128, u128)) -> Ordering {
        a.1.cmp(&b.1).then(a.0.cmp(&b.0))
    }

    #[test]
    fn add_sub_cmp_match_u256_reference() {
        let mut rng = Rng(0xF1D0);
        for case in 0..4000 {
            let a = rand_fixed::<4>(&mut rng);
            let b = rand_fixed::<4>(&mut rng);
            let (ra, rb) = (to_u256(&a), to_u256(&b));
            match (a.checked_add(&b), add_u256(ra, rb)) {
                (Some(s), Some(rs)) => assert_eq!(to_u256(&s), rs, "add, case {case}"),
                (None, None) => {}
                (got, reference) => panic!(
                    "add overflow disagreement, case {case}: got {:?}, reference {:?}",
                    got.is_some(),
                    reference.is_some()
                ),
            }
            match (a.checked_sub(&b), sub_u256(ra, rb)) {
                (Some(d), Some(rd)) => assert_eq!(to_u256(&d), rd, "sub, case {case}"),
                (None, None) => {}
                _ => panic!("sub underflow disagreement, case {case}"),
            }
            assert_eq!(a.cmp_words(&b), cmp_u256(ra, rb), "cmp, case {case}");
        }
    }

    #[test]
    fn mul_wide_matches_shifted_adds() {
        let mut rng = Rng(0xAB5);
        for case in 0..2000 {
            let a = rand_fixed::<3>(&mut rng);
            let b = rand_fixed::<3>(&mut rng);
            let mut out = [0u64; 6];
            a.mul_wide(&b, &mut out);
            // Reference: accumulate a * each limb of b via u128 partials.
            let mut reference = [0u64; 6];
            for (j, &y) in b.limbs().iter().enumerate() {
                let mut carry: u128 = 0;
                for (i, &x) in a.limbs().iter().enumerate() {
                    let cur = u128::from(reference[i + j]) + u128::from(x) * u128::from(y) + carry;
                    reference[i + j] = cur as u64;
                    carry = cur >> 64;
                }
                let mut k = j + 3;
                while carry != 0 {
                    let cur = u128::from(reference[k]) + carry;
                    reference[k] = cur as u64;
                    carry = cur >> 64;
                    k += 1;
                }
            }
            assert_eq!(out, reference, "mul_wide, case {case}");
        }
    }

    #[test]
    fn div_rem_satisfies_division_identity() {
        let mut rng = Rng(0xD117);
        let mut multi_limb_divisors = 0usize;
        for case in 0..4000 {
            let a = rand_fixed::<3>(&mut rng);
            let b = rand_fixed::<3>(&mut rng);
            if b.sig_limbs() == 0 {
                continue;
            }
            if b.sig_limbs() > 1 {
                multi_limb_divisors += 1;
            }
            let (q, r) = a.div_rem(&b);
            assert_eq!(
                r.cmp_words(&b),
                Ordering::Less,
                "remainder bound, case {case}"
            );
            // q*b + r == a, via mul_wide and checked_add on the wide buffer.
            let mut prod = [0u64; 6];
            q.mul_wide(&b, &mut prod);
            assert_eq!(sig_words(&prod[3..]), 0, "q*b fits 3 limbs, case {case}");
            let qb = FixedUint::<3>::new([prod[0], prod[1], prod[2]]);
            let back = qb.checked_add(&r).expect("q*b + r fits");
            assert_eq!(back, a, "division identity, case {case}");
        }
        assert!(
            multi_limb_divisors > 500,
            "sweep must exercise the Knuth path, got {multi_limb_divisors}"
        );
    }

    #[test]
    fn div_rem_knuth_addback_edge() {
        // Divisor with top limb exactly 2^63 forces maximal q̂ estimates;
        // (2^191 − 1) << 64-ish dividends hit the correction branches.
        let u = FixedUint::<3>::new([u64::MAX, u64::MAX, u64::MAX]);
        let v = FixedUint::<3>::new([1, 1u64 << 63, 0]);
        let (q, r) = u.div_rem(&v);
        let mut prod = [0u64; 6];
        q.mul_wide(&v, &mut prod);
        let qb = FixedUint::<3>::new([prod[0], prod[1], prod[2]]);
        assert_eq!(qb.checked_add(&r), Some(u));
        assert_eq!(r.cmp_words(&v), Ordering::Less);
    }

    #[test]
    fn div_rem_word_matches_u128() {
        let mut rng = Rng(0xD1);
        for case in 0..2000 {
            let v = rng.u64() as u128 | ((rng.u64() as u128) << 64);
            let d = rng.u64().max(1);
            let a = FixedUint::<3>::from_u128(v);
            let (q, r) = a.div_rem_word(d);
            assert_eq!(
                q.to_u128(),
                Some(v / u128::from(d)),
                "quotient, case {case}"
            );
            assert_eq!(u128::from(r), v % u128::from(d), "remainder, case {case}");
        }
    }

    #[test]
    fn bits_and_parity() {
        assert_eq!(FixedUint::<3>::from_u128(0).bits(), 0);
        assert_eq!(FixedUint::<3>::from_u128(1).bits(), 1);
        assert_eq!(FixedUint::<3>::from_u128(u128::MAX).bits(), 128);
        assert_eq!(FixedUint::<3>::new([0, 0, 1]).bits(), 129);
        assert!(FixedUint::<3>::from_u128(4).is_even());
        assert!(!FixedUint::<3>::new([1, 7, 0]).is_even());
    }

    #[test]
    fn works_at_other_widths() {
        // The limb algorithms are width-generic; spot-check N = 2 and N = 5.
        let a = FixedUint::<2>::from_u128(u128::MAX - 4);
        let b = FixedUint::<2>::from_u128(5);
        assert!(a.checked_add(&b).is_none(), "N=2 add overflow reported");
        assert_eq!(
            a.checked_sub(&b).and_then(|d| d.to_u128()),
            Some(u128::MAX - 9)
        );
        let c = FixedUint::<5>::new([u64::MAX; 5]);
        let d = FixedUint::<5>::new([2, 0, 0, 0, 0]);
        let (q, r) = c.div_rem(&d);
        // (2^320 − 1) / 2: quotient 2^319 − 1 pattern, remainder 1.
        assert_eq!(q.limbs()[4], u64::MAX >> 1);
        assert_eq!(r.limbs()[0], 1);
        assert_eq!(sig_words(r.limbs()), 1);
    }

    #[test]
    fn binary_gcds_match_euclid() {
        let mut rng = Rng(0x9CD9);
        let euclid64 = |mut a: u64, mut b: u64| {
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a
        };
        let euclid128 = |mut a: u128, mut b: u128| {
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a
        };
        for case in 0..4000 {
            let (a, b) = (rng.u64() >> rng.below(64), rng.u64() >> rng.below(64));
            assert_eq!(gcd_u64(a, b), euclid64(a, b), "gcd_u64, case {case}");
            let (x, y) = (
                u128::from(rng.u64()) * u128::from(rng.u64()),
                u128::from(rng.u64()) * u128::from(rng.u64()),
            );
            assert_eq!(gcd_u128(x, y), euclid128(x, y), "gcd_u128, case {case}");
        }
        assert_eq!(gcd_u64(0, 0), 0);
        assert_eq!(gcd_u64(0, 7), 7);
        assert_eq!(gcd_u128(0, 0), 0);
        assert_eq!(gcd_u128(u128::MAX, 0), u128::MAX);
    }
}
