//! Exact decimal expansion of rationals.
//!
//! Experiment reports print probabilities like `990/991` next to the
//! paper's `0.99899`; comparing them honestly needs an *exact* decimal
//! expansion at a chosen precision, with explicit truncation/rounding —
//! not a detour through `f64`.

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use crate::rational::Rational;

/// Rounding mode for [`Rational::to_decimal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecimalRounding {
    /// Truncate toward zero.
    Truncate,
    /// Round half away from zero.
    #[default]
    HalfUp,
}

impl Rational {
    /// The exact decimal expansion of the value to `digits` fractional
    /// digits, with the given rounding.
    ///
    /// # Examples
    ///
    /// ```
    /// use pak_num::{DecimalRounding, Rational};
    ///
    /// let v = Rational::from_ratio(990, 991);
    /// // The §8 value, to the paper's five digits:
    /// assert_eq!(v.to_decimal(5, DecimalRounding::HalfUp), "0.99899");
    /// assert_eq!(v.to_decimal(8, DecimalRounding::Truncate), "0.99899091");
    /// assert_eq!(Rational::from_ratio(-1, 8).to_decimal(3, DecimalRounding::HalfUp), "-0.125");
    /// ```
    #[must_use]
    pub fn to_decimal(&self, digits: u32, rounding: DecimalRounding) -> String {
        let negative = self.is_negative();
        let num = self.numer().magnitude().clone();
        let den = self.denom().clone();
        // Scale: ⌊num·10^digits / den⌋ plus rounding adjustment.
        let scale = BigUint::from(10u32).pow(digits);
        let scaled = &num * &scale;
        let (mut q, r) = scaled.div_rem(&den);
        if rounding == DecimalRounding::HalfUp {
            // Round up when 2r ≥ den.
            let twice = &r + &r;
            if twice >= den {
                q = &q + &BigUint::one();
            }
        }
        let digits = digits as usize;
        let mut s = q.to_string();
        if s.len() <= digits {
            let pad = "0".repeat(digits + 1 - s.len());
            s = format!("{pad}{s}");
        }
        let split = s.len() - digits;
        let (int_part, frac_part) = s.split_at(split);
        let body = if digits == 0 {
            int_part.to_string()
        } else {
            format!("{int_part}.{frac_part}")
        };
        if negative && body.bytes().any(|b| b.is_ascii_digit() && b != b'0') {
            format!("-{body}")
        } else {
            body
        }
    }

    /// Whether the value is an integer (denominator one).
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.denom().is_one()
    }

    /// The integer floor of the value.
    ///
    /// ```
    /// use pak_num::{BigInt, Rational};
    /// assert_eq!(Rational::from_ratio(7, 2).floor(), BigInt::from(3));
    /// assert_eq!(Rational::from_ratio(-7, 2).floor(), BigInt::from(-4));
    /// ```
    #[must_use]
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.numer().magnitude().div_rem(self.denom());
        if self.is_negative() {
            let q = BigInt::from_sign_magnitude(crate::bigint::Sign::Negative, q);
            if r.is_zero() {
                q
            } else {
                &q - &BigInt::one()
            }
        } else {
            BigInt::from(q)
        }
    }

    /// The integer ceiling of the value.
    ///
    /// ```
    /// use pak_num::{BigInt, Rational};
    /// assert_eq!(Rational::from_ratio(7, 2).ceil(), BigInt::from(4));
    /// assert_eq!(Rational::from_ratio(-7, 2).ceil(), BigInt::from(-3));
    /// ```
    #[must_use]
    pub fn ceil(&self) -> BigInt {
        -&(-self).floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn expansions_of_paper_constants() {
        assert_eq!(r(99, 100).to_decimal(2, DecimalRounding::Truncate), "0.99");
        assert_eq!(
            r(991, 1000).to_decimal(3, DecimalRounding::Truncate),
            "0.991"
        );
        assert_eq!(
            r(990, 991).to_decimal(5, DecimalRounding::HalfUp),
            "0.99899"
        );
        assert_eq!(r(9, 1000).to_decimal(3, DecimalRounding::HalfUp), "0.009");
    }

    #[test]
    fn rounding_modes_differ() {
        let two_thirds = r(2, 3);
        assert_eq!(
            two_thirds.to_decimal(4, DecimalRounding::Truncate),
            "0.6666"
        );
        assert_eq!(two_thirds.to_decimal(4, DecimalRounding::HalfUp), "0.6667");
        // Exact half rounds away from zero.
        assert_eq!(r(1, 2).to_decimal(0, DecimalRounding::HalfUp), "1");
        assert_eq!(r(1, 2).to_decimal(0, DecimalRounding::Truncate), "0");
        assert_eq!(r(-1, 2).to_decimal(0, DecimalRounding::HalfUp), "-1");
    }

    #[test]
    fn zero_and_integers() {
        assert_eq!(
            Rational::zero().to_decimal(3, DecimalRounding::HalfUp),
            "0.000"
        );
        assert_eq!(r(5, 1).to_decimal(2, DecimalRounding::HalfUp), "5.00");
        assert_eq!(r(5, 1).to_decimal(0, DecimalRounding::HalfUp), "5");
        assert!(r(5, 1).is_integer());
        assert!(!r(5, 2).is_integer());
    }

    #[test]
    fn negatives_keep_sign_only_when_nonzero() {
        assert_eq!(r(-1, 8).to_decimal(3, DecimalRounding::HalfUp), "-0.125");
        // −1/1000 truncated to 2 digits is 0.00: no "-0.00".
        assert_eq!(r(-1, 1000).to_decimal(2, DecimalRounding::Truncate), "0.00");
    }

    #[test]
    fn long_expansions_are_exact() {
        // 1/7 = 0.142857 repeating.
        assert_eq!(
            r(1, 7).to_decimal(12, DecimalRounding::Truncate),
            "0.142857142857"
        );
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(3, 1).floor(), BigInt::from(3));
        assert_eq!(r(3, 1).ceil(), BigInt::from(3));
        assert_eq!(r(-3, 2).floor(), BigInt::from(-2));
        assert_eq!(r(-3, 2).ceil(), BigInt::from(-1));
        assert_eq!(Rational::zero().floor(), BigInt::zero());
    }
}
