//! Exact rational numbers.

use core::cmp::Ordering;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use crate::fixed::gcd_u64;
use crate::parse::ParseNumberError;

/// An exact rational number.
///
/// The value is always stored in lowest terms with a strictly positive
/// denominator; the sign lives on the numerator. Equality and ordering are
/// therefore structural and exact.
///
/// `Rational` is the numeric workhorse of the `pak` workspace: every
/// probability in a purely probabilistic system, every posterior belief, and
/// every theorem check can be computed with it, so statements like
/// Theorem 6.2 of *Probably Approximately Knowing* — an equality between two
/// derived quantities — are verified with `==`, not with an epsilon.
///
/// # Examples
///
/// ```
/// use pak_num::Rational;
///
/// let p: Rational = "0.95".parse()?;
/// assert_eq!(p, Rational::from_ratio(19, 20));
/// assert_eq!(p.to_f64(), 0.95);
/// # Ok::<(), pak_num::ParseNumberError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    /// Numerator; carries the sign.
    num: BigInt,
    /// Denominator; always strictly positive.
    den: BigUint,
}

impl Rational {
    /// The value `0`.
    #[must_use]
    #[inline]
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    #[must_use]
    #[inline]
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Creates a rational from arbitrary-precision numerator and denominator.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNumberError::ZeroDenominator`] if `den` is zero.
    ///
    /// ```
    /// use pak_num::{BigInt, Rational};
    /// let half = Rational::new(BigInt::from(2), BigInt::from(4))?;
    /// assert_eq!(half, Rational::from_ratio(1, 2));
    /// assert!(Rational::new(BigInt::from(1), BigInt::zero()).is_err());
    /// # Ok::<(), pak_num::ParseNumberError>(())
    /// ```
    pub fn new(num: BigInt, den: BigInt) -> Result<Self, ParseNumberError> {
        if den.is_zero() {
            return Err(ParseNumberError::ZeroDenominator);
        }
        let sign = num.sign().mul(den.sign());
        Ok(Self::normalised(
            BigInt::from_sign_magnitude(sign, num.magnitude().clone()),
            den.magnitude().clone(),
        ))
    }

    /// Creates a rational from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`. Use [`Rational::new`] for fallible construction.
    ///
    /// ```
    /// use pak_num::Rational;
    /// assert_eq!(Rational::from_ratio(-6, 4).to_string(), "-3/2");
    /// ```
    #[must_use]
    pub fn from_ratio(num: i64, den: i64) -> Self {
        assert!(
            den != 0,
            "Rational::from_ratio denominator must be non-zero"
        );
        Self::new(BigInt::from(num), BigInt::from(den)).expect("den checked non-zero")
    }

    /// Creates a rational from an integer.
    #[must_use]
    pub fn from_integer(v: impl Into<BigInt>) -> Self {
        Rational {
            num: v.into(),
            den: BigUint::one(),
        }
    }

    /// Normalises `num/den` (with `den > 0`) into lowest terms.
    fn normalised(num: BigInt, den: BigUint) -> Self {
        debug_assert!(!den.is_zero());
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            Rational { num, den }
        } else {
            Rational {
                num: BigInt::from_sign_magnitude(num.sign(), num.magnitude() / &g),
                den: &den / &g,
            }
        }
    }

    /// Word-sized decomposition `(|num|, den, sign)` when both the
    /// numerator magnitude and the denominator fit in a `u64`. The fast
    /// arithmetic paths run entirely on machine words from here.
    #[inline]
    fn as_words(&self) -> Option<(u64, u64, Sign)> {
        let n = self.num.magnitude().to_u64()?;
        let d = self.den.to_u64()?;
        Some((n, d, self.num.sign()))
    }

    /// Builds a rational from an already-reduced sign/num/den triple.
    #[inline]
    fn from_reduced_u128(sign: Sign, num: u128, den: u128) -> Rational {
        debug_assert!(den > 0);
        if num == 0 {
            return Rational::zero();
        }
        Rational {
            num: BigInt::from_sign_magnitude(sign, BigUint::from(num)),
            den: BigUint::from(den),
        }
    }

    /// `self + rhs` entirely on machine words, or `None` if an operand or
    /// an intermediate exceeds the word fast path.
    fn add_fast(&self, rhs: &Rational) -> Option<Rational> {
        self.combine_fast(rhs, false)
    }

    /// `self - rhs` entirely on machine words — the same cross-product
    /// combine as [`Rational::add_fast`] with `rhs`'s sign flipped, so
    /// subtraction does not have to clone and negate its operand.
    fn sub_fast(&self, rhs: &Rational) -> Option<Rational> {
        self.combine_fast(rhs, true)
    }

    /// Shared word-path body of [`Rational::add_fast`] /
    /// [`Rational::sub_fast`].
    fn combine_fast(&self, rhs: &Rational, negate_rhs: bool) -> Option<Rational> {
        let (an, ad, asign) = self.as_words()?;
        let (bn, bd, mut bsign) = rhs.as_words()?;
        if negate_rhs {
            bsign = bsign.neg();
        }
        if an == 0 {
            return Some(Rational {
                num: BigInt::from_sign_magnitude(bsign, rhs.num.magnitude().clone()),
                den: rhs.den.clone(),
            });
        }
        if bn == 0 {
            return Some(self.clone());
        }
        // Small-operand path: numerators in 31 bits and denominators in
        // 32 keep every cross product and the unreduced sum inside a u64,
        // so the tail reduction runs on native 64-bit `%`/`/` instead of
        // the u128 long-division libcalls the general path needs — the
        // dominant cost for the word-sized probabilities the unfolder
        // churns through.
        if (an | bn) >> 31 == 0 && (ad | bd) >> 32 == 0 {
            let g0 = gcd_u64(ad, bd);
            let (adg, bdg) = if g0 == 1 {
                (ad, bd)
            } else {
                (ad / g0, bd / g0)
            };
            let p1 = an * bdg;
            let p2 = bn * adg;
            let den = ad * bdg;
            let (sign, mag) = if asign == bsign {
                (asign, p1 + p2)
            } else {
                match p1.cmp(&p2) {
                    Ordering::Equal => return Some(Rational::zero()),
                    Ordering::Greater => (asign, p1 - p2),
                    Ordering::Less => (bsign, p2 - p1),
                }
            };
            if g0 > 1 {
                let g1 = gcd_u64(mag % g0, g0);
                if g1 > 1 {
                    return Some(Rational::from_reduced_u128(
                        sign,
                        (mag / g1).into(),
                        (den / g1).into(),
                    ));
                }
            }
            return Some(Rational::from_reduced_u128(sign, mag.into(), den.into()));
        }
        // a/b + c/d with g₀ = gcd(b, d), b = g₀·b′, d = g₀·d′:
        // the sum is (a·d′ ± c·b′) / (b·d′). Because both operands are in
        // lowest terms, the numerator t is coprime to b′ and d′ — a prime
        // p | b′ dividing t would divide a·d′, and p ∤ a (gcd(a, b) = 1)
        // forces p | d′, contradicting gcd(b′, d′) = 1. So only factors
        // of g₀ can cancel: when g₀ == 1 the result is already reduced,
        // and otherwise a single word-sized gcd(t mod g₀, g₀) finishes
        // the job — far cheaper than the 128-bit gcd of numerator and
        // denominator this used to compute.
        let g0 = gcd_u64(ad, bd);
        let (adg, bdg) = if g0 == 1 {
            (ad, bd)
        } else {
            (ad / g0, bd / g0)
        };
        let p1 = u128::from(an) * u128::from(bdg);
        let p2 = u128::from(bn) * u128::from(adg);
        let den = u128::from(ad) * u128::from(bdg);
        let (sign, mag) = if asign == bsign {
            (asign, p1.checked_add(p2)?)
        } else {
            match p1.cmp(&p2) {
                Ordering::Equal => return Some(Rational::zero()),
                Ordering::Greater => (asign, p1 - p2),
                Ordering::Less => (bsign, p2 - p1),
            }
        };
        if g0 == 1 {
            return Some(Rational::from_reduced_u128(sign, mag, den));
        }
        #[allow(clippy::cast_possible_truncation)] // mod g₀ < g₀ ≤ u64::MAX
        let g1 = gcd_u64((mag % u128::from(g0)) as u64, g0);
        if g1 == 1 {
            return Some(Rational::from_reduced_u128(sign, mag, den));
        }
        let g1 = u128::from(g1);
        Some(Rational::from_reduced_u128(sign, mag / g1, den / g1))
    }

    /// `self * rhs` entirely on machine words. Because both operands are
    /// in lowest terms, cross-cancelling `gcd(|a|, d)` and `gcd(|c|, b)`
    /// leaves the product already reduced.
    fn mul_fast(&self, rhs: &Rational) -> Option<Rational> {
        let (an, ad, asign) = self.as_words()?;
        let (bn, bd, bsign) = rhs.as_words()?;
        if an == 0 || bn == 0 {
            return Some(Rational::zero());
        }
        // Coprime cross pairs (the common case) skip the hardware divides:
        // dividing by a runtime 1 still costs a full 64-bit division.
        let g1 = gcd_u64(an, bd);
        let g2 = gcd_u64(bn, ad);
        let (an, bd) = if g1 == 1 {
            (an, bd)
        } else {
            (an / g1, bd / g1)
        };
        let (bn, ad) = if g2 == 1 {
            (bn, ad)
        } else {
            (bn / g2, ad / g2)
        };
        let num = u128::from(an) * u128::from(bn);
        let den = u128::from(ad) * u128::from(bd);
        Some(Rational::from_reduced_u128(asign.mul(bsign), num, den))
    }

    /// The numerator (carries the sign).
    #[must_use]
    #[inline]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always strictly positive).
    #[must_use]
    #[inline]
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    #[must_use]
    #[inline]
    pub fn is_one(&self) -> bool {
        self.den.is_one() && self.num == BigInt::one()
    }

    /// Returns `true` if the value is strictly negative.
    #[must_use]
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    #[must_use]
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value lies in the closed interval `[0, 1]`,
    /// i.e. is a valid probability.
    ///
    /// ```
    /// use pak_num::Rational;
    /// assert!(Rational::from_ratio(99, 100).is_probability());
    /// assert!(!Rational::from_ratio(101, 100).is_probability());
    /// assert!(!Rational::from_ratio(-1, 100).is_probability());
    /// ```
    #[must_use]
    pub fn is_probability(&self) -> bool {
        !self.is_negative() && *self <= Rational::one()
    }

    /// The complement `1 - self`, convenient for probabilities.
    ///
    /// ```
    /// use pak_num::Rational;
    /// assert_eq!(Rational::from_ratio(1, 10).one_minus(), Rational::from_ratio(9, 10));
    /// ```
    #[must_use]
    pub fn one_minus(&self) -> Rational {
        // For word-sized a/b the complement is (b ∓ a)/b, and it is already
        // in lowest terms: gcd(b ± a, b) = gcd(a, b) = 1. No gcd needed.
        if let Some((n, d, sign)) = self.as_words() {
            return match sign {
                Sign::Zero => Rational::one(),
                Sign::Negative => Rational::from_reduced_u128(
                    Sign::Positive,
                    u128::from(d) + u128::from(n),
                    d.into(),
                ),
                Sign::Positive => match d.cmp(&n) {
                    Ordering::Equal => Rational::zero(),
                    Ordering::Greater => {
                        Rational::from_reduced_u128(Sign::Positive, (d - n).into(), d.into())
                    }
                    Ordering::Less => {
                        Rational::from_reduced_u128(Sign::Negative, (n - d).into(), d.into())
                    }
                },
            };
        }
        &Rational::one() - self
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "cannot take reciprocal of zero");
        Rational {
            num: BigInt::from_sign_magnitude(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Raises the value to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics if the value is zero and `exp < 0`.
    #[must_use]
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        let base = if exp < 0 { self.recip() } else { self.clone() };
        let e = exp.unsigned_abs();
        Rational {
            num: base.num.pow(e),
            den: base.den.pow(e),
        }
    }

    /// Lossy conversion to `f64`.
    ///
    /// The result is correctly signed; magnitudes beyond `f64` range saturate.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Scale both operands down so each fits comfortably in f64's mantissa
        // range before dividing, preserving ~double precision of the quotient.
        let nb = self.num.magnitude().bits();
        let db = self.den.bits();
        let excess = nb.max(db).saturating_sub(900);
        let n = (self.num.magnitude() >> excess).to_f64();
        let d = (&self.den >> excess).to_f64();
        let q = if d == 0.0 { f64::INFINITY } else { n / d };
        if self.num.is_negative() {
            -q
        } else {
            q
        }
    }

    /// Exact midpoint of two rationals, `(a + b) / 2`.
    #[must_use]
    pub fn midpoint(a: &Rational, b: &Rational) -> Rational {
        (a + b) / Rational::from_ratio(2, 1)
    }

    /// Returns the smaller of two rationals (by value).
    #[must_use]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals (by value).
    #[must_use]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Rational {
            fn from(v: $t) -> Self {
                Rational::from_integer(BigInt::from(v))
            }
        }
    )*};
}
impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational::from_integer(v)
    }
}

impl From<BigUint> for Rational {
    fn from(v: BigUint) -> Self {
        Rational::from_integer(BigInt::from(v))
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b, d > 0)  ⇔  a·d vs c·b. Signs decide first; equal
        // non-zero signs cross-multiply magnitudes only — on machine words
        // (via u128) when both rationals are word-sized.
        let ss = self.num.sign();
        let os = other.num.sign();
        if ss != os {
            return ss.cmp(&os);
        }
        if ss == Sign::Zero {
            return Ordering::Equal;
        }
        let mag = match (self.as_words(), other.as_words()) {
            (Some((an, ad, _)), Some((bn, bd, _))) => {
                (u128::from(an) * u128::from(bd)).cmp(&(u128::from(bn) * u128::from(ad)))
            }
            _ => {
                let lhs = self.num.magnitude() * &other.den;
                let rhs = other.num.magnitude() * &self.den;
                lhs.cmp(&rhs)
            }
        };
        if ss == Sign::Negative {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        // Accumulators start at zero (e.g. measure sums), so skip the
        // word decomposition for the identity outright.
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if let Some(fast) = self.add_fast(rhs) {
            return fast;
        }
        // a/b + c/d = (a*d + c*b) / (b*d), normalised.
        let num = &self.num * &rhs.den + &rhs.num * &self.den;
        let den = &self.den * &rhs.den;
        Rational::normalised(num, den)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        if rhs.is_zero() {
            return self.clone();
        }
        if let Some(fast) = self.sub_fast(rhs) {
            return fast;
        }
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        // Probability pipelines chain products seeded with one (joint-move
        // accumulators, path weights), so the identity is by far the most
        // common operand: return the other side before paying for the
        // word decomposition and gcds.
        if self.is_one() {
            return rhs.clone();
        }
        if rhs.is_one() {
            return self.clone();
        }
        if let Some(fast) = self.mul_fast(rhs) {
            return fast;
        }
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = self.num.magnitude().gcd(&rhs.den);
        let g2 = rhs.num.magnitude().gcd(&self.den);
        let n1 = BigInt::from_sign_magnitude(self.num.sign(), self.num.magnitude() / &g1);
        let n2 = BigInt::from_sign_magnitude(rhs.num.sign(), rhs.num.magnitude() / &g2);
        let d1 = &self.den / &g2;
        let d2 = &rhs.den / &g1;
        let num = &n1 * &n2;
        if num.is_zero() {
            return Rational::zero();
        }
        Rational {
            num,
            den: &d1 * &d2,
        }
    }
}

impl Div for &Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "cannot take reciprocal of zero");
        if rhs.is_one() {
            return self.clone();
        }
        // Word path: (a/b) / (c/d) = (a·d) / (b·c). Cross-cancelling
        // gcd(a, c) and gcd(b, d) leaves the quotient reduced (both
        // operands are in lowest terms), without materialising `recip`.
        if let (Some((an, ad, asign)), Some((bn, bd, bsign))) = (self.as_words(), rhs.as_words()) {
            if an == 0 {
                return Rational::zero();
            }
            let g1 = gcd_u64(an, bn);
            let g2 = gcd_u64(ad, bd);
            let (an, bn) = if g1 == 1 {
                (an, bn)
            } else {
                (an / g1, bn / g1)
            };
            let (ad, bd) = if g2 == 1 {
                (ad, bd)
            } else {
                (ad / g2, bd / g2)
            };
            let num = u128::from(an) * u128::from(bd);
            let den = u128::from(ad) * u128::from(bn);
            return Rational::from_reduced_u128(asign.mul(bsign), num, den);
        }
        self * &rhs.recip()
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_owned_binop_rat {
    ($($op:ident :: $method:ident),*) => {$(
        impl $op for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $op<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $op<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    )*};
}
forward_owned_binop_rat!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}
impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}
impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}
impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = &*self * &rhs;
    }
}
impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, rhs: &Rational) {
        *self = &*self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::one(), |acc, x| acc * x)
    }
}

impl<'a> Product<&'a Rational> for Rational {
    fn product<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::one(), |acc, x| acc * x)
    }
}

// ---------------------------------------------------------------------------
// Formatting and parsing
// ---------------------------------------------------------------------------

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl FromStr for Rational {
    type Err = ParseNumberError;

    /// Parses `"a/b"`, a plain integer `"a"`, or a decimal such as `"0.95"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumberError::Empty);
        }
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.parse()?;
            let den: BigInt = d.parse()?;
            return Rational::new(num, den);
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseNumberError::InvalidDigit);
            }
            let negative = int_part.starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" || int_part == "+" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            let frac: BigUint = frac_part.parse()?;
            let scale = BigUint::from(10u32).pow(frac_part.len() as u32);
            let frac_rat = Rational::normalised(BigInt::from(frac), scale);
            let int_rat = Rational::from_integer(int.abs());
            let abs = &int_rat + &frac_rat;
            return Ok(if negative { -abs } else { abs });
        }
        let num: BigInt = s.parse()?;
        Ok(Rational::from_integer(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn construction_normalises() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 17), Rational::zero());
        assert_eq!(r(0, -17), Rational::zero());
    }

    #[test]
    fn new_rejects_zero_denominator() {
        assert_eq!(
            Rational::new(BigInt::one(), BigInt::zero()),
            Err(ParseNumberError::ZeroDenominator)
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn from_ratio_panics_on_zero_denominator() {
        let _ = Rational::from_ratio(1, 0);
    }

    /// Cross-multiplied BigInt reference for `a + b`, bypassing every
    /// word fast path.
    fn add_via_bigint(a: &Rational, b: &Rational) -> Rational {
        let num = a.numer() * &BigInt::from(b.denom().clone())
            + b.numer() * &BigInt::from(a.denom().clone());
        let den = BigInt::from(a.denom() * b.denom());
        Rational::new(num, den).unwrap()
    }

    #[test]
    fn add_overflow_fallback_matches_bigint_reference() {
        // u64::MAX is odd, so gcd(M, M−1) = gcd(M, M−2) = 1 and both
        // operands below are already in lowest terms with coprime
        // denominators (gcd(M−1, M−2) = 1): the fast path's numerator
        // cross-products are the full a·d and c·b.
        let m = u64::MAX;
        let p1 = u128::from(m) * u128::from(m - 2);
        let p2 = u128::from(m) * u128::from(m - 1);
        assert!(
            p1.checked_add(p2).is_none(),
            "precondition: this case must overflow the u128 fast path"
        );
        let a = Rational::new(BigInt::from(m), BigInt::from(m - 1)).unwrap();
        let b = Rational::new(BigInt::from(m), BigInt::from(m - 2)).unwrap();
        assert_eq!(&a + &b, add_via_bigint(&a, &b));
        // The mixed-sign branch subtracts instead of adding, so the same
        // magnitudes stay on the fast path; check it against the same
        // reference.
        let neg_b = -&b;
        assert_eq!(&a + &neg_b, add_via_bigint(&a, &neg_b));
        // A hair below the boundary stays on the fast path and must agree
        // with the reference too.
        let c = Rational::new(BigInt::from(1u64 << 63), BigInt::from(m - 1)).unwrap();
        let d = Rational::new(BigInt::from((1u64 << 63) + 1), BigInt::from(m - 2)).unwrap();
        assert!(
            (u128::from(1u64 << 63) * u128::from(m - 2))
                .checked_add(u128::from((1u64 << 63) + 1) * u128::from(m - 1))
                .is_some(),
            "precondition: this case must stay on the u128 fast path"
        );
        assert_eq!(&c + &d, add_via_bigint(&c, &d));
    }

    #[test]
    fn add_shared_denominator_factor_reduces_fully() {
        // g₀ > 1 exercises the single-word tail gcd: denominators 2^63
        // and 2^62 share g₀ = 2^62, and the odd numerators keep both
        // operands in lowest terms.
        let a = Rational::new(BigInt::from(3u64), BigInt::from(1u64 << 63)).unwrap();
        let b = Rational::new(BigInt::from(5u64), BigInt::from(1u64 << 62)).unwrap();
        let sum = &a + &b;
        assert_eq!(sum, add_via_bigint(&a, &b));
        // 3/2^63 + 5/2^62 = 13/2^63 — already reduced.
        assert_eq!(
            sum,
            Rational::new(BigInt::from(13u64), BigInt::from(1u64 << 63)).unwrap()
        );
        // A cancelling case: 1/6 + 1/3 = 1/2 must shed the factor 3.
        let e = &Rational::from_ratio(1, 6) + &Rational::from_ratio(1, 3);
        assert_eq!(e, Rational::from_ratio(1, 2));
        assert_eq!(e.denom(), &BigUint::from(2u32));
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(1, 2) / &r(1, 4), r(2, 1));
        assert_eq!(-&r(1, 2), r(-1, 2));
    }

    #[test]
    fn example1_firing_squad_numbers() {
        // The Example 1 arithmetic from the paper: message loss 0.1.
        // P(Bob receives ≥1 of 2 msgs) = 1 - 0.1² = 0.99.
        let loss = r(1, 10);
        let both_fire = Rational::one() - &loss * &loss;
        assert_eq!(both_fire, r(99, 100));
        // P(threshold not met when Alice fires) = 0.1·0.1·0.9 = 0.009.
        let not_met = &(&loss * &loss) * &loss.one_minus();
        assert_eq!(not_met, r(9, 1000));
        assert_eq!(not_met.one_minus(), r(991, 1000));
    }

    #[test]
    fn ordering_cross_denominator() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(99, 100) < Rational::one());
        assert_eq!(r(3, 6).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn cmp_fallback_above_word_boundary() {
        // Operands above u64::MAX can't use the u128 cross-multiply fast
        // path; this pins the big-magnitude branch (and the mixed
        // word/big case) against hand-computed orderings. 2^64+1 and
        // 2^64+3 are consecutive odd numbers, so both fractions below
        // are in lowest terms, and k/(k+2) = 1 − 2/(k+2) is strictly
        // increasing in k.
        let k = BigUint::from(1u32) << 64u64; // 2^64
        let k1 = &k + &BigUint::from(1u32);
        let k3 = &k + &BigUint::from(3u32);
        let k5 = &k + &BigUint::from(5u32);
        let a = Rational::new(BigInt::from(k1), BigInt::from(k3.clone())).unwrap();
        let b = Rational::new(BigInt::from(k3), BigInt::from(k5)).unwrap();
        assert!(a < b, "k/(k+2) is increasing");
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(-&a > -&b, "negation reverses the big branch");
        // Mixed word/big operands also take the fallback: with M =
        // u64::MAX, (M−1)/M vs (2^64+1)/(2^64+3) cross-multiplies to
        // 2^128 + 2^64 − 6 vs 2^128 − 1, so the word-sized side is
        // larger.
        let m = u64::MAX;
        let w = Rational::new(BigInt::from(m - 1), BigInt::from(m)).unwrap();
        assert!(w > a);
        assert!(a < w);
    }

    #[test]
    fn probability_helpers() {
        assert!(Rational::zero().is_probability());
        assert!(Rational::one().is_probability());
        assert!(r(1, 2).is_probability());
        assert!(!r(3, 2).is_probability());
        assert!(!r(-1, 2).is_probability());
        assert_eq!(r(1, 4).one_minus(), r(3, 4));
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(r(2, 3).recip(), r(3, 2));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
        assert_eq!(r(1, 2).pow(10), r(1, 1024));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(5, 7).pow(0), Rational::one());
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    fn to_f64_precision() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        assert_eq!(Rational::zero().to_f64(), 0.0);
        let tiny = r(1, 10).pow(30);
        let rel = (tiny.to_f64() - 1e-30).abs() / 1e-30;
        assert!(rel < 1e-12);
    }

    #[test]
    fn parse_fraction_integer_decimal() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("3/-4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("7".parse::<Rational>().unwrap(), r(7, 1));
        assert_eq!("0.95".parse::<Rational>().unwrap(), r(19, 20));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), r(-1, 2));
        assert_eq!("-.5".parse::<Rational>().unwrap(), r(-1, 2));
        assert_eq!("2.25".parse::<Rational>().unwrap(), r(9, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("".parse::<Rational>().is_err());
        assert!("0.".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
        assert_eq!(Rational::zero().to_string(), "0");
    }

    #[test]
    fn sum_and_product_iterators() {
        let parts = [r(1, 4), r(1, 4), r(1, 2)];
        let total: Rational = parts.iter().sum();
        assert_eq!(total, Rational::one());
        let prod: Rational = parts.iter().product();
        assert_eq!(prod, r(1, 32));
    }

    #[test]
    fn midpoint_min_max() {
        assert_eq!(Rational::midpoint(&r(0, 1), &r(1, 1)), r(1, 2));
        assert_eq!(r(1, 3).min(r(1, 2)), r(1, 3));
        assert_eq!(r(1, 3).max(r(1, 2)), r(1, 2));
    }
}
