//! Signed arbitrary-precision integers.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

use crate::biguint::BigUint;
use crate::parse::ParseNumberError;

/// The sign of a [`BigInt`].
///
/// Zero always carries [`Sign::Zero`]; the sign is part of the canonical
/// representation, so two equal values always compare equal structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Multiplies two signs.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // sign algebra, not numeric Mul
    #[inline]
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Positive, Sign::Positive) | (Sign::Negative, Sign::Negative) => Sign::Positive,
            _ => Sign::Negative,
        }
    }

    /// Negates the sign.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // sign algebra, not numeric Neg
    #[inline]
    pub fn neg(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// A signed arbitrary-precision integer (sign + magnitude).
///
/// # Examples
///
/// ```
/// use pak_num::BigInt;
///
/// let a = BigInt::from(-7i64);
/// let b = BigInt::from(10i64);
/// assert_eq!((&a + &b).to_string(), "3");
/// assert_eq!((&a * &b).to_string(), "-70");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value `0`.
    #[must_use]
    #[inline]
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            magnitude: BigUint::zero(),
        }
    }

    /// The value `1`.
    #[must_use]
    #[inline]
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            magnitude: BigUint::one(),
        }
    }

    /// Builds a value from a sign and magnitude, normalising zero.
    #[must_use]
    #[inline]
    pub fn from_sign_magnitude(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            let sign = if sign == Sign::Zero {
                Sign::Positive
            } else {
                sign
            };
            BigInt { sign, magnitude }
        }
    }

    /// The sign of the value.
    #[must_use]
    #[inline]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value) of the value.
    #[must_use]
    #[inline]
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly positive.
    #[must_use]
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` if the value is strictly negative.
    #[must_use]
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_magnitude(Sign::Positive, self.magnitude.clone())
    }

    /// Lossy conversion to `f64`.
    #[must_use]
    #[inline]
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }

    /// Returns the value as `i64` if it fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.magnitude.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m == (1u64 << 63) {
                    Some(i64::MIN)
                } else {
                    i64::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Greatest common divisor of the magnitudes.
    #[must_use]
    pub fn gcd(&self, other: &Self) -> BigUint {
        self.magnitude.gcd(&other.magnitude)
    }

    /// Raises the value to the power `exp`.
    #[must_use]
    pub fn pow(&self, exp: u32) -> BigInt {
        let sign = if self.is_zero() {
            if exp == 0 {
                Sign::Positive
            } else {
                Sign::Zero
            }
        } else if self.sign == Sign::Negative && exp % 2 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        BigInt::from_sign_magnitude(sign, self.magnitude.pow(exp))
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_sign_magnitude(Sign::Positive, v)
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                BigInt::from_sign_magnitude(Sign::Positive, BigUint::from(v))
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_from_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                if v < 0 {
                    BigInt::from_sign_magnitude(Sign::Negative, BigUint::from(v.unsigned_abs()))
                } else {
                    BigInt::from_sign_magnitude(Sign::Positive, BigUint::from(v.unsigned_abs()))
                }
            }
        }
    )*};
}
impl_from_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128);

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
            },
            other_ord => other_ord,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

impl Neg for &BigInt {
    type Output = BigInt;
    #[inline]
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            magnitude: self.magnitude.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            magnitude: self.magnitude,
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_magnitude(a, &self.magnitude + &rhs.magnitude),
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match self.magnitude.cmp(&rhs.magnitude) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::from_sign_magnitude(self.sign, &self.magnitude - &rhs.magnitude)
                    }
                    Ordering::Less => {
                        BigInt::from_sign_magnitude(rhs.sign, &rhs.magnitude - &self.magnitude)
                    }
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    #[inline]
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_magnitude(self.sign.mul(rhs.sign), &self.magnitude * &rhs.magnitude)
    }
}

impl Mul<&BigUint> for &BigInt {
    type Output = BigInt;
    /// Scales by an unsigned value without round-tripping it through a
    /// signed wrapper — the hot cross-multiplication in `Rational` uses
    /// this to stay clone-free.
    #[inline]
    fn mul(self, rhs: &BigUint) -> BigInt {
        if rhs.is_zero() {
            return BigInt::zero();
        }
        BigInt::from_sign_magnitude(self.sign, &self.magnitude * rhs)
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    /// Truncated division (rounds toward zero), matching Rust's `/` on
    /// primitive integers.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &BigInt) -> BigInt {
        let (q, _) = self.magnitude.div_rem(&rhs.magnitude);
        BigInt::from_sign_magnitude(self.sign.mul(rhs.sign), q)
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    /// Remainder with the sign of the dividend, matching Rust's `%` on
    /// primitive integers.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &BigInt) -> BigInt {
        let (_, r) = self.magnitude.div_rem(&rhs.magnitude);
        BigInt::from_sign_magnitude(self.sign, r)
    }
}

macro_rules! forward_owned_binop_int {
    ($($op:ident :: $method:ident),*) => {$(
        impl $op for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $op<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $op<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    )*};
}
forward_owned_binop_int!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

// ---------------------------------------------------------------------------
// Formatting and parsing
// ---------------------------------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseNumberError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumberError::Empty);
        }
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        let magnitude: BigUint = digits.parse()?;
        Ok(BigInt::from_sign_magnitude(sign, magnitude))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_algebra() {
        assert_eq!(Sign::Positive.mul(Sign::Negative), Sign::Negative);
        assert_eq!(Sign::Negative.mul(Sign::Negative), Sign::Positive);
        assert_eq!(Sign::Zero.mul(Sign::Negative), Sign::Zero);
        assert_eq!(Sign::Negative.neg(), Sign::Positive);
    }

    #[test]
    fn zero_is_normalised() {
        let z = BigInt::from_sign_magnitude(Sign::Negative, BigUint::zero());
        assert_eq!(z, BigInt::zero());
        assert_eq!(z.sign(), Sign::Zero);
    }

    #[test]
    fn signed_addition_all_sign_combinations() {
        assert_eq!(&i(5) + &i(3), i(8));
        assert_eq!(&i(-5) + &i(-3), i(-8));
        assert_eq!(&i(5) + &i(-3), i(2));
        assert_eq!(&i(-5) + &i(3), i(-2));
        assert_eq!(&i(5) + &i(-5), i(0));
        assert_eq!(&i(0) + &i(-3), i(-3));
    }

    #[test]
    fn subtraction_and_negation() {
        assert_eq!(&i(3) - &i(10), i(-7));
        assert_eq!(-&i(7), i(-7));
        assert_eq!(-&i(0), i(0));
    }

    #[test]
    fn multiplication_signs() {
        assert_eq!(&i(-4) * &i(6), i(-24));
        assert_eq!(&i(-4) * &i(-6), i(24));
        assert_eq!(&i(-4) * &i(0), i(0));
    }

    #[test]
    fn division_truncates_toward_zero() {
        assert_eq!(&i(7) / &i(2), i(3));
        assert_eq!(&i(-7) / &i(2), i(-3));
        assert_eq!(&i(7) / &i(-2), i(-3));
        assert_eq!(&i(-7) % &i(2), i(-1));
        assert_eq!(&i(7) % &i(-2), i(1));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-10) < i(-2));
        assert!(i(-1) < i(0));
        assert!(i(0) < i(1));
        assert!(i(2) < i(10));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(i(i128::from(i64::MAX)).to_i64(), Some(i64::MAX));
        assert_eq!(i(i128::from(i64::MIN)).to_i64(), Some(i64::MIN));
        assert_eq!(i(i128::from(i64::MAX) + 1).to_i64(), None);
        assert_eq!(i(i128::from(i64::MIN) - 1).to_i64(), None);
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["-123456789012345678901234567890", "0", "42", "-1"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+17".parse::<BigInt>().unwrap(), i(17));
        assert!("--5".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
    }

    #[test]
    fn pow_signs() {
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(-2).pow(4), i(16));
        assert_eq!(i(0).pow(0), i(1));
        assert_eq!(i(0).pow(3), i(0));
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(i(-12).to_f64(), -12.0);
        assert_eq!(i(0).to_f64(), 0.0);
    }
}
