//! Property-based tests for the arbitrary-precision arithmetic.
//!
//! Every algebraic law used by the `pak-core` theorem machinery is checked
//! here against randomly generated operands, including multi-limb values
//! that exercise carry/borrow chains and Knuth division.

use proptest::prelude::*;

use pak_num::{BigInt, BigUint, Rational};

/// Strategy producing `BigUint`s spanning zero through multi-limb magnitudes.
fn big_uint() -> impl Strategy<Value = BigUint> {
    prop_oneof![
        any::<u64>().prop_map(BigUint::from),
        any::<u128>().prop_map(BigUint::from),
        (any::<u128>(), 0u64..200).prop_map(|(v, s)| BigUint::from(v) << s),
    ]
}

fn big_int() -> impl Strategy<Value = BigInt> {
    (big_uint(), any::<bool>()).prop_map(|(m, neg)| {
        let v = BigInt::from(m);
        if neg {
            -v
        } else {
            v
        }
    })
}

fn rational() -> impl Strategy<Value = Rational> {
    (any::<i32>(), 1i32..=i32::MAX).prop_map(|(n, d)| {
        Rational::from_ratio(i64::from(n), i64::from(d))
    })
}

/// A rational in `[0, 1]`, i.e. a probability.
fn probability() -> impl Strategy<Value = Rational> {
    (0u32..=1_000_000, 1u32..=1_000_000).prop_map(|(a, b)| {
        let (n, d) = if a <= b { (a, b) } else { (b, a) };
        Rational::from_ratio(i64::from(n), i64::from(d))
    })
}

proptest! {
    // ------------------------------------------------------------------
    // BigUint ring laws
    // ------------------------------------------------------------------

    #[test]
    fn biguint_add_commutative(a in big_uint(), b in big_uint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn biguint_add_associative(a in big_uint(), b in big_uint(), c in big_uint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn biguint_mul_commutative(a in big_uint(), b in big_uint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn biguint_mul_associative(a in big_uint(), b in big_uint(), c in big_uint()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn biguint_distributive(a in big_uint(), b in big_uint(), c in big_uint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn biguint_add_sub_roundtrip(a in big_uint(), b in big_uint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn biguint_div_rem_invariant(a in big_uint(), b in big_uint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn biguint_gcd_divides_both(a in big_uint(), b in big_uint()) {
        prop_assume!(!a.is_zero() || !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        if !a.is_zero() {
            prop_assert!((&a % &g).is_zero());
        }
        if !b.is_zero() {
            prop_assert!((&b % &g).is_zero());
        }
    }

    #[test]
    fn biguint_gcd_commutative(a in big_uint(), b in big_uint()) {
        prop_assert_eq!(a.gcd(&b), b.gcd(&a));
    }

    #[test]
    fn biguint_shift_roundtrip(a in big_uint(), s in 0u64..256) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn biguint_display_parse_roundtrip(a in big_uint()) {
        let s = a.to_string();
        let back: BigUint = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn biguint_cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(BigUint::from(a).cmp(&BigUint::from(b)), a.cmp(&b));
    }

    #[test]
    fn biguint_arith_matches_u64(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        prop_assert_eq!(&ba + &bb, BigUint::from(u128::from(a) + u128::from(b)));
        prop_assert_eq!(&ba * &bb, BigUint::from(u128::from(a) * u128::from(b)));
        if let (Some(q), Some(m)) = (a.checked_div(b), a.checked_rem(b)) {
            prop_assert_eq!(&ba / &bb, BigUint::from(q));
            prop_assert_eq!(&ba % &bb, BigUint::from(m));
        }
    }

    // ------------------------------------------------------------------
    // BigInt ring laws
    // ------------------------------------------------------------------

    #[test]
    fn bigint_add_commutative(a in big_int(), b in big_int()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn bigint_add_inverse(a in big_int()) {
        prop_assert_eq!(&a + &(-&a), BigInt::zero());
    }

    #[test]
    fn bigint_sub_antisymmetric(a in big_int(), b in big_int()) {
        prop_assert_eq!(&a - &b, -&(&b - &a));
    }

    #[test]
    fn bigint_mul_signs(a in big_int(), b in big_int()) {
        let prod = &a * &b;
        if a.is_zero() || b.is_zero() {
            prop_assert!(prod.is_zero());
        } else {
            prop_assert_eq!(prod.is_negative(), a.is_negative() != b.is_negative());
        }
    }

    #[test]
    fn bigint_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000i128,
                           b in -1_000_000_000_000i128..1_000_000_000_000i128) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!(&ba + &bb, BigInt::from(a + b));
        prop_assert_eq!(&ba - &bb, BigInt::from(a - b));
        prop_assert_eq!(&ba * &bb, BigInt::from(a * b));
        if b != 0 {
            prop_assert_eq!(&ba / &bb, BigInt::from(a / b));
            prop_assert_eq!(&ba % &bb, BigInt::from(a % b));
        }
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }

    #[test]
    fn bigint_display_parse_roundtrip(a in big_int()) {
        let back: BigInt = a.to_string().parse().unwrap();
        prop_assert_eq!(back, a);
    }

    // ------------------------------------------------------------------
    // Rational field laws
    // ------------------------------------------------------------------

    #[test]
    fn rational_add_commutative(a in rational(), b in rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn rational_add_associative(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn rational_mul_associative(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn rational_distributive(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn rational_add_inverse(a in rational()) {
        prop_assert_eq!(&a + &(-&a), Rational::zero());
    }

    #[test]
    fn rational_mul_inverse(a in rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(&a * &a.recip(), Rational::one());
    }

    #[test]
    fn rational_div_mul_roundtrip(a in rational(), b in rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(&(&a / &b) * &b, a);
    }

    #[test]
    fn rational_normalised_invariants(a in rational(), b in rational()) {
        // Every result of arithmetic is in lowest terms with positive denominator.
        for v in [&a + &b, &a - &b, &a * &b] {
            prop_assert!(!v.denom().is_zero());
            let g = v.numer().magnitude().gcd(v.denom());
            prop_assert!(g.is_one() || v.is_zero());
        }
    }

    #[test]
    fn rational_ordering_total(a in rational(), b in rational(), c in rational()) {
        // Transitivity on a sample of triples.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn rational_ordering_matches_f64(a in rational(), b in rational()) {
        // f64 conversion is monotone for well-separated values.
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_display_parse_roundtrip(a in rational()) {
        let back: Rational = a.to_string().parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn probability_complement_involution(p in probability()) {
        prop_assert!(p.is_probability());
        prop_assert!(p.one_minus().is_probability());
        prop_assert_eq!(p.one_minus().one_minus(), p);
    }

    #[test]
    fn probability_product_stays_probability(p in probability(), q in probability()) {
        prop_assert!((&p * &q).is_probability());
        // p·q ≤ min(p, q): products of probabilities shrink.
        prop_assert!(&p * &q <= p.clone().min(q));
    }

    #[test]
    fn rational_pow_matches_repeated_mul(a in rational(), e in 0i32..8) {
        let mut acc = Rational::one();
        for _ in 0..e {
            acc = &acc * &a;
        }
        prop_assert_eq!(a.pow(e), acc);
    }
}
