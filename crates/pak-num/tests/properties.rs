//! Property-based tests for the arbitrary-precision arithmetic.
//!
//! Every algebraic law used by the `pak-core` theorem machinery is checked
//! here against randomly generated operands, including multi-limb values
//! that exercise carry/borrow chains and Knuth division.
//!
//! The harness is self-contained (the workspace builds offline, so no
//! external property-testing crate is used): a deterministic `splitmix64`
//! generator drives every case, so failures reproduce exactly. On failure
//! the assertion message carries the case index; rerun with the same code
//! to replay it.
//!
//! Since `BigUint` gained its tiered representation (inline `u64` →
//! fixed `[u64; 3]` stack words → heap `Vec<u32>` limbs), this file also
//! carries **differential tests** pitting the word and fixed-limb fast
//! paths against the multi-limb heap paths on the same values:
//! machine-checkable references (`u128` arithmetic, decimal-string
//! round-trips, algebraic identities) arbitrate, and the generators
//! deliberately dwell on every boundary of the lattice — `u64::MAX`
//! (inline↔fixed), `2^FIXED_BITS` (fixed↔heap), and the limb-carry edges
//! in between — where representation switches happen.

use pak_num::{BigInt, BigUint, Rational};

/// Deterministic splitmix64 generator: the whole file replays exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn u128(&mut self) -> u128 {
        (u128::from(self.u64()) << 64) | u128::from(self.u64())
    }

    /// Uniform draw from `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A `BigUint` spanning zero through multi-limb magnitudes, biased
    /// toward representation boundaries.
    fn big_uint(&mut self) -> BigUint {
        match self.below(6) {
            0 => BigUint::from(self.u64()),
            1 => BigUint::from(self.u128()),
            2 => BigUint::from(self.u128()) << self.below(200),
            3 => BigUint::from(self.boundary_u64()),
            4 => self.boundary_fixed_heap(),
            _ => BigUint::from(self.boundary_u128()),
        }
    }

    /// Values hugging the fixed↔heap edge at `2^FIXED_BITS`, plus the
    /// word-boundary edges inside the fixed tier, with small random
    /// offsets so carries propagate across the boundary in both
    /// directions.
    fn boundary_fixed_heap(&mut self) -> BigUint {
        let anchor_bits = [
            BigUint::FIXED_BITS - 1,
            BigUint::FIXED_BITS,
            BigUint::FIXED_BITS + 1,
            128,
            129,
            191,
        ];
        let anchor = BigUint::from(1u32) << anchor_bits[self.below(6) as usize];
        let offset = BigUint::from(self.below(3));
        if self.u64() & 1 == 0 {
            anchor + offset
        } else {
            &anchor - &offset.min(anchor.clone())
        }
    }

    /// Values hugging the inline/heap and limb-carry edges.
    fn boundary_u64(&mut self) -> u64 {
        const EDGES: [u64; 10] = [
            0,
            1,
            2,
            u32::MAX as u64 - 1,
            u32::MAX as u64,
            1 << 32,
            (1 << 32) + 1,
            u64::MAX - 1,
            u64::MAX,
            0x8000_0000_0000_0000,
        ];
        EDGES[self.below(EDGES.len() as u64) as usize]
    }

    fn boundary_u128(&mut self) -> u128 {
        const EDGES: [u128; 8] = [
            u64::MAX as u128,
            u64::MAX as u128 + 1,
            u64::MAX as u128 + 2,
            1 << 96,
            (1 << 96) - 1,
            u128::MAX,
            u128::MAX - 1,
            (u64::MAX as u128) << 32,
        ];
        EDGES[self.below(EDGES.len() as u64) as usize]
    }

    fn big_int(&mut self) -> BigInt {
        let v = BigInt::from(self.big_uint());
        if self.u64() & 1 == 0 {
            -v
        } else {
            v
        }
    }

    fn rational(&mut self) -> Rational {
        let n = self.u64() as i32;
        let d = 1 + self.below(i32::MAX as u64) as i64;
        Rational::from_ratio(i64::from(n), d)
    }

    /// A rational in `[0, 1]`.
    fn probability(&mut self) -> Rational {
        let a = self.below(1_000_000) + 1;
        let b = self.below(1_000_000) + 1;
        let (n, d) = if a <= b { (a, b) } else { (b, a) };
        Rational::from_ratio(n as i64, d as i64)
    }
}

const CASES: usize = 256;

// ----------------------------------------------------------------------
// BigUint ring laws
// ----------------------------------------------------------------------

#[test]
fn biguint_ring_laws() {
    let mut rng = Rng::new(0xB16);
    for case in 0..CASES {
        let a = rng.big_uint();
        let b = rng.big_uint();
        let c = rng.big_uint();
        assert_eq!(&a + &b, &b + &a, "add commutative, case {case}");
        assert_eq!(
            &(&a + &b) + &c,
            &a + &(&b + &c),
            "add associative, case {case}"
        );
        assert_eq!(&a * &b, &b * &a, "mul commutative, case {case}");
        assert_eq!(
            &(&a * &b) * &c,
            &a * &(&b * &c),
            "mul associative, case {case}"
        );
        assert_eq!(
            &a * &(&b + &c),
            &(&a * &b) + &(&a * &c),
            "distributive, case {case}"
        );
        assert_eq!(&(&a + &b) - &b, a, "add/sub round-trip, case {case}");
    }
}

#[test]
fn biguint_div_rem_invariant() {
    let mut rng = Rng::new(0xD1F);
    for case in 0..CASES {
        let a = rng.big_uint();
        let b = rng.big_uint();
        if b.is_zero() {
            continue;
        }
        let (q, r) = a.div_rem(&b);
        assert!(r < b, "remainder bound, case {case}");
        assert_eq!(&(&q * &b) + &r, a, "division identity, case {case}");
    }
}

#[test]
fn biguint_gcd_laws() {
    let mut rng = Rng::new(0x9CD);
    for case in 0..CASES {
        let a = rng.big_uint();
        let b = rng.big_uint();
        let g = a.gcd(&b);
        assert_eq!(g, b.gcd(&a), "gcd commutative, case {case}");
        if a.is_zero() && b.is_zero() {
            assert!(g.is_zero(), "gcd(0,0) = 0, case {case}");
            continue;
        }
        assert!(
            !g.is_zero(),
            "gcd of non-both-zero is non-zero, case {case}"
        );
        if !a.is_zero() {
            assert!((&a % &g).is_zero(), "gcd divides a, case {case}");
        }
        if !b.is_zero() {
            assert!((&b % &g).is_zero(), "gcd divides b, case {case}");
        }
    }
}

#[test]
fn biguint_shift_roundtrip() {
    let mut rng = Rng::new(0x5F7);
    for case in 0..CASES {
        let a = rng.big_uint();
        let s = rng.below(256);
        assert_eq!(&(&a << s) >> s, a, "shift round-trip, case {case}");
    }
}

#[test]
fn biguint_display_parse_roundtrip() {
    let mut rng = Rng::new(0xD15);
    for case in 0..CASES {
        let a = rng.big_uint();
        let s = a.to_string();
        let back: BigUint = s.parse().unwrap();
        assert_eq!(back, a, "display/parse round-trip, case {case}");
    }
}

#[test]
fn biguint_cmp_matches_u128() {
    let mut rng = Rng::new(0xC3B);
    for case in 0..CASES {
        let a = rng.u128();
        let b = rng.u128();
        assert_eq!(
            BigUint::from(a).cmp(&BigUint::from(b)),
            a.cmp(&b),
            "cmp vs u128, case {case}"
        );
    }
}

// ----------------------------------------------------------------------
// Differential tests: inline u64 fast path vs multi-limb reference
// ----------------------------------------------------------------------

/// Every arithmetic op on word-sized operands must agree with native
/// `u128` arithmetic, including at the exact `u64::MAX` / carry edges.
#[test]
fn differential_u64_ops_match_u128_reference() {
    let mut rng = Rng::new(0xD1F2);
    for case in 0..CASES * 4 {
        let (a, b) = if case % 3 == 0 {
            (rng.boundary_u64(), rng.boundary_u64())
        } else {
            (rng.u64(), rng.u64())
        };
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        assert_eq!(
            &ba + &bb,
            BigUint::from(u128::from(a) + u128::from(b)),
            "add, case {case} ({a} + {b})"
        );
        assert_eq!(
            &ba * &bb,
            BigUint::from(u128::from(a) * u128::from(b)),
            "mul, case {case} ({a} * {b})"
        );
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        assert_eq!(
            BigUint::from(hi) - BigUint::from(lo),
            BigUint::from(hi - lo),
            "sub, case {case} ({hi} - {lo})"
        );
        if let (Some(qr), Some(rr)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = ba.div_rem(&bb);
            assert_eq!(q, BigUint::from(qr), "quotient, case {case} ({a} / {b})");
            assert_eq!(r, BigUint::from(rr), "remainder, case {case} ({a} % {b})");
        }
        assert_eq!(
            ba.gcd(&bb),
            BigUint::from(gcd_u128(a.into(), b.into())),
            "gcd, case {case}"
        );
        assert_eq!(ba.cmp(&bb), a.cmp(&b), "cmp, case {case}");
    }
}

/// Mixed inline/heap operand pairs agree with `u128` references whenever
/// the values fit `u128` — this drives the representation-crossing branches
/// (inline + heap, heap − inline, heap ÷ inline, …).
#[test]
fn differential_mixed_representation_ops() {
    let mut rng = Rng::new(0x313D);
    for case in 0..CASES * 2 {
        let a = if case % 2 == 0 {
            u128::from(rng.u64())
        } else {
            rng.boundary_u128()
        };
        let b = if case % 3 == 0 {
            rng.boundary_u128()
        } else {
            u128::from(rng.u64())
        };
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        if let Some(sum) = a.checked_add(b) {
            assert_eq!(&ba + &bb, BigUint::from(sum), "mixed add, case {case}");
        }
        if let Some(prod) = a.checked_mul(b) {
            assert_eq!(&ba * &bb, BigUint::from(prod), "mixed mul, case {case}");
        }
        if a >= b {
            assert_eq!(&ba - &bb, BigUint::from(a - b), "mixed sub, case {case}");
        }
        if let (Some(qr), Some(rr)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = ba.div_rem(&bb);
            assert_eq!(q, BigUint::from(qr), "mixed quotient, case {case}");
            assert_eq!(r, BigUint::from(rr), "mixed remainder, case {case}");
        }
        assert_eq!(
            ba.gcd(&bb),
            BigUint::from(gcd_u128(a, b)),
            "mixed gcd, case {case}"
        );
        assert_eq!(ba.cmp(&bb), a.cmp(&b), "mixed cmp, case {case}");
    }
}

/// Decimal-string round-trips: each op computed on `BigUint` agrees with
/// the value reconstructed by parsing the operands' decimal strings,
/// re-performing the op, and printing. The parse path exercises the
/// heap-building mul/add loop, so this is an independent second opinion
/// on every fast path, on inline and heap values alike.
#[test]
fn differential_decimal_string_roundtrips() {
    let mut rng = Rng::new(0xDEC);
    for case in 0..CASES {
        let a = rng.big_uint();
        let b = rng.big_uint();
        let reparse = |v: &BigUint| -> BigUint { v.to_string().parse().unwrap() };
        let (ra, rb) = (reparse(&a), reparse(&b));
        assert_eq!(
            reparse(&(&a + &b)),
            &ra + &rb,
            "add via strings, case {case}"
        );
        assert_eq!(
            reparse(&(&a * &b)),
            &ra * &rb,
            "mul via strings, case {case}"
        );
        if a >= b {
            assert_eq!(
                reparse(&(&a - &b)),
                &ra - &rb,
                "sub via strings, case {case}"
            );
        }
        if !b.is_zero() {
            let (q, r) = a.div_rem(&b);
            let (rq, rr) = ra.div_rem(&rb);
            assert_eq!(
                (reparse(&q), reparse(&r)),
                (rq, rr),
                "div_rem via strings, case {case}"
            );
        }
        assert_eq!(
            reparse(&a.gcd(&b)),
            ra.gcd(&rb),
            "gcd via strings, case {case}"
        );
        let e = rng.below(5) as u32;
        assert_eq!(
            reparse(&a.pow(e)),
            ra.pow(e),
            "pow via strings, case {case}"
        );
    }
}

/// `pow` crossing the inline/heap boundary: squaring word-sized values
/// repeatedly must agree with repeated multiplication.
#[test]
fn differential_pow_crosses_representation_boundary() {
    let mut rng = Rng::new(0x90B);
    for case in 0..CASES / 2 {
        let base = BigUint::from(rng.boundary_u64());
        let e = rng.below(6) as u32;
        let mut acc = BigUint::from(1u32);
        for _ in 0..e {
            acc = &acc * &base;
        }
        assert_eq!(base.pow(e), acc, "pow vs repeated mul, case {case}");
    }
}

/// The tier of a value is a function of its magnitude alone: the three
/// representation predicates partition every value exactly as the bit
/// length dictates, whatever arithmetic route produced it.
#[test]
fn representation_tier_matches_bit_length() {
    let mut rng = Rng::new(0x71E2);
    let mut seen = [0usize; 3]; // inline, fixed, heap
    for case in 0..CASES * 4 {
        let v = rng.big_uint();
        let tier = (v.is_inline(), v.is_fixed(), v.is_heap());
        let expect = if v.bits() <= 64 {
            seen[0] += 1;
            (true, false, false)
        } else if v.bits() <= BigUint::FIXED_BITS {
            seen[1] += 1;
            (false, true, false)
        } else {
            seen[2] += 1;
            (false, false, true)
        };
        assert_eq!(tier, expect, "tier vs bits, case {case}: {v}");
        // Round-tripping through the decimal string lands on the same tier.
        let back: BigUint = v.to_string().parse().unwrap();
        assert_eq!(
            (back.is_inline(), back.is_fixed(), back.is_heap()),
            expect,
            "tier after string round-trip, case {case}"
        );
    }
    assert!(
        seen.iter().all(|&n| n > 50),
        "generator must populate all three tiers, got {seen:?}"
    );
}

/// Ops whose operands straddle each boundary of the representation
/// lattice (inline↔fixed, fixed↔fixed, fixed↔heap, heap↔heap) satisfy the
/// ring identities and stay canonical. The `u128`-reference differential
/// tests cannot see past two words, so these identities — plus the string
/// round-trip — arbitrate the fixed- and heap-tier paths.
#[test]
fn differential_tier_boundary_ops() {
    let mut rng = Rng::new(0xF1D3);
    for case in 0..CASES * 2 {
        let a = rng.big_uint();
        let b = rng.boundary_fixed_heap();
        for (x, y) in [(&a, &b), (&b, &a)] {
            let sum = x + y;
            assert_eq!(&sum - y, *x, "add/sub round-trip, case {case}");
            assert!(sum >= *x && sum >= *y, "add grows, case {case}");
            let prod = x * y;
            if !y.is_zero() {
                let (q, r) = prod.div_rem(y);
                assert_eq!(q, *x, "mul/div round-trip, case {case}");
                assert!(r.is_zero(), "exact product division, case {case}");
                let g = x.gcd(y);
                assert!(
                    (x % &g).is_zero() && (y % &g).is_zero(),
                    "gcd divides, case {case}"
                );
            }
            let s = rng.below(200);
            assert_eq!(&(x << s) >> s, *x, "shift round-trip, case {case}");
            let back: BigUint = x.to_string().parse().unwrap();
            assert_eq!(back, *x, "string round-trip, case {case}");
        }
    }
}

/// The exact value of a finite non-negative `f64` as a rational.
fn exact_rational_of_f64(d: f64) -> Rational {
    assert!(d.is_finite() && d >= 0.0);
    let bits = d.to_bits();
    let exp = (bits >> 52) & 0x7FF;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e) = if exp == 0 {
        (frac, -1074i64)
    } else {
        (frac | (1 << 52), exp as i64 - 1075)
    };
    if e >= 0 {
        Rational::from(BigUint::from(m) << e as u64)
    } else {
        Rational::new(
            BigInt::from(m),
            BigInt::from(BigUint::from(1u32) << (-e) as u64),
        )
        .unwrap()
    }
}

/// `BigUint::to_f64` returns the double nearest the exact value: by exact
/// `Rational` arithmetic, no neighbouring double is strictly closer, and
/// ties go to the even mantissa.
#[test]
fn to_f64_is_nearest_double_by_exact_distance() {
    let mut rng = Rng::new(0xF64D);
    for case in 0..CASES * 2 {
        let v = rng.big_uint();
        let d = v.to_f64();
        if !d.is_finite() {
            continue;
        }
        let exact_v = Rational::from(v.clone());
        let dist = |cand: f64| (&exact_v - &exact_rational_of_f64(cand)).abs();
        let d_dist = dist(d);
        for neighbour in [d.next_up(), d.next_down()] {
            if !neighbour.is_finite() || neighbour < 0.0 {
                continue;
            }
            let n_dist = dist(neighbour);
            assert!(
                d_dist <= n_dist,
                "case {case}: {v} → {d:e}, but neighbour {neighbour:e} is closer"
            );
            if d_dist == n_dist {
                // Exact tie: the chosen double must be the even one.
                assert_eq!(
                    d.to_bits() & 1,
                    0,
                    "case {case}: tie must round to even mantissa"
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// Rational word-path boundaries
// ----------------------------------------------------------------------

/// Cross-multiplied BigInt reference for `a + b`, bypassing every word
/// fast path.
fn add_via_bigint(a: &Rational, b: &Rational) -> Rational {
    let num =
        a.numer() * &BigInt::from(b.denom().clone()) + b.numer() * &BigInt::from(a.denom().clone());
    let den = BigInt::from(a.denom() * b.denom());
    Rational::new(num, den).unwrap()
}

/// Addition with numerators and denominators near `u64::MAX`: the sweep
/// provably drives the `checked_add` overflow fallback (the precondition
/// is recomputed here, mirroring `add_fast`'s reduced cross-products) and
/// every result — fast path or fallback — must match the BigInt
/// cross-multiply reference.
#[test]
fn rational_add_near_u64_max_matches_bigint_reference() {
    let mut rng = Rng::new(0xADD0);
    let mut overflowed = 0usize;
    let mut stayed_fast = 0usize;
    for case in 0..CASES * 2 {
        let near_max = |rng: &mut Rng| u64::MAX - rng.below(6);
        let (n1, d1) = (near_max(&mut rng), near_max(&mut rng));
        let (n2, d2) = (near_max(&mut rng), near_max(&mut rng));
        let mut a = Rational::new(BigInt::from(n1), BigInt::from(d1)).unwrap();
        let b = Rational::new(BigInt::from(n2), BigInt::from(d2)).unwrap();
        if case % 3 == 0 {
            a = -a;
        }
        // Mirror add_fast's reduced cross-products to classify the case.
        let (ra, rda) = (a.numer().magnitude().to_u64(), a.denom().to_u64());
        let (rb, rdb) = (b.numer().magnitude().to_u64(), b.denom().to_u64());
        if let (Some(an), Some(ad), Some(bn), Some(bd)) = (ra, rda, rb, rdb) {
            let g0 = BigUint::from(ad).gcd(&BigUint::from(bd)).to_u64().unwrap();
            let p1 = u128::from(an) * u128::from(bd / g0);
            let p2 = u128::from(bn) * u128::from(ad / g0);
            let same_sign = a.is_negative() == b.is_negative();
            if same_sign && p1.checked_add(p2).is_none() {
                overflowed += 1;
            } else {
                stayed_fast += 1;
            }
        }
        assert_eq!(&a + &b, add_via_bigint(&a, &b), "add, case {case}");
        assert_eq!(&a - &b, add_via_bigint(&a, &(-&b)), "sub, case {case}");
    }
    assert!(
        overflowed > 20,
        "sweep must exercise the overflow fallback, got {overflowed}"
    );
    assert!(
        stayed_fast > 20,
        "sweep must also exercise the fast path, got {stayed_fast}"
    );
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

// ----------------------------------------------------------------------
// BigInt ring laws
// ----------------------------------------------------------------------

#[test]
fn bigint_ring_laws() {
    let mut rng = Rng::new(0x1B7);
    for case in 0..CASES {
        let a = rng.big_int();
        let b = rng.big_int();
        assert_eq!(&a + &b, &b + &a, "add commutative, case {case}");
        assert_eq!(&a + &(-&a), BigInt::zero(), "add inverse, case {case}");
        assert_eq!(&a - &b, -&(&b - &a), "sub antisymmetric, case {case}");
        let prod = &a * &b;
        if a.is_zero() || b.is_zero() {
            assert!(prod.is_zero(), "mul zero, case {case}");
        } else {
            assert_eq!(
                prod.is_negative(),
                a.is_negative() != b.is_negative(),
                "mul signs, case {case}"
            );
        }
        let back: BigInt = a.to_string().parse().unwrap();
        assert_eq!(back, a, "display/parse round-trip, case {case}");
    }
}

#[test]
fn bigint_matches_i128() {
    let mut rng = Rng::new(0x128);
    for case in 0..CASES {
        let a = (rng.u64() % 2_000_000_000_000) as i128 - 1_000_000_000_000;
        let b = (rng.u64() % 2_000_000_000_000) as i128 - 1_000_000_000_000;
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        assert_eq!(&ba + &bb, BigInt::from(a + b), "add, case {case}");
        assert_eq!(&ba - &bb, BigInt::from(a - b), "sub, case {case}");
        assert_eq!(&ba * &bb, BigInt::from(a * b), "mul, case {case}");
        if b != 0 {
            assert_eq!(&ba / &bb, BigInt::from(a / b), "div, case {case}");
            assert_eq!(&ba % &bb, BigInt::from(a % b), "rem, case {case}");
        }
        assert_eq!(ba.cmp(&bb), a.cmp(&b), "cmp, case {case}");
    }
}

// ----------------------------------------------------------------------
// Rational field laws
// ----------------------------------------------------------------------

#[test]
fn rational_field_laws() {
    let mut rng = Rng::new(0xF1E);
    for case in 0..CASES {
        let a = rng.rational();
        let b = rng.rational();
        let c = rng.rational();
        assert_eq!(&a + &b, &b + &a, "add commutative, case {case}");
        assert_eq!(
            &(&a + &b) + &c,
            &a + &(&b + &c),
            "add associative, case {case}"
        );
        assert_eq!(
            &(&a * &b) * &c,
            &a * &(&b * &c),
            "mul associative, case {case}"
        );
        assert_eq!(
            &a * &(&b + &c),
            &(&a * &b) + &(&a * &c),
            "distributive, case {case}"
        );
        assert_eq!(&a + &(-&a), Rational::zero(), "add inverse, case {case}");
        if !a.is_zero() {
            assert_eq!(&a * &a.recip(), Rational::one(), "mul inverse, case {case}");
        }
        if !b.is_zero() {
            assert_eq!(&(&a / &b) * &b, a, "div/mul round-trip, case {case}");
        }
    }
}

#[test]
fn rational_normalised_invariants() {
    let mut rng = Rng::new(0x20A);
    for case in 0..CASES {
        let a = rng.rational();
        let b = rng.rational();
        for v in [&a + &b, &a - &b, &a * &b] {
            assert!(!v.denom().is_zero(), "positive denominator, case {case}");
            let g = v.numer().magnitude().gcd(v.denom());
            assert!(g.is_one() || v.is_zero(), "lowest terms, case {case}: {v}");
        }
    }
}

#[test]
fn rational_ordering_total_and_matches_f64() {
    let mut rng = Rng::new(0x0AD);
    for case in 0..CASES {
        let a = rng.rational();
        let b = rng.rational();
        let c = rng.rational();
        if a <= b && b <= c {
            assert!(a <= c, "transitivity, case {case}");
        }
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if (fa - fb).abs() > 1e-9 {
            assert_eq!(a < b, fa < fb, "f64 monotone, case {case}");
        }
        let back: Rational = a.to_string().parse().unwrap();
        assert_eq!(back, a, "display/parse round-trip, case {case}");
    }
}

#[test]
fn probability_laws() {
    let mut rng = Rng::new(0x9B0);
    for case in 0..CASES {
        let p = rng.probability();
        let q = rng.probability();
        assert!(p.is_probability(), "in range, case {case}");
        assert!(
            p.one_minus().is_probability(),
            "complement in range, case {case}"
        );
        assert_eq!(
            p.one_minus().one_minus(),
            p,
            "complement involution, case {case}"
        );
        assert!((&p * &q).is_probability(), "product in range, case {case}");
        assert!(&p * &q <= p.clone().min(q), "products shrink, case {case}");
    }
}

#[test]
fn rational_pow_matches_repeated_mul() {
    let mut rng = Rng::new(0x90F);
    for case in 0..CASES {
        let a = rng.rational();
        let e = rng.below(8) as i32;
        let mut acc = Rational::one();
        for _ in 0..e {
            acc = &acc * &a;
        }
        assert_eq!(a.pow(e), acc, "pow vs repeated mul, case {case}");
    }
}
